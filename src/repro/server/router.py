"""Content-hash shard router: horizontal scale-out for the serving layer.

A :class:`ShardRouter` is a thin stdlib-asyncio front process that fans
``/solve`` requests out to N backend :class:`~repro.server.app.SolverServer`
instances ("shards"). Placement is **formula content-hash**: the request's
script is hashed with :func:`shard_key` — the same content hash the
:class:`~repro.service.cache.CompileCache` keys on — so structurally
identical formulas always land on the same shard and warm-cache hit rates
survive scale-out (cache hits *concentrate* per shard instead of being
diluted N ways by round-robin).

Routing policy (see DESIGN.md Appendix F):

* primary shard = ``int(shard_key[:16], 16) % N`` — a fixed modular hash
  ring; deterministic across processes and Python runs (sha256, never
  ``hash()``).
* **fail-over** walks the ring from the primary, bounded by
  ``failover_attempts``, and only on *connect* failure — a shard that
  accepted the request and then died answers with a typed ``upstream``
  envelope instead (re-sending after acceptance could double-solve).
* shards marked unhealthy by the background ``/healthz`` prober are
  skipped during ring walks unless every shard is unhealthy (then the
  primary is tried anyway — it may have just recovered).

Observability: the router's ``/metrics`` returns every shard's metrics
under ``shards.shard_<i>`` plus a **rollup** — element-wise summed
counters and cache statistics — so the PR 5 accounting identity
(``requests == completed + Σrejected.* + timeouts + cancellations +
internal``) holds on the aggregate exactly as it does per shard
(:func:`aggregate_metrics` is the single implementation, shared with the
fault-injection tests). Router-tier events (fail-overs, upstream errors,
its own rejections) are accounted separately under ``router.counters``.

``python -m repro.server.router --shards 4 --backend process`` spawns and
supervises its own shard fleet (ephemeral ports, crash-restart with
backoff, drain propagated to every shard on SIGTERM); ``--attach
host:port,host:port`` routes to an externally managed fleet instead.
"""

from __future__ import annotations

import argparse
import asyncio
import enum
import hashlib
import json
import signal
import socket
import subprocess
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.server import httpio
from repro.server.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_DRAINING,
    ERROR_UPSTREAM,
    ErrorInfo,
    ResponseEnvelope,
    SolveRequest,
)
from repro.service.cache import compile_cache_key
from repro.service.metrics import MetricsRegistry

__all__ = [
    "BackgroundRouter",
    "RouterConfig",
    "ShardFleet",
    "ShardRouter",
    "ShardSpec",
    "aggregate_metrics",
    "session_shard_key",
    "shard_key",
    "shard_index",
]


# --------------------------------------------------------------------- #
# placement
# --------------------------------------------------------------------- #


def shard_key(script: str) -> str:
    """The routing hash of one SMT-LIB script (hex sha256).

    Structurally identical formulas — whatever their whitespace or
    comments — share a key, because the key is computed over the *parsed*
    assertion conjunction with :func:`~repro.service.cache.
    compile_cache_key`, the exact content hash the per-shard CompileCache
    keys on. Scripts that do not parse fall back to a hash of the raw
    text: they still route deterministically (and the shard answers with
    its located ``parse`` envelope).

    Stability contract: sha256 end to end — never ``hash()`` — so the
    key is identical across processes, Python runs and
    ``PYTHONHASHSEED`` values; a pinned test enforces this.
    """
    try:
        from repro.smt.parser import parse_script

        parsed = parse_script(script)
        return compile_cache_key(parsed.assertions)
    except Exception:  # noqa: BLE001 — unparseable input still routes
        return hashlib.sha256(script.encode("utf-8")).hexdigest()


def session_shard_key(session_id: str) -> str:
    """The routing hash of one sticky session id (hex sha256).

    Sessions are **server-side state**: every ``/session/*`` request with
    the same id must land on the shard holding the live
    :class:`~repro.smt.session.SolverSession`, so placement hashes the id
    itself — never the request content. Same stability contract as
    :func:`shard_key`: sha256, never ``hash()``.
    """
    return hashlib.sha256(session_id.encode("utf-8")).hexdigest()


def shard_index(key: str, num_shards: int) -> int:
    """Map a :func:`shard_key` onto a shard ordinal (fixed modular ring)."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return int(key[:16], 16) % num_shards


# --------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ShardSpec:
    """Address of one backend SolverServer."""

    host: str
    port: int

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        host, sep, port = text.rpartition(":")
        if not sep or not host:
            raise ValueError(f"shard spec must be host:port, got {text!r}")
        return cls(host=host, port=int(port))

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass
class RouterConfig:
    """Everything ``python -m repro.server.router`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 8047
    shards: List[ShardSpec] = field(default_factory=list)
    #: Max shards tried per request (primary + fail-overs).
    failover_attempts: int = 3
    connect_timeout: float = 2.0
    #: Hard bound on one proxied request (headroom over the shard's own
    #: deadline enforcement, so a wedged shard can never hang a client).
    upstream_timeout: float = 120.0
    health_interval: float = 0.5
    probe_timeout: float = 2.0
    drain_timeout: float = 10.0
    idle_timeout: float = 60.0
    max_request_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a router needs at least one shard")
        if self.failover_attempts < 1:
            raise ValueError(
                f"failover_attempts must be >= 1, got {self.failover_attempts}"
            )
        if self.health_interval <= 0 or self.probe_timeout <= 0:
            raise ValueError("health_interval and probe_timeout must be positive")
        if self.idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be positive, got {self.idle_timeout}")


class _ShardDown(RuntimeError):
    """Connect-phase failure: safe to fail over to the next shard."""


class _ShardMidRequest(RuntimeError):
    """The shard accepted the request and then failed: no retry."""


@dataclass
class ShardState:
    """Mutable health record of one shard."""

    spec: ShardSpec
    healthy: bool = True
    consecutive_failures: int = 0
    last_error: str = ""

    def mark_up(self) -> None:
        self.healthy = True
        self.consecutive_failures = 0
        self.last_error = ""

    def mark_down(self, error: str) -> None:
        self.healthy = False
        self.consecutive_failures += 1
        self.last_error = error


# --------------------------------------------------------------------- #
# metrics aggregation (shared with the fault-injection tests)
# --------------------------------------------------------------------- #


def _sum_tree(accumulator: Dict[str, Any], payload: Dict[str, Any]) -> None:
    for key, value in payload.items():
        if isinstance(value, dict):
            _sum_tree(accumulator.setdefault(key, {}), value)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            accumulator[key] = accumulator.get(key, 0) + value


def _merge_histograms(
    accumulator: Dict[str, Any], payload: Dict[str, Any]
) -> None:
    """Histogram summaries merge by count/total (additive) and min/max;
    the mean is recomputed and per-shard percentiles are dropped — they
    cannot be combined from summaries."""
    for name, summary in payload.items():
        if not isinstance(summary, dict):
            continue
        merged = accumulator.setdefault(
            name, {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        )
        count = summary.get("count", 0)
        if not count:
            continue
        if merged["count"]:
            merged["min"] = min(merged["min"], summary.get("min", 0.0))
        else:
            merged["min"] = summary.get("min", 0.0)
        merged["max"] = max(merged["max"], summary.get("max", 0.0))
        merged["count"] += count
        merged["total"] += summary.get("total", 0.0)
        merged["mean"] = merged["total"] / merged["count"]


def aggregate_metrics(shard_payloads: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Element-wise rollup of per-shard ``/metrics`` payloads.

    Counters and cache tallies add linearly, so every per-shard accounting
    identity (``server.requests == server.completed + Σserver.rejected.*
    + server.timeout + server.cancelled + server.internal``) survives
    summation. Histograms merge by count/total/min/max with the mean
    recomputed; percentiles are per-shard only. Rates are recomputed,
    never averaged; non-numeric leaves (state strings, ...) are dropped —
    they remain visible under ``shards.shard_<i>``.
    """
    rollup: Dict[str, Any] = {}
    histograms: Dict[str, Any] = {}
    for payload in shard_payloads:
        for key, value in payload.items():
            if key == "histograms" and isinstance(value, dict):
                _merge_histograms(histograms, value)
            elif isinstance(value, dict):
                _sum_tree(rollup.setdefault(key, {}), value)
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                rollup[key] = rollup.get(key, 0) + value
    if histograms:
        rollup["histograms"] = histograms
    cache = rollup.get("cache")
    if isinstance(cache, dict):
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        cache["hit_rate"] = cache.get("hits", 0) / lookups if lookups else 0.0
    return rollup


# --------------------------------------------------------------------- #
# the router
# --------------------------------------------------------------------- #


class RouterState(str, enum.Enum):
    CREATED = "created"
    SERVING = "serving"
    DRAINING = "draining"
    STOPPED = "stopped"

    __str__ = str.__str__


class ShardRouter:
    """Asyncio front process sharding ``/solve`` by formula content-hash."""

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.state = RouterState.CREATED
        self.metrics = MetricsRegistry()
        self.shards: List[ShardState] = [
            ShardState(spec=spec) for spec in config.shards
        ]
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.Task] = set()
        self._active_requests: Set[asyncio.Task] = set()
        self._prober: Optional[asyncio.Task] = None
        self._stopped = asyncio.Event()
        self._started_at = 0.0

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self.config.port

    @property
    def uptime(self) -> float:
        if not self._started_at:
            return 0.0
        return time.monotonic() - self._started_at

    async def start(self) -> None:
        if self.state is not RouterState.CREATED:
            raise RuntimeError(f"cannot start from state {self.state}")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self._prober = asyncio.create_task(self._probe_loop())
        self._started_at = time.monotonic()
        self.state = RouterState.SERVING

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight proxies, stop.

        Shard processes are *not* touched here — drain propagation to a
        supervised fleet is the :class:`ShardFleet`'s job (the router may
        be attached to shards it does not own).
        """
        if self.state in (RouterState.DRAINING, RouterState.STOPPED):
            await self._stopped.wait()
            return
        self.state = RouterState.DRAINING
        if self._server is not None:
            self._server.close()
        if self._prober is not None:
            self._prober.cancel()
        # In-flight proxied requests get the drain timeout to finish.
        deadline = time.monotonic() + self.config.drain_timeout
        while self._active_requests and time.monotonic() < deadline:
            await asyncio.wait(
                list(self._active_requests),
                timeout=max(0.05, deadline - time.monotonic()),
            )
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.wait(list(self._connections), timeout=5.0)
        self.state = RouterState.STOPPED
        self._stopped.set()

    # -------------------------------------------------------------- #
    # health probing
    # -------------------------------------------------------------- #

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.gather(
                *(self._probe_shard(state) for state in self.shards),
                return_exceptions=True,
            )
            await asyncio.sleep(self.config.health_interval)

    async def _probe_shard(self, state: ShardState) -> None:
        try:
            status, _headers, _body = await self._raw_request(
                state.spec, "GET", "/healthz", b"", timeout=self.config.probe_timeout
            )
        except (OSError, asyncio.TimeoutError, httpio.ProtocolError) as exc:
            state.mark_down(f"{type(exc).__name__}: {exc}")
            return
        if status == 200:
            state.mark_up()
        else:
            # 503 = shard draining: stop routing new work to it.
            state.mark_down(f"healthz answered {status}")

    # -------------------------------------------------------------- #
    # upstream transport
    # -------------------------------------------------------------- #

    async def _raw_request(
        self,
        spec: ShardSpec,
        method: str,
        path: str,
        body: bytes,
        *,
        content_type: str = "application/json",
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One upstream round trip; connect errors raise OSError family."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(spec.host, spec.port),
            timeout=self.config.connect_timeout,
        )
        try:
            writer.write(
                httpio.render_request(
                    method,
                    path,
                    body,
                    host=str(spec),
                    content_type=content_type,
                    close=True,
                )
            )
            await writer.drain()
            return await asyncio.wait_for(
                httpio.read_response(reader),
                timeout=timeout if timeout is not None else self.config.upstream_timeout,
            )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):  # pragma: no cover
                pass

    async def _forward_solve(
        self,
        spec: ShardSpec,
        body: bytes,
        content_type: str,
        timeout: float,
        path: str = "/solve",
    ) -> Tuple[int, bytes]:
        """Proxy one POST body to *path*; typed exceptions split the retry rule."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(spec.host, spec.port),
                timeout=self.config.connect_timeout,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise _ShardDown(f"{spec}: {type(exc).__name__}: {exc}") from exc
        try:
            writer.write(
                httpio.render_request(
                    "POST",
                    path,
                    body,
                    host=str(spec),
                    content_type=content_type,
                    close=True,
                )
            )
            await writer.drain()
            status, _headers, payload = await asyncio.wait_for(
                httpio.read_response(reader), timeout=timeout
            )
            return status, payload
        except (OSError, asyncio.TimeoutError, httpio.ProtocolError) as exc:
            raise _ShardMidRequest(f"{spec}: {type(exc).__name__}: {exc}") from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):  # pragma: no cover
                pass

    # -------------------------------------------------------------- #
    # routing
    # -------------------------------------------------------------- #

    def _ring_order(self, primary: int) -> List[int]:
        """Shard indices to try, bounded: healthy ones walking the ring from
        the primary; if none is healthy, the primary alone (it may have just
        recovered — the prober lags by up to ``health_interval``)."""
        n = len(self.shards)
        ring = [(primary + step) % n for step in range(n)]
        healthy = [i for i in ring if self.shards[i].healthy]
        order = healthy if healthy else [primary]
        return order[: self.config.failover_attempts]

    async def _route_solve(self, request: httpio.HttpRequest) -> Tuple[bytes, int, str]:
        self.metrics.counter("router.requests").inc()
        if self.state is not RouterState.SERVING:
            self.metrics.counter("router.rejected.draining").inc()
            envelope = ResponseEnvelope.failure(
                ErrorInfo(
                    type=ERROR_DRAINING,
                    message="router is draining; not accepting new requests",
                )
            )
            return envelope.to_json().encode("utf-8"), envelope.http_status, "application/json"
        try:
            solve_request = SolveRequest.from_body(request.body, request.content_type)
        except ValueError as exc:
            self.metrics.counter("router.rejected.bad_request").inc()
            envelope = ResponseEnvelope.failure(
                ErrorInfo(type=ERROR_BAD_REQUEST, message=str(exc))
            )
            return envelope.to_json().encode("utf-8"), envelope.http_status, "application/json"

        key = shard_key(solve_request.script)
        primary = shard_index(key, len(self.shards))
        timeout = self.config.upstream_timeout
        if solve_request.deadline_ms is not None:
            # The shard enforces the deadline; the proxy read just needs
            # headroom beyond it so a wedged shard cannot hang the client.
            timeout = min(timeout, solve_request.deadline_ms / 1000.0 + 15.0)

        last_error = "no shard attempted"
        for attempt, index in enumerate(self._ring_order(primary)):
            state = self.shards[index]
            if attempt:
                self.metrics.counter("router.failover").inc()
            try:
                status, payload = await self._forward_solve(
                    state.spec, request.body, request.content_type, timeout
                )
            except _ShardDown as exc:
                state.mark_down(str(exc))
                last_error = str(exc)
                continue
            except _ShardMidRequest as exc:
                state.mark_down(str(exc))
                self.metrics.counter("router.upstream_errors").inc()
                envelope = ResponseEnvelope.failure(
                    ErrorInfo(
                        type=ERROR_UPSTREAM,
                        message=f"shard {state.spec} failed mid-request: {exc}",
                    ),
                    request_id=solve_request.request_id,
                )
                return (
                    envelope.to_json().encode("utf-8"),
                    envelope.http_status,
                    "application/json",
                )
            self.metrics.counter("router.forwarded").inc()
            self.metrics.counter(f"router.shard.{index}.forwarded").inc()
            return payload, status, "application/json"

        self.metrics.counter("router.upstream_errors").inc()
        envelope = ResponseEnvelope.failure(
            ErrorInfo(
                type=ERROR_UPSTREAM,
                message=f"no shard reachable for key {key[:16]} "
                f"(primary shard_{primary}): {last_error}",
            ),
            request_id=solve_request.request_id,
        )
        return envelope.to_json().encode("utf-8"), envelope.http_status, "application/json"

    async def _route_session(
        self, request: httpio.HttpRequest, op: str
    ) -> Tuple[bytes, int, str]:
        """Sticky routing for ``/session/*``: the id pins the shard.

        Placement hashes the session id (injected here on an id-less
        ``open``, so the client's reply and every follow-up use the same
        id). There is **no fail-over**: the session state lives on exactly
        one shard, so a down shard is an ``upstream`` error — replaying
        the op elsewhere would silently run against a fresh empty session.
        """
        self.metrics.counter("router.requests").inc()
        if self.state is not RouterState.SERVING:
            self.metrics.counter("router.rejected.draining").inc()
            envelope = ResponseEnvelope.failure(
                ErrorInfo(
                    type=ERROR_DRAINING,
                    message="router is draining; not accepting new requests",
                )
            )
            return envelope.to_json().encode("utf-8"), envelope.http_status, "application/json"

        text = request.body.decode("utf-8", errors="replace")
        try:
            payload = json.loads(text) if text.strip() else {}
        except json.JSONDecodeError as exc:
            payload = None
            bad = f"request body is not valid JSON: {exc}"
        else:
            bad = "" if isinstance(payload, dict) else (
                f"JSON request body must be an object, got {type(payload).__name__}"
            )
        session_id = payload.get("session") if isinstance(payload, dict) else None
        if not bad and session_id is not None and not isinstance(session_id, str):
            bad = f"session must be a string, got {session_id!r}"
        if not bad and not session_id:
            if op == "open":
                # Inject the id here so the sticky placement decision and
                # the id the client learns are the same thing.
                session_id = uuid.uuid4().hex
                payload["session"] = session_id
            else:
                bad = f"/session/{op} needs a 'session' id"
        if bad:
            self.metrics.counter("router.rejected.bad_request").inc()
            envelope = ResponseEnvelope.failure(
                ErrorInfo(type=ERROR_BAD_REQUEST, message=bad)
            )
            return envelope.to_json().encode("utf-8"), envelope.http_status, "application/json"

        body = json.dumps(payload).encode("utf-8")
        index = shard_index(session_shard_key(session_id), len(self.shards))
        state = self.shards[index]
        timeout = self.config.upstream_timeout
        deadline_ms = payload.get("deadline_ms")
        if isinstance(deadline_ms, (int, float)) and deadline_ms > 0:
            timeout = min(timeout, float(deadline_ms) / 1000.0 + 15.0)
        try:
            status, reply = await self._forward_solve(
                state.spec,
                body,
                "application/json",
                timeout,
                path=f"/session/{op}",
            )
        except (_ShardDown, _ShardMidRequest) as exc:
            state.mark_down(str(exc))
            self.metrics.counter("router.upstream_errors").inc()
            envelope = ResponseEnvelope.failure(
                ErrorInfo(
                    type=ERROR_UPSTREAM,
                    message=(
                        f"session shard {state.spec} (shard_{index}) "
                        f"unavailable: {exc}"
                    ),
                ),
                request_id=session_id,
            )
            return (
                envelope.to_json().encode("utf-8"),
                envelope.http_status,
                "application/json",
            )
        self.metrics.counter("router.forwarded").inc()
        self.metrics.counter(f"router.shard.{index}.forwarded").inc()
        return reply, status, "application/json"

    # -------------------------------------------------------------- #
    # endpoints
    # -------------------------------------------------------------- #

    def _healthz(self) -> Tuple[bytes, int, str]:
        healthy_shards = sum(1 for s in self.shards if s.healthy)
        serving = self.state is RouterState.SERVING and healthy_shards > 0
        payload = {
            "status": "ok" if serving else str(self.state),
            "state": str(self.state),
            "uptime_s": round(self.uptime, 3),
            "shards": [
                {
                    "id": f"shard_{i}",
                    "host": s.spec.host,
                    "port": s.spec.port,
                    "healthy": s.healthy,
                    "last_error": s.last_error,
                }
                for i, s in enumerate(self.shards)
            ],
            "healthy_shards": healthy_shards,
            "total_shards": len(self.shards),
        }
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return body, (200 if serving else 503), "application/json"

    async def _metrics_endpoint(self) -> Tuple[bytes, int, str]:
        async def fetch(state: ShardState):
            try:
                status, _headers, payload = await self._raw_request(
                    state.spec,
                    "GET",
                    "/metrics",
                    b"",
                    timeout=self.config.probe_timeout,
                )
                if status != 200:
                    return {"error": f"/metrics answered {status}"}
                return json.loads(payload.decode("utf-8"))
            except (OSError, asyncio.TimeoutError, httpio.ProtocolError, ValueError) as exc:
                return {"error": f"{type(exc).__name__}: {exc}"}

        shard_payloads = await asyncio.gather(*(fetch(s) for s in self.shards))
        reachable = [p for p in shard_payloads if "error" not in p]
        rollup = aggregate_metrics(reachable)
        payload = {
            "router": {
                "state": str(self.state),
                "uptime_s": round(self.uptime, 3),
                "healthy_shards": sum(1 for s in self.shards if s.healthy),
                "total_shards": len(self.shards),
                "reachable_shards": len(reachable),
                **self.metrics.export(),
            },
            "shards": {
                f"shard_{i}": shard_payloads[i] for i in range(len(self.shards))
            },
            **rollup,
        }
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return body, 200, "application/json"

    async def _dispatch(self, request: httpio.HttpRequest) -> Tuple[bytes, int, str]:
        path = request.path
        if path == "/healthz" and request.method == "GET":
            return self._healthz()
        if path == "/metrics" and request.method == "GET":
            return await self._metrics_endpoint()
        if path == "/solve":
            if request.method != "POST":
                envelope = ResponseEnvelope.failure(
                    ErrorInfo(
                        type=ERROR_BAD_REQUEST,
                        message=f"/solve requires POST, got {request.method}",
                    )
                )
                return envelope.to_json().encode("utf-8"), 405, "application/json"
            return await self._route_solve(request)
        if path.startswith("/session/"):
            op = path[len("/session/"):]
            if op in ("open", "assert", "push", "pop", "check", "close"):
                if request.method != "POST":
                    envelope = ResponseEnvelope.failure(
                        ErrorInfo(
                            type=ERROR_BAD_REQUEST,
                            message=f"{path} requires POST, got {request.method}",
                        )
                    )
                    return envelope.to_json().encode("utf-8"), 405, "application/json"
                return await self._route_session(request, op)
        body = json.dumps(
            {"error": {"type": "not_found", "message": f"no route for {path}"}},
            sort_keys=True,
        ).encode("utf-8")
        return body, 404, "application/json"

    # -------------------------------------------------------------- #
    # connection handling (same discipline as SolverServer)
    # -------------------------------------------------------------- #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
                self._active_requests.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        while True:
            try:
                request = await asyncio.wait_for(
                    httpio.read_request(reader, self.config.max_request_bytes),
                    timeout=self.config.idle_timeout,
                )
            except asyncio.TimeoutError:
                return
            except httpio.RequestTooLarge as exc:
                envelope = ResponseEnvelope.failure(
                    ErrorInfo(type="too_large", message=str(exc))
                )
                writer.write(
                    httpio.render_response(
                        envelope.http_status,
                        envelope.to_json().encode("utf-8"),
                        close=True,
                    )
                )
                await writer.drain()
                return
            except httpio.ProtocolError as exc:
                envelope = ResponseEnvelope.failure(
                    ErrorInfo(type=ERROR_BAD_REQUEST, message=str(exc))
                )
                writer.write(
                    httpio.render_response(
                        envelope.http_status,
                        envelope.to_json().encode("utf-8"),
                        close=True,
                    )
                )
                await writer.drain()
                return
            if request is None:
                return
            keep_alive = request.keep_alive
            if task is not None:
                self._active_requests.add(task)
            try:
                try:
                    body, status, content_type = await self._dispatch(request)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 — last-resort boundary
                    envelope = ResponseEnvelope.failure(
                        ErrorInfo(
                            type=ERROR_UPSTREAM,
                            message=f"router dispatch failed: "
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
                    body = envelope.to_json().encode("utf-8")
                    status = envelope.http_status
                    content_type = "application/json"
                writer.write(
                    httpio.render_response(
                        status, body, content_type=content_type, close=not keep_alive
                    )
                )
                await writer.drain()
            finally:
                if task is not None:
                    self._active_requests.discard(task)
            if not keep_alive:
                return


# --------------------------------------------------------------------- #
# embedding helper (tests, benchmarks)
# --------------------------------------------------------------------- #


class BackgroundRouter:
    """Run a :class:`ShardRouter` on a daemon thread with its own loop.

    The mirror image of :class:`~repro.server.app.BackgroundServer`::

        with BackgroundRouter(RouterConfig(port=0, shards=[...])) as router:
            SolverClient(router.host, router.port).solve(...)
    """

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.router: Optional[ShardRouter] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._port: Optional[int] = None

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("router not started")
        return self._port

    def start(self) -> "BackgroundRouter":
        self._thread = threading.Thread(
            target=self._run, name="repro-router", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("router failed to start within 30 s")
        if self._startup_error is not None:
            raise RuntimeError("router failed to start") from self._startup_error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None or self.router is None:
            return
        if not self._loop.is_closed():
            future = asyncio.run_coroutine_threadsafe(
                self.router.shutdown(), self._loop
            )
            try:
                future.result(timeout=timeout)
            except (asyncio.TimeoutError, TimeoutError):  # pragma: no cover
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundRouter":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - surfaced via start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.router = ShardRouter(self.config)
        self._loop = asyncio.get_running_loop()
        try:
            await self.router.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._port = self.router.port
        self._ready.set()
        await self.router.serve_forever()


# --------------------------------------------------------------------- #
# fleet supervision (CLI spawn mode)
# --------------------------------------------------------------------- #


def _free_port(host: str) -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


class ShardFleet:
    """Spawn-and-supervise N ``python -m repro.server`` shard processes.

    Each shard is a real OS process on its own port; a dead shard is
    restarted (same port, so the router's ring stays stable) with
    exponential backoff. ``shutdown()`` propagates the graceful drain:
    SIGTERM to every shard (their signal handler runs the PR 5 drain),
    bounded wait, SIGKILL stragglers.
    """

    def __init__(
        self,
        count: int,
        *,
        host: str = "127.0.0.1",
        shard_args: Optional[Sequence[str]] = None,
        backoff_initial: float = 0.5,
        backoff_max: float = 10.0,
    ) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.host = host
        self.shard_args = list(shard_args or [])
        self.backoff_initial = backoff_initial
        self.backoff_max = backoff_max
        self.specs: List[ShardSpec] = [
            ShardSpec(host=host, port=_free_port(host)) for _ in range(count)
        ]
        self._procs: List[Optional[subprocess.Popen]] = [None] * count
        self._restarts = [0] * count
        self._next_start = [0.0] * count
        self._closed = False

    def _command(self, spec: ShardSpec) -> List[str]:
        return [
            sys.executable,
            "-m",
            "repro.server",
            "--host",
            spec.host,
            "--port",
            str(spec.port),
            *self.shard_args,
        ]

    def start(self) -> List[ShardSpec]:
        for index in range(len(self.specs)):
            self._spawn(index)
        return list(self.specs)

    def _spawn(self, index: int) -> None:
        self._procs[index] = subprocess.Popen(self._command(self.specs[index]))

    async def wait_ready(self, timeout: float = 60.0) -> None:
        """Block until every shard's ``/healthz`` answers 200."""
        deadline = time.monotonic() + timeout
        pending = set(range(len(self.specs)))
        while pending:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"shards {sorted(pending)} not healthy within {timeout:g} s"
                )
            for index in list(pending):
                spec = self.specs[index]
                try:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(spec.host, spec.port), timeout=1.0
                    )
                except (OSError, asyncio.TimeoutError):
                    continue
                try:
                    writer.write(
                        httpio.render_request("GET", "/healthz", host=str(spec), close=True)
                    )
                    await writer.drain()
                    status, _h, _b = await asyncio.wait_for(
                        httpio.read_response(reader), timeout=2.0
                    )
                    if status == 200:
                        pending.discard(index)
                except (OSError, asyncio.TimeoutError, httpio.ProtocolError):
                    pass
                finally:
                    writer.close()
            if pending:
                await asyncio.sleep(0.2)

    async def supervise(self, interval: float = 1.0) -> None:
        """Restart dead shards (same port) with exponential backoff."""
        while not self._closed:
            now = time.monotonic()
            for index, proc in enumerate(self._procs):
                if self._closed or proc is None or proc.poll() is None:
                    continue
                if now < self._next_start[index]:
                    continue
                self._restarts[index] += 1
                delay = min(
                    self.backoff_max,
                    self.backoff_initial * (2 ** (self._restarts[index] - 1)),
                )
                self._next_start[index] = now + delay
                print(
                    f"[repro.router] shard_{index} ({self.specs[index]}) died "
                    f"(exit {proc.returncode}) — restarting "
                    f"(attempt {self._restarts[index]}, next backoff {delay:g} s)",
                    flush=True,
                )
                self._spawn(index)
            await asyncio.sleep(interval)

    def shutdown(self, drain_timeout: float = 15.0) -> None:
        """Propagate the graceful drain: SIGTERM, bounded wait, SIGKILL."""
        self._closed = True
        procs = [p for p in self._procs if p is not None and p.poll() is None]
        for proc in procs:
            try:
                proc.send_signal(signal.SIGTERM)
            except OSError:  # pragma: no cover
                pass
        deadline = time.monotonic() + drain_timeout
        for proc in procs:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)


# --------------------------------------------------------------------- #
# CLI: python -m repro.server.router
# --------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.router",
        description="Content-hash shard router over N repro.server instances.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8047, help="router port")
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="spawn-and-supervise this many repro.server shard processes",
    )
    parser.add_argument(
        "--attach",
        default="",
        help="comma-separated host:port list of externally managed shards "
        "(mutually exclusive with --shards)",
    )
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="solve backend for spawned shards",
    )
    parser.add_argument("--workers", type=int, default=2, help="workers per shard")
    parser.add_argument("--queue-limit", type=int, default=16)
    parser.add_argument("--deadline-ms", type=float, default=30000.0)
    parser.add_argument("--num-reads", type=int, default=64)
    parser.add_argument("--num-sweeps", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--failover", type=int, default=3, help="max shards tried")
    parser.add_argument("--health-interval", type=float, default=0.5)
    parser.add_argument("--drain-timeout", type=float, default=10.0)
    parser.add_argument("--idle-timeout", type=float, default=60.0)
    return parser


def _shard_cli_args(args: argparse.Namespace) -> List[str]:
    shard_args = [
        "--backend",
        args.backend,
        "--workers",
        str(args.workers),
        "--queue-limit",
        str(args.queue_limit),
        "--deadline-ms",
        str(args.deadline_ms),
        "--num-reads",
        str(args.num_reads),
        "--drain-timeout",
        str(args.drain_timeout),
    ]
    if args.num_sweeps is not None:
        shard_args += ["--num-sweeps", str(args.num_sweeps)]
    if args.seed is not None:
        shard_args += ["--seed", str(args.seed)]
    return shard_args


async def _run(args: argparse.Namespace) -> None:
    fleet: Optional[ShardFleet] = None
    if args.shards and args.attach:
        raise ValueError("--shards and --attach are mutually exclusive")
    if args.shards:
        fleet = ShardFleet(
            args.shards, host=args.host, shard_args=_shard_cli_args(args)
        )
        specs = fleet.start()
        print(
            f"[repro.router] spawned {len(specs)} shard(s): "
            + ", ".join(str(s) for s in specs),
            flush=True,
        )
        await fleet.wait_ready()
    elif args.attach:
        specs = [ShardSpec.parse(part) for part in args.attach.split(",") if part]
    else:
        raise ValueError("need --shards N or --attach host:port[,host:port...]")

    config = RouterConfig(
        host=args.host,
        port=args.port,
        shards=specs,
        failover_attempts=args.failover,
        health_interval=args.health_interval,
        drain_timeout=args.drain_timeout,
        idle_timeout=args.idle_timeout,
    )
    router = ShardRouter(config)
    await router.start()
    loop = asyncio.get_running_loop()

    def _request_shutdown(signame: str) -> None:
        print(f"[repro.router] {signame} received — draining...", flush=True)
        asyncio.ensure_future(router.shutdown())

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, _request_shutdown, sig.name)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass

    print(
        f"[repro.router] routing on {router.host}:{router.port} over "
        f"{len(specs)} shard(s) (failover={config.failover_attempts})",
        flush=True,
    )
    supervisor = asyncio.create_task(fleet.supervise()) if fleet else None
    await router.serve_forever()
    if supervisor is not None:
        supervisor.cancel()
    if fleet is not None:
        # Drain propagation: the shards get their own graceful SIGTERM drain.
        await loop.run_in_executor(None, fleet.shutdown, args.drain_timeout + 5.0)
    print("[repro.router] drained and stopped", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_run(args))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
