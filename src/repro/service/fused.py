"""Cross-request fused solving: tile many compiled QUBOs into one kernel call.

The shared engine behind ``BatchSolver(executor="fused")`` and the server's
micro-batching collector (:mod:`repro.server.workers`). Where the thread /
serial executors pay one full solve pipeline per item, this engine:

1. compiles every item through the shared
   :class:`~repro.service.cache.CompileCache`,
2. collects all ``(variable, formulation)`` QUBOs across items,
3. fuses them into block-diagonal tiles of at most ``tile_max`` blocks
   (:func:`repro.qubo.tile.tile_models`) and solves each tile with one
   ``sample_tiled`` kernel call,
4. decodes/verifies each block back into per-variable
   :class:`~repro.core.solver.SolveResult`\\ s, and
5. falls back to the untiled per-item solve path — a fresh
   :class:`~repro.smt.solver.QuantumSMTSolver` with the full retry policy,
   bit-identical to the thread/serial executors — for any item whose fused
   first pass fails verification or the final model check.

Determinism & chunking
----------------------
The tiler's batch-invariance contract (each block's RNG stream is keyed by
``(base_seed, block content hash)``) makes the *chunking irrelevant to
results*: a block solves identically whether its tile holds 1 or
``tile_max`` neighbors, so outcomes at a fixed seed do not depend on batch
arrival order, queue depth, or ``tile_max``. The fused first pass draws
different streams than the solo path's spawned per-call seeds, so a fused
item may differ from its thread-executor result — but the soundness
contract is unchanged (``sat`` only ever reports a *verified* model) and
fallbacks reproduce the solo path exactly.

The single fused pass has no per-variable retry loop; the retry policy is
applied by the fallback. Counters: ``fused.tiles``, ``fused.blocks``,
``fused.fallbacks``, ``fused.trivial``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.anneal.base import Sampler
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.core.solver import SolveResult, result_from_sampleset
from repro.qubo.tile import tile_models
from repro.service.cache import CompileCache
from repro.service.metrics import MetricsRegistry
from repro.service.policy import RetryExhaustedError, RetryPolicy
from repro.smt import ast
from repro.smt.compiler import CompilationError, compile_assertions
from repro.smt.solver import QuantumSMTSolver, SmtResult
from repro.smt.theory import eval_formula

__all__ = ["FusedItemOutcome", "solve_batch_fused"]


@dataclass
class FusedItemOutcome:
    """Per-item outcome of one fused batch solve, in submission order."""

    result: SmtResult
    cache_hit: bool = False
    wall_time: float = 0.0
    error: str = ""
    error_type: str = ""
    #: How the item was decided: ``"fused"`` (tile pass), ``"fallback"``
    #: (tile pass failed verification; solo re-solve), ``"trivial"``
    #: (unsat/no QUBOs — no sampling involved), or ``"error"``.
    path: str = "fused"

    @property
    def status(self) -> str:
        return self.result.status


class _PendingItem:
    """Book-keeping for one item while the batch is in flight."""

    __slots__ = ("assertions", "problem", "cache_hit", "wall", "outcome", "samplesets")

    def __init__(self, assertions: List[ast.Term]) -> None:
        self.assertions = assertions
        self.problem = None
        self.cache_hit = False
        self.wall = 0.0
        self.outcome: Optional[FusedItemOutcome] = None
        self.samplesets: Dict[str, Any] = {}


def solve_batch_fused(
    assertion_sets: Sequence[Sequence[ast.Term]],
    *,
    sampler_factory: Optional[Callable[[], Sampler]] = None,
    num_reads: int = 64,
    seed: Any = None,
    sampler_params: Optional[Dict[str, Any]] = None,
    penalty_strength: float = 1.0,
    policy: Optional[RetryPolicy] = None,
    policies: Optional[Sequence[Optional[RetryPolicy]]] = None,
    cache: Optional[CompileCache] = None,
    metrics: Optional[MetricsRegistry] = None,
    tile_max: int = 16,
    solve_params: Optional[Dict[str, Any]] = None,
) -> List[FusedItemOutcome]:
    """Solve many assertion conjunctions through block-diagonal tiling.

    Parameters mirror :class:`~repro.service.batch.BatchSolver`;
    ``policies`` optionally supplies a per-item retry policy (the server
    clamps each request's policy into its deadline), overriding *policy*
    for that item's fallback solve. Returns one
    :class:`FusedItemOutcome` per item, in order.
    """
    if tile_max < 1:
        raise ValueError(f"tile_max must be >= 1, got {tile_max}")
    if policies is not None and len(policies) != len(assertion_sets):
        raise ValueError(
            f"policies must match assertion_sets length "
            f"({len(assertion_sets)}), got {len(policies)}"
        )
    cache = cache if cache is not None else CompileCache(maxsize=256)
    metrics = metrics if metrics is not None else MetricsRegistry()
    base_policy = policy if policy is not None else RetryPolicy(max_attempts=3)
    sampler_params = dict(sampler_params or {})
    solve_params = dict(solve_params or {})

    def item_policy(index: int) -> RetryPolicy:
        if policies is not None and policies[index] is not None:
            return policies[index]
        return base_policy

    def make_solver(index: int) -> QuantumSMTSolver:
        sampler = sampler_factory() if sampler_factory else None
        return QuantumSMTSolver(
            sampler=sampler,
            num_reads=num_reads,
            seed=seed,
            sampler_params=sampler_params,
            penalty_strength=penalty_strength,
            retry_policy=item_policy(index),
            metrics=metrics,
        )

    items = [_PendingItem(list(assertions)) for assertions in assertion_sets]

    # ---- phase 1: compile (shared cache), settle trivial/error items ---- #
    for index, item in enumerate(items):
        start = time.perf_counter()
        try:
            with metrics.time("compile"):
                problem, hit = cache.get_or_compile(
                    item.assertions,
                    penalty_strength=penalty_strength,
                    seed=seed,
                    compile_fn=lambda a=item.assertions: compile_assertions(
                        list(a), penalty_strength=penalty_strength, seed=seed
                    ),
                )
            metrics.counter("cache.hits" if hit else "cache.misses").inc()
            item.problem = problem
            item.cache_hit = hit
            if problem.trivially_unsat or not problem.formulations:
                # No sampling needed: solve_compiled short-circuits to
                # unsat / evaluates the ground conjunction.
                metrics.counter("fused.trivial").inc()
                result = _run_fallback(make_solver(index), item, solve_params)
                item.outcome = FusedItemOutcome(
                    result=result, cache_hit=hit, path="trivial"
                )
        except CompilationError as exc:
            item.outcome = FusedItemOutcome(
                result=SmtResult(status="unknown", reason=f"compilation: {exc}"),
                error=str(exc),
                error_type=type(exc).__name__,
                path="error",
            )
        item.wall += time.perf_counter() - start

    # ---- phase 2: tile the pending QUBOs and solve fused ---- #
    entries = []  # (item, variable, formulation, model)
    with metrics.time("embed"):
        for item in items:
            if item.outcome is not None:
                continue
            for variable, formulation in item.problem.formulations.items():
                entries.append((item, variable, formulation, formulation.build_model()))

    sampler = sampler_factory() if sampler_factory else SimulatedAnnealingSampler()
    tile_params = {**sampler_params, **solve_params}
    tile_params.setdefault("num_reads", num_reads)
    base_seed = tile_params.pop("seed", seed)
    for lo in range(0, len(entries), tile_max):
        chunk = entries[lo : lo + tile_max]
        tiled = tile_models([entry[3] for entry in chunk])
        start = time.perf_counter()
        with metrics.time("anneal"):
            samplesets = sampler.sample_tiled(tiled, seed=base_seed, **tile_params)
        share = (time.perf_counter() - start) / len(chunk)
        metrics.counter("fused.tiles").inc()
        metrics.counter("fused.blocks").inc(len(chunk))
        for (item, variable, _, _), sampleset in zip(chunk, samplesets):
            item.samplesets[variable] = sampleset
            item.wall += share

    # ---- phase 3: decode/verify per item; fall back where needed ---- #
    for index, item in enumerate(items):
        if item.outcome is not None:
            item.outcome.wall_time = item.wall
            continue
        start = time.perf_counter()
        outcome = _settle_item(item, index, make_solver, metrics, solve_params)
        item.wall += time.perf_counter() - start
        outcome.wall_time = item.wall
        outcome.cache_hit = item.cache_hit
        item.outcome = outcome

    return [item.outcome for item in items]


def _settle_item(
    item: _PendingItem,
    index: int,
    make_solver: Callable[[int], QuantumSMTSolver],
    metrics: MetricsRegistry,
    solve_params: Dict[str, Any],
) -> FusedItemOutcome:
    """Decode one item's fused blocks; fall back on any verification miss."""
    model: Dict[str, str] = {}
    solve_results: Dict[str, SolveResult] = {}
    verified = True
    with metrics.time("decode"):
        for variable, formulation in item.problem.formulations.items():
            result = result_from_sampleset(formulation, item.samplesets[variable])
            solve_results[variable] = result
            if not result.ok:
                verified = False
                break
            model[variable] = result.output
    if verified:
        # Final end-to-end model check under the concrete semantics — the
        # same gate solve_compiled applies before answering sat.
        for assertion in item.assertions:
            if ast.free_string_variables(assertion) and not eval_formula(
                assertion, model
            ):
                verified = False
                break
    if verified:
        metrics.counter("smt.check_sat").inc()
        metrics.counter("smt.sat").inc()
        return FusedItemOutcome(
            result=SmtResult(status="sat", model=model, solve_results=solve_results),
            path="fused",
        )

    # The fused single pass missed; re-solve solo with the full retry
    # policy — bit-identical to the thread/serial executor path.
    metrics.counter("fused.fallbacks").inc()
    try:
        result = _run_fallback(make_solver(index), item, solve_params)
        return FusedItemOutcome(result=result, path="fallback")
    except RetryExhaustedError as exc:
        return FusedItemOutcome(
            result=SmtResult(status="unknown", reason=str(exc)),
            error=str(exc),
            error_type=type(exc).__name__,
            path="fallback",
        )


def _run_fallback(
    solver: QuantumSMTSolver,
    item: _PendingItem,
    solve_params: Dict[str, Any],
) -> SmtResult:
    solver.assertions = list(item.assertions)
    return solver.solve_compiled(item.problem, **solve_params)
