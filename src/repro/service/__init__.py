"""The solving service layer: batching, caching, retries, metrics.

High-volume production traffic (see ROADMAP.md) re-issues near-identical
constraint sets; this subpackage amortizes and hardens the per-request
pipeline:

* :mod:`~repro.service.cache` — content-hash compile cache
  (constraint AST → compiled QUBO problem, LRU with hit/miss stats);
* :mod:`~repro.service.policy` — the retry / per-attempt timeout / backoff
  policy shared by every sampler path;
* :mod:`~repro.service.metrics` — thread-safe counters and timing
  histograms with a JSON export, threaded through
  compile → embed → anneal → decode;
* :mod:`~repro.service.batch` — :class:`BatchSolver`, solving many
  SMT-LIB scripts / constraint sets concurrently over a worker pool.

``batch`` is imported lazily (PEP 562): it depends on
:mod:`repro.smt.solver`, which itself uses the policy and metrics modules,
and laziness keeps that dependency acyclic.
"""

from repro.service.cache import (
    CacheStats,
    CompileCache,
    LruCache,
    compile_cache_key,
)
from repro.service.metrics import Counter, MetricsRegistry, histogram_summary
from repro.service.policy import (
    AttemptTimeout,
    RetryError,
    RetryExhaustedError,
    RetryOutcome,
    RetryPolicy,
)

__all__ = [
    "AttemptTimeout",
    "BatchItemResult",
    "BatchReport",
    "BatchSolver",
    "CacheStats",
    "CompileCache",
    "Counter",
    "LruCache",
    "MetricsRegistry",
    "RetryError",
    "RetryExhaustedError",
    "RetryOutcome",
    "RetryPolicy",
    "compile_cache_key",
    "histogram_summary",
]

_LAZY = {"BatchSolver", "BatchItemResult", "BatchReport"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.service import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _LAZY)
