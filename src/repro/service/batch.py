"""Concurrent batch solving with a shared compile cache and metrics.

:class:`BatchSolver` is the service entry point for high-volume workloads
(input validation, symbolic execution): it accepts many SMT-LIB scripts /
constraint sets at once, deduplicates compilation through the content-hash
:class:`~repro.service.cache.CompileCache`, solves the items over a worker
pool, and reports per-stage timings plus cache statistics through a
:class:`~repro.service.metrics.MetricsRegistry`.

Determinism contract
--------------------
Every item is solved by a **fresh** :class:`~repro.smt.solver.QuantumSMTSolver`
seeded with the batch's base seed, so for a fixed seed each item's result is
bit-identical to running ``QuantumSMTSolver(seed=...).check_sat()`` on that
item alone — independent of worker count, executor choice and cache state.
(The compile cache is sound because compilation is a pure function of
``(assertions, penalty_strength, seed)``; see ``cache.py``.)

Thread-safety: samplers are constructed per item via ``sampler_factory``;
cache and metrics are internally locked; per-item solvers are private to
their worker. Compiled models travel between cache and workers as
coefficient-dict-backed :class:`~repro.qubo.model.QuboModel` objects —
dense/CSR matrix views are lazy, read-only, and excluded from pickling —
and every sampler's ``coupling_mode="auto"`` selects the sparse CSR
kernels for the bit-local string QUBOs this service batches.
"""

from __future__ import annotations

import concurrent.futures as cf
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.anneal.base import Sampler
from repro.service.cache import CompileCache
from repro.service.metrics import MetricsRegistry
from repro.service.policy import RetryExhaustedError, RetryPolicy
from repro.smt import ast
from repro.smt.compiler import CompilationError
from repro.smt.parser import SmtScript, parse_script
from repro.smt.solver import QuantumSMTSolver, SmtResult
from repro.utils.rng import SeedLike
from repro.utils.timing import Timer

__all__ = ["BatchItemResult", "BatchReport", "BatchSolver"]

#: Accepted batch item shapes: SMT-LIB source text, a parsed script, or a
#: sequence of Bool-sorted AST terms (an assertion conjunction).
BatchItem = Union[str, SmtScript, Sequence[ast.Term]]


@dataclass
class BatchItemResult:
    """Outcome of one batch item, in submission order."""

    index: int
    result: SmtResult
    cache_hit: bool = False
    wall_time: float = 0.0
    error: str = ""
    error_type: str = ""
    #: Optimization-mode refinement (items carrying soft assertions):
    #: MaxSMT status plus the objective/bound bracket; plain items keep
    #: the null defaults.
    opt_status: str = ""
    objective: Optional[float] = None
    lower_bound: Optional[float] = None
    upper_bound: Optional[float] = None

    @property
    def status(self) -> str:
        return self.result.status

    @property
    def model(self) -> Dict[str, str]:
        return self.result.model

    def __repr__(self) -> str:
        if self.opt_status:
            return (
                f"BatchItemResult(index={self.index}, "
                f"opt_status={self.opt_status!r}, "
                f"objective={self.objective!r})"
            )
        return (
            f"BatchItemResult(index={self.index}, status={self.status!r}, "
            f"cache_hit={self.cache_hit})"
        )


@dataclass
class BatchReport:
    """All item results plus the batch-level statistics."""

    items: List[BatchItemResult] = field(default_factory=list)
    wall_time: float = 0.0
    cache_stats: Optional[Any] = None
    metrics: Optional[Dict[str, Dict]] = None

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __getitem__(self, index: int) -> BatchItemResult:
        return self.items[index]

    @property
    def statuses(self) -> List[str]:
        return [item.status for item in self.items]

    @property
    def models(self) -> List[Dict[str, str]]:
        return [item.model for item in self.items]

    @property
    def ok(self) -> bool:
        """True when no item failed with an error."""
        return all(not item.error for item in self.items)

    def __repr__(self) -> str:
        from collections import Counter as _Counter

        counts = dict(_Counter(self.statuses))
        return f"BatchReport(n={len(self.items)}, statuses={counts})"


class BatchSolver:
    """Solve many constraint sets concurrently with compile caching.

    Parameters
    ----------
    sampler_factory:
        Zero-argument callable producing a fresh sampler per item (samplers
        are not assumed thread-safe). ``None`` uses each solver's default
        simulated annealer — the paper's configuration.
    num_reads, seed, sampler_params, penalty_strength:
        Forwarded to the per-item :class:`QuantumSMTSolver`. The *same*
        base seed is used for every item, which is exactly what makes batch
        results element-wise reproducible against the sequential path.
    policy:
        Shared :class:`RetryPolicy` (default: 3 attempts, no backoff).
    cache:
        Shared :class:`CompileCache` (default: a fresh 256-entry cache).
    metrics:
        Shared :class:`MetricsRegistry` (default: a fresh registry).
    num_workers:
        Worker-pool width for ``executor="thread"``.
    executor:
        ``"thread"`` (default), ``"serial"``, or ``"fused"``. The serial
        mode runs the identical code path without a pool and is the
        reproducibility reference, mirroring
        :class:`~repro.anneal.parallel.ParallelSampler`. ``"fused"``
        routes the batch through :func:`repro.service.fused.solve_batch_fused`,
        which block-diagonally tiles the items' QUBOs into joint kernel
        calls (at most ``tile_max`` blocks per call) — one fused sweep
        loop instead of one per item. Items whose single fused pass fails
        verification fall back to the per-item path, so statuses keep the
        same soundness contract; see :mod:`repro.service.fused` for the
        determinism fine print.
    tile_max:
        Maximum QUBO blocks fused per kernel call (``executor="fused"``
        only; default 16).

    Examples
    --------
    >>> batch = BatchSolver(seed=7, num_reads=32,
    ...                     sampler_params={"num_sweeps": 300})
    >>> scripts = ['(declare-const x String)(assert (= x "hi"))(check-sat)'] * 3
    >>> report = batch.solve_batch(scripts)
    >>> report.statuses
    ['sat', 'sat', 'sat']
    >>> report.cache_stats.hits
    2
    """

    def __init__(
        self,
        sampler_factory: Optional[Callable[[], Sampler]] = None,
        *,
        num_reads: int = 64,
        seed: SeedLike = None,
        sampler_params: Optional[Dict[str, Any]] = None,
        penalty_strength: float = 1.0,
        max_attempts: int = 3,
        policy: Optional[RetryPolicy] = None,
        cache: Optional[CompileCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        num_workers: int = 4,
        executor: str = "thread",
        tile_max: int = 16,
        strategy: str = "direct",
        refine_max_rounds: int = 4,
        opt_max_restarts: int = 4,
        opt_deadline_ms: Optional[float] = None,
        opt_exhaustive_bits: int = 16,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if strategy not in ("direct", "refine"):
            raise ValueError(
                f"strategy must be 'direct' or 'refine', got {strategy!r}"
            )
        if executor == "fused" and strategy != "direct":
            raise ValueError(
                "executor='fused' requires strategy='direct'; fused tiles "
                "bypass the per-item refinement loop"
            )
        if executor not in ("thread", "serial", "fused"):
            raise ValueError(
                f"executor must be 'thread', 'serial' or 'fused', got {executor!r}"
            )
        if tile_max < 1:
            raise ValueError(f"tile_max must be >= 1, got {tile_max}")
        if seed is not None and not isinstance(seed, int):
            raise TypeError(
                "BatchSolver needs a reproducible seed (int or None); live "
                f"RNG objects cannot be shared across workers: {type(seed)!r}"
            )
        self.sampler_factory = sampler_factory
        self.num_reads = num_reads
        self.seed = seed
        self.sampler_params = dict(sampler_params or {})
        self.penalty_strength = penalty_strength
        self.policy = (
            policy if policy is not None else RetryPolicy(max_attempts=max_attempts)
        )
        self.cache = cache if cache is not None else CompileCache(maxsize=256)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.num_workers = num_workers
        self.executor = executor
        self.tile_max = tile_max
        self.strategy = strategy
        self.refine_max_rounds = refine_max_rounds
        self.opt_max_restarts = opt_max_restarts
        self.opt_deadline_ms = opt_deadline_ms
        self.opt_exhaustive_bits = opt_exhaustive_bits

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def solve_batch(
        self, items: Sequence[BatchItem], **solve_params: Any
    ) -> BatchReport:
        """Solve every item; results come back in submission order."""
        pairs = [self._coerce(item) for item in items]
        results: List[Optional[BatchItemResult]] = [None] * len(pairs)

        with Timer() as timer:
            if self.executor == "fused":
                results = self._solve_fused(pairs, solve_params)
            elif self.executor == "serial" or len(pairs) <= 1:
                for index, (assertions, soft) in enumerate(pairs):
                    results[index] = self._solve_one(
                        index, assertions, soft, solve_params
                    )
            else:
                width = min(self.num_workers, len(pairs))
                with cf.ThreadPoolExecutor(
                    max_workers=width, thread_name_prefix="batch-solver"
                ) as pool:
                    futures = {
                        pool.submit(
                            self._solve_one, index, assertions, soft, solve_params
                        ): index
                        for index, (assertions, soft) in enumerate(pairs)
                    }
                    for future in cf.as_completed(futures):
                        results[futures[future]] = future.result()

        wall = timer.elapsed
        self.metrics.counter("batch.runs").inc()
        self.metrics.observe("batch.wall", wall)
        stats = self.cache.stats
        report = BatchReport(
            items=[r for r in results if r is not None],
            wall_time=wall,
            cache_stats=stats,
            metrics=self.export_metrics(),
        )
        return report

    def solve_scripts(self, scripts: Sequence[str], **solve_params: Any) -> BatchReport:
        """Convenience alias: every item is SMT-LIB source text."""
        return self.solve_batch(list(scripts), **solve_params)

    def _solve_fused(
        self,
        pairs: List[Tuple[List[ast.Term], List[ast.SoftAssertion]]],
        solve_params: Dict[str, Any],
    ) -> List[BatchItemResult]:
        """The ``executor="fused"`` path: tile QUBOs across items.

        Delegates to :func:`repro.service.fused.solve_batch_fused` (which
        shares this solver's cache, metrics and retry policy) and maps its
        outcomes onto :class:`BatchItemResult` with the same ``batch.*``
        counters the per-item executors emit. Weighted items cannot join a
        fused tile (the tiler solves sat-only QUBOs); they take the
        per-item optimize path and are stitched back in submission order.
        """
        from repro.service.fused import solve_batch_fused

        results: List[Optional[BatchItemResult]] = [None] * len(pairs)
        plain = [(i, hard) for i, (hard, soft) in enumerate(pairs) if not soft]
        for index, (hard, soft) in enumerate(pairs):
            if soft:
                results[index] = self._solve_one(index, hard, soft, solve_params)
        if not plain:
            return [r for r in results if r is not None]
        outcomes = solve_batch_fused(
            [hard for _, hard in plain],
            sampler_factory=self.sampler_factory,
            num_reads=self.num_reads,
            seed=self.seed,
            sampler_params=self.sampler_params,
            penalty_strength=self.penalty_strength,
            policy=self.policy,
            cache=self.cache,
            metrics=self.metrics,
            tile_max=self.tile_max,
            solve_params=solve_params,
        )
        for (index, _), outcome in zip(plain, outcomes):
            self.metrics.counter("batch.items").inc()
            item = BatchItemResult(
                index=index,
                result=outcome.result,
                cache_hit=outcome.cache_hit,
                wall_time=outcome.wall_time,
                error=outcome.error,
                error_type=outcome.error_type,
            )
            self.metrics.observe("batch.item_wall", item.wall_time)
            self.metrics.counter(f"batch.{item.status}").inc()
            results[index] = item
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------ #
    # per-item work
    # ------------------------------------------------------------------ #

    def _coerce(
        self, item: BatchItem
    ) -> Tuple[List[ast.Term], List[ast.SoftAssertion]]:
        """Normalize one batch item to ``(hard, soft)`` conjunctions.

        Scripts carry their ``assert-soft`` commands through; sequences
        may mix :class:`~repro.smt.ast.SoftAssertion` records into the
        hard terms and are partitioned here. Items with any soft
        assertion route to the weighted-MaxSMT optimize path.
        """
        if isinstance(item, str):
            script = parse_script(item)
            return list(script.assertions), list(script.soft_assertions)
        if isinstance(item, SmtScript):
            return list(item.assertions), list(item.soft_assertions)
        if isinstance(item, (list, tuple)):
            hard = [t for t in item if not isinstance(t, ast.SoftAssertion)]
            soft = [t for t in item if isinstance(t, ast.SoftAssertion)]
            return hard, soft
        raise TypeError(
            "batch items must be SMT-LIB text, an SmtScript, or a sequence "
            f"of assertions; got {type(item)!r}"
        )

    def _make_solver(self) -> QuantumSMTSolver:
        sampler = self.sampler_factory() if self.sampler_factory else None
        return QuantumSMTSolver(
            sampler=sampler,
            num_reads=self.num_reads,
            seed=self.seed,
            sampler_params=self.sampler_params,
            penalty_strength=self.penalty_strength,
            retry_policy=self.policy,
            metrics=self.metrics,
            strategy=self.strategy,
            refine_max_rounds=self.refine_max_rounds,
            compile_cache=self.cache if self.strategy == "refine" else None,
        )

    def _solve_one(
        self,
        index: int,
        assertions: List[ast.Term],
        soft_assertions: List[ast.SoftAssertion],
        solve_params: Dict[str, Any],
    ) -> BatchItemResult:
        if soft_assertions:
            return self._optimize_one(
                index, assertions, soft_assertions, solve_params
            )
        timer = Timer().start()
        self.metrics.counter("batch.items").inc()
        solver = self._make_solver()
        solver.assertions = list(assertions)
        try:
            problem, hit = self.cache.get_or_compile(
                assertions,
                penalty_strength=self.penalty_strength,
                seed=self.seed,
                compile_fn=solver.compile,
            )
            self.metrics.counter("cache.hits" if hit else "cache.misses").inc()
            result = solver.solve_compiled(problem, **solve_params)
            item = BatchItemResult(
                index=index,
                result=result,
                cache_hit=hit,
                wall_time=timer.stop(),
            )
        except CompilationError as exc:
            # Out-of-fragment items degrade to unknown, like check_sat.
            item = BatchItemResult(
                index=index,
                result=SmtResult(status="unknown", reason=f"compilation: {exc}"),
                cache_hit=False,
                wall_time=timer.stop(),
                error=str(exc),
                error_type=type(exc).__name__,
            )
        except RetryExhaustedError as exc:
            # The typed robustness-layer failure: surfaced, never silent.
            item = BatchItemResult(
                index=index,
                result=SmtResult(status="unknown", reason=str(exc)),
                cache_hit=False,
                wall_time=timer.stop(),
                error=str(exc),
                error_type=type(exc).__name__,
            )
        self.metrics.observe("batch.item_wall", item.wall_time)
        self.metrics.counter(f"batch.{item.status}").inc()
        return item

    def _optimize_one(
        self,
        index: int,
        assertions: List[ast.Term],
        soft_assertions: List[ast.SoftAssertion],
        solve_params: Dict[str, Any],
    ) -> BatchItemResult:
        """One weighted-MaxSMT item: anytime optimize instead of decide.

        The MaxSMT status is projected onto the sat/unsat/unknown axis
        for the item's :class:`SmtResult` (feasible → sat); the full
        refinement rides in the item's ``opt_*``/bound fields.
        """
        import math

        from repro.opt import AnytimeOptimizer, solve_status_for

        timer = Timer().start()
        self.metrics.counter("batch.items").inc()
        self.metrics.counter("batch.optimizes").inc()
        optimizer = AnytimeOptimizer(
            sampler=self.sampler_factory() if self.sampler_factory else None,
            num_reads=self.num_reads,
            seed=self.seed,
            sampler_params=self.sampler_params,
            penalty_strength=self.penalty_strength,
            max_restarts=self.opt_max_restarts,
            deadline_ms=self.opt_deadline_ms,
            exhaustive_bits=self.opt_exhaustive_bits,
            metrics=self.metrics,
        )
        try:
            result = optimizer.optimize(
                assertions, soft_assertions, **solve_params
            )
            upper = float(result.upper_bound)
            item = BatchItemResult(
                index=index,
                result=SmtResult(
                    status=solve_status_for(result.status),
                    model=dict(result.model),
                    reason=result.reason,
                ),
                cache_hit=False,
                wall_time=timer.stop(),
                opt_status=str(result.status),
                objective=result.objective,
                lower_bound=float(result.lower_bound),
                upper_bound=None if math.isinf(upper) else upper,
            )
        except RetryExhaustedError as exc:
            item = BatchItemResult(
                index=index,
                result=SmtResult(status="unknown", reason=str(exc)),
                cache_hit=False,
                wall_time=timer.stop(),
                error=str(exc),
                error_type=type(exc).__name__,
                opt_status="unknown",
            )
        self.metrics.observe("batch.item_wall", item.wall_time)
        self.metrics.counter(f"batch.{item.status}").inc()
        self.metrics.counter(f"batch.opt.{item.opt_status}").inc()
        return item

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def export_metrics(self) -> Dict[str, Dict]:
        """Metrics snapshot including cache statistics (JSON-serializable)."""
        export = self.metrics.export()
        stats = self.cache.stats
        export["cache"] = {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "size": stats.size,
            "maxsize": stats.maxsize,
            "hit_rate": stats.hit_rate,
        }
        return export

    def metrics_json(self, indent: Optional[int] = 2) -> str:
        """The metrics export rendered as JSON (the benchmarks' format)."""
        import json

        return json.dumps(self.export_metrics(), indent=indent, sort_keys=True)
