"""Retry / timeout / backoff policy for stochastic sampler paths.

Annealing is a stochastic, incomplete decision procedure: a failed attempt
carries no information beyond "try again with a fresh seed". Before this
module every driver hand-rolled its own retry loop
(``QuantumSMTSolver._solve_with_retries``, ad-hoc loops in benchmarks);
:class:`RetryPolicy` extracts that logic into one configurable, testable
robustness layer shared by the SMT solver, the §4.12 pipeline and the
batch service.

Semantics
---------
* **max_attempts** — upper bound on executions of the attempt callable.
* **attempt_timeout** — optional per-attempt wall-clock budget in seconds.
  Attempts run on a helper thread when a timeout is set; an overdue attempt
  is *abandoned* (Python cannot preempt a running thread) and counted as a
  failure. Leave ``None`` (the default) to run attempts inline with zero
  overhead.
* **backoff** — sleep ``backoff_initial * backoff_factor**k`` (capped at
  ``backoff_max``) before retry ``k+1``. The default initial of ``0.0``
  disables sleeping, matching the historical retry loop. The sleep function
  is injectable for tests.

Exhausting every attempt raises the **typed** :class:`RetryExhaustedError`
carrying the last result / exception — callers decide whether to surface it
or to map it onto a soft ``unknown``.
"""

from __future__ import annotations

import concurrent.futures as cf
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.utils.timing import Timer

__all__ = [
    "RetryPolicy",
    "RetryOutcome",
    "RetryError",
    "RetryExhaustedError",
    "AttemptTimeout",
]


class RetryError(RuntimeError):
    """Base class for retry-policy failures."""


class AttemptTimeout(RetryError):
    """A single attempt exceeded its per-attempt wall-clock budget."""

    def __init__(self, attempt: int, timeout: float) -> None:
        super().__init__(
            f"attempt {attempt} exceeded its {timeout:.3g}s budget"
        )
        self.attempt = attempt
        self.timeout = timeout


class RetryExhaustedError(RetryError):
    """Every attempt failed; carries the evidence of the last one.

    Attributes
    ----------
    attempts:
        Number of attempts actually executed.
    last_result:
        The final attempt's (unsuccessful) return value, or ``None`` when
        the final attempt raised or timed out.
    last_exception:
        The final attempt's exception (including :class:`AttemptTimeout`),
        or ``None`` when it returned a value that failed the success check.
    """

    def __init__(
        self,
        description: str,
        attempts: int,
        last_result: Any = None,
        last_exception: Optional[BaseException] = None,
    ) -> None:
        detail = (
            f"last error: {last_exception!r}"
            if last_exception is not None
            else f"last result: {last_result!r}"
        )
        super().__init__(
            f"{description}: exhausted {attempts} attempt(s); {detail}"
        )
        self.description = description
        self.attempts = attempts
        self.last_result = last_result
        self.last_exception = last_exception


@dataclass
class RetryOutcome:
    """A successful :meth:`RetryPolicy.run`."""

    result: Any
    attempts: int
    #: Seconds spent sleeping between attempts (0.0 without backoff).
    waited: float = 0.0
    #: Wall-clock seconds of each attempt, in order.
    attempt_times: List[float] = field(default_factory=list)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry execution with optional timeout and backoff.

    Examples
    --------
    >>> policy = RetryPolicy(max_attempts=3)
    >>> policy.run(lambda attempt: attempt, succeeded=lambda r: r >= 1).result
    1
    """

    max_attempts: int = 3
    attempt_timeout: Optional[float] = None
    backoff_initial: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 60.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ValueError(
                f"attempt_timeout must be positive, got {self.attempt_timeout}"
            )
        if self.backoff_initial < 0:
            raise ValueError(
                f"backoff_initial must be non-negative, got {self.backoff_initial}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max < 0:
            raise ValueError(
                f"backoff_max must be non-negative, got {self.backoff_max}"
            )

    # ------------------------------------------------------------------ #
    # schedule
    # ------------------------------------------------------------------ #

    def backoff_delays(self) -> List[float]:
        """The sleep scheduled before each retry (``max_attempts - 1`` values)."""
        delays = []
        for k in range(self.max_attempts - 1):
            delay = self.backoff_initial * (self.backoff_factor ** k)
            delays.append(min(delay, self.backoff_max))
        return delays

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        attempt: Callable[[int], Any],
        *,
        succeeded: Optional[Callable[[Any], bool]] = None,
        sleep: Callable[[float], None] = time.sleep,
        description: str = "operation",
    ) -> RetryOutcome:
        """Execute *attempt* until it succeeds or the policy is exhausted.

        Parameters
        ----------
        attempt:
            Callable receiving the 1-based attempt index. Exceptions count
            as failures and are retried.
        succeeded:
            Predicate on the attempt's return value. Defaults to the
            result's ``ok`` attribute when present, else its truthiness —
            which makes ``SolveResult`` work unadorned.
        sleep:
            Injectable sleep for deterministic backoff tests.
        description:
            Used in the :class:`RetryExhaustedError` message.

        Raises
        ------
        RetryExhaustedError
            When every attempt failed; carries the last result/exception.
        """
        if succeeded is None:
            succeeded = _default_success
        delays = self.backoff_delays()
        waited = 0.0
        attempt_times: List[float] = []
        last_result: Any = None
        last_exception: Optional[BaseException] = None
        for index in range(1, self.max_attempts + 1):
            timer = Timer().start()
            try:
                result = self._call(attempt, index)
            except AttemptTimeout as exc:
                last_result, last_exception = None, exc
            except Exception as exc:  # noqa: BLE001 — failures are data here
                last_result, last_exception = None, exc
            else:
                attempt_times.append(timer.stop())
                if succeeded(result):
                    return RetryOutcome(
                        result=result,
                        attempts=index,
                        waited=waited,
                        attempt_times=attempt_times,
                    )
                last_result, last_exception = result, None
            if not attempt_times or len(attempt_times) < index:
                attempt_times.append(timer.stop())
            if index < self.max_attempts:
                delay = delays[index - 1]
                if delay > 0:
                    sleep(delay)
                    waited += delay
        raise RetryExhaustedError(
            description,
            attempts=self.max_attempts,
            last_result=last_result,
            last_exception=last_exception,
        )

    def _call(self, attempt: Callable[[int], Any], index: int) -> Any:
        if self.attempt_timeout is None:
            return attempt(index)
        pool = cf.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"retry-attempt-{index}"
        )
        future = pool.submit(attempt, index)
        try:
            return future.result(timeout=self.attempt_timeout)
        except cf.TimeoutError:
            raise AttemptTimeout(index, self.attempt_timeout) from None
        finally:
            # Never join an overdue worker: abandon it and move on.
            pool.shutdown(wait=False, cancel_futures=True)


def _default_success(result: Any) -> bool:
    ok = getattr(result, "ok", None)
    if ok is not None:
        return bool(ok)
    return bool(result)
