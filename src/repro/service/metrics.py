"""Counters and timing histograms for the solving service.

A :class:`MetricsRegistry` is a thread-safe bag of named **counters**
(monotone integers) and **histograms** (distributions of non-negative
samples — typically seconds). Stage timings build on
:class:`repro.utils.timing.Stopwatch`: the registry owns one stopwatch and
``registry.time("anneal")`` records a segment into it, so existing
Stopwatch-based profiling code and the new service metrics share one
storage and one export path.

The JSON export (:meth:`MetricsRegistry.export` /
:meth:`MetricsRegistry.to_json`) is the schema consumed by
``benchmarks/bench_batch.py`` and documented in DESIGN.md:

.. code-block:: json

    {
      "counters": {"batch.items": 20, "cache.hits": 16},
      "histograms": {
        "anneal": {"count": 20, "total": 1.9, "mean": 0.095,
                   "min": 0.08, "max": 0.12, "p50": 0.09, "p95": 0.12}
      }
    }
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.utils.timing import SegmentTimer, Stopwatch

__all__ = [
    "Counter",
    "MetricsRegistry",
    "MetricsSnapshot",
    "histogram_summary",
]


class Counter:
    """A named monotone counter (thread-safe through the registry lock)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self._value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> int:
        """Add *amount* (must be non-negative); returns the new value."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


def histogram_summary(values: List[float]) -> Dict[str, float]:
    """Summary statistics of one histogram series."""
    if not values:
        return {"count": 0, "total": 0.0, "mean": 0.0,
                "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0}
    ordered = sorted(values)
    n = len(ordered)

    def pct(p: float) -> float:
        # Nearest-rank percentile: robust for the small n of a solve batch.
        rank = max(0, min(n - 1, int(round(p * (n - 1)))))
        return float(ordered[rank])

    total = float(sum(ordered))
    return {
        "count": n,
        "total": total,
        "mean": total / n,
        "min": float(ordered[0]),
        "max": float(ordered[-1]),
        "p50": pct(0.50),
        "p95": pct(0.95),
    }


@dataclass(frozen=True)
class MetricsSnapshot:
    """A point-in-time marker of a :class:`MetricsRegistry`.

    Captures counter values and per-histogram sample counts so
    :meth:`MetricsRegistry.since` can attribute everything recorded *after*
    this point to one region of interest (one benchmark repeat, one batch,
    one request). Histograms are append-only and counters are monotone, so
    the marker stays valid however much is recorded afterwards.
    """

    counters: Mapping[str, int] = field(default_factory=dict)
    histogram_counts: Mapping[str, int] = field(default_factory=dict)


class MetricsRegistry:
    """Thread-safe registry of counters and timing histograms.

    Examples
    --------
    >>> metrics = MetricsRegistry()
    >>> metrics.counter("solves").inc()
    1
    >>> with metrics.time("anneal"):
    ...     pass
    >>> metrics.export()["histograms"]["anneal"]["count"]
    1
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._stopwatch = Stopwatch()

    # ------------------------------------------------------------------ #
    # counters
    # ------------------------------------------------------------------ #

    def counter(self, name: str) -> Counter:
        """The counter *name*, created on first use."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name, self._lock)
            return counter

    # ------------------------------------------------------------------ #
    # histograms (Stopwatch-backed)
    # ------------------------------------------------------------------ #

    def observe(self, name: str, value: float) -> None:
        """Record one non-negative sample into histogram *name*."""
        with self._lock:
            self._stopwatch.record(name, value)

    def time(self, name: str) -> SegmentTimer:
        """Context manager timing a block into histogram *name* (seconds).

        Shares :class:`repro.utils.timing.SegmentTimer` with
        :meth:`Stopwatch.time`; the only difference is that the recording
        callback here (:meth:`observe`) takes the registry lock.
        """
        return SegmentTimer(self.observe, name)

    def values(self, name: str) -> List[float]:
        """A copy of the raw samples of histogram *name*."""
        with self._lock:
            return list(self._stopwatch.segments.get(name, ()))

    @property
    def stopwatch(self) -> Stopwatch:
        """The backing stopwatch (shared storage with :meth:`time`)."""
        return self._stopwatch

    # ------------------------------------------------------------------ #
    # snapshot / diff (per-stage attribution)
    # ------------------------------------------------------------------ #

    def snapshot(self) -> MetricsSnapshot:
        """A consistent point-in-time marker (see :class:`MetricsSnapshot`)."""
        with self._lock:
            return MetricsSnapshot(
                counters={name: c.value for name, c in self._counters.items()},
                histogram_counts={
                    name: len(values)
                    for name, values in self._stopwatch.segments.items()
                },
            )

    def since(self, snapshot: MetricsSnapshot) -> Dict[str, Dict]:
        """Everything recorded after *snapshot*.

        Returns ``{"counters": {name: delta}, "histograms": {name:
        [new samples...]}}`` with zero-delta counters and unchanged
        histograms omitted — the per-stage attribution consumed by
        :mod:`repro.perf` to split one benchmark repeat into
        compile / embed / anneal / decode seconds.
        """
        with self._lock:
            counter_deltas = {}
            for name, counter in self._counters.items():
                delta = counter.value - snapshot.counters.get(name, 0)
                if delta:
                    counter_deltas[name] = delta
            histogram_deltas = {}
            for name, values in self._stopwatch.segments.items():
                start = snapshot.histogram_counts.get(name, 0)
                if len(values) > start:
                    histogram_deltas[name] = list(values[start:])
        return {"counters": counter_deltas, "histograms": histogram_deltas}

    # ------------------------------------------------------------------ #
    # aggregation / export
    # ------------------------------------------------------------------ #

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s counters and histograms into this registry."""
        with other._lock:
            counters = {n: c.value for n, c in other._counters.items()}
            segments = {n: list(v) for n, v in other._stopwatch.segments.items()}
        with self._lock:
            for name, value in counters.items():
                self.counter(name).inc(value)
            for name, values in segments.items():
                for value in values:
                    self._stopwatch.record(name, value)

    def export(self) -> Dict[str, Dict]:
        """Snapshot of every metric, JSON-serializable."""
        with self._lock:
            counters = {name: c.value for name, c in sorted(self._counters.items())}
            histograms = {
                name: histogram_summary(values)
                for name, values in sorted(self._stopwatch.segments.items())
            }
        return {"counters": counters, "histograms": histograms}

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The export, rendered as JSON text."""
        return json.dumps(self.export(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"histograms={len(self._stopwatch.segments)})"
            )
