"""Content-addressed compile cache: constraint AST → compiled QUBO problem.

High-volume workloads (input validation, symbolic execution) re-issue
near-identical constraint sets; recompiling the QUBO matrices for each
``check_sat`` wastes the dominant non-annealing cost. The cache keys on the
**content hash** of the assertion conjunction plus every compile input that
affects the output:

``key = sha256(repr(assertion_1) ␞ ... ␞ repr(assertion_n) | A | seed)``

The AST nodes are frozen dataclasses whose ``repr`` is canonical and
injective over field values, so structurally identical conjunctions hash
identically while any semantic difference (different literal, different
penalty weight, different seed) misses. Seeds that are live RNG objects are
*uncacheable* (their state advances per compile); they are keyed by object
identity so they can never produce a false hit.

A hit returns the **same** :class:`~repro.smt.compiler.CompiledProblem`
object — including each formulation's already-built
:class:`~repro.qubo.model.QuboModel` — so repeated formulations skip both
compilation and QUBO construction entirely.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CacheStats", "LruCache", "CompileCache", "compile_cache_key"]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache statistics."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class LruCache:
    """A thread-safe LRU mapping with hit/miss/eviction accounting.

    Lookup moves an entry to the most-recently-used end; insertion beyond
    ``maxsize`` evicts the least-recently-used entry.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.RLock()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # mapping operations
    # ------------------------------------------------------------------ #

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Lookup with LRU promotion; counts a hit or a miss."""
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            self._misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite; evicts the LRU entry when full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def get_or_create(
        self, key: Hashable, factory: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """``(value, hit)`` — computing via *factory* at most once per key.

        The factory runs under the cache lock, so concurrent callers with
        the same key never duplicate work (compilation is milliseconds;
        annealing, which dominates, happens outside the cache).
        """
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key], True
            self._misses += 1
            value = factory()
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1
            return value, False

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        """Peek without touching recency or statistics."""
        with self._lock:
            return key in self._data

    def keys(self) -> List[Hashable]:
        """LRU → MRU key order (for eviction-order tests)."""
        with self._lock:
            return list(self._data.keys())

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                maxsize=self.maxsize,
            )

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"{type(self).__name__}(size={s.size}/{s.maxsize}, "
            f"hits={s.hits}, misses={s.misses}, evictions={s.evictions})"
        )


_UNCACHEABLE_LOCK = threading.Lock()
_UNCACHEABLE_COUNTER = 0


def _canonical_seed(seed: Any) -> str:
    """A cache-key token for a seed; unique per call for live RNG state."""
    if seed is None:
        return "None"
    if isinstance(seed, (int, np.integer)):
        return f"int:{int(seed)}"
    # Generators / SeedSequences mutate across compiles — never share a key.
    global _UNCACHEABLE_COUNTER
    with _UNCACHEABLE_LOCK:
        _UNCACHEABLE_COUNTER += 1
        return f"uncacheable:{_UNCACHEABLE_COUNTER}"


def compile_cache_key(
    assertions: Sequence[Any],
    penalty_strength: float = 1.0,
    seed: Any = None,
    soft: Optional[Sequence[Any]] = None,
) -> str:
    """Content hash of one compile request (see module docstring).

    ``soft`` extends the key with a weighted conjunction's soft
    assertions; an empty/absent ``soft`` produces the exact bytes the
    unweighted key always produced, so existing cache entries and pinned
    state keys survive the optimization mode.
    """
    payload = "\x1e".join(repr(a) for a in assertions)
    payload += f"\x1f A={float(penalty_strength)!r}\x1f seed={_canonical_seed(seed)}"
    if soft:
        payload += "\x1f soft=" + "\x1e".join(repr(s) for s in soft)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CompileCache(LruCache):
    """LRU cache specialized for ``compile_assertions`` results.

    Examples
    --------
    >>> from repro.smt import ast
    >>> cache = CompileCache(maxsize=64)
    >>> conjunction = [ast.Eq(ast.StrVar("x"), ast.StrLit("hi"))]
    >>> p1, hit1 = cache.get_or_compile(conjunction, 1.0, 7)
    >>> p2, hit2 = cache.get_or_compile(list(conjunction), 1.0, 7)
    >>> (hit1, hit2, p1 is p2)
    (False, True, True)
    """

    def get_or_compile(
        self,
        assertions: Sequence[Any],
        penalty_strength: float = 1.0,
        seed: Any = None,
        compile_fn: Optional[Callable[[], Any]] = None,
    ) -> Tuple[Any, bool]:
        """``(problem, hit)`` for the assertion conjunction.

        ``compile_fn`` overrides the default
        :func:`repro.smt.compiler.compile_assertions` call (used to thread
        through a configured solver's ``compile``).
        """
        key = compile_cache_key(assertions, penalty_strength, seed)
        if compile_fn is None:
            def compile_fn() -> Any:
                from repro.smt.compiler import compile_assertions

                return compile_assertions(
                    list(assertions),
                    penalty_strength=penalty_strength,
                    seed=seed,
                )

        def build() -> Any:
            problem = compile_fn()
            # Materialize every QUBO now so a cache hit also skips model
            # construction, and concurrent readers only ever see built models.
            for formulation in getattr(problem, "formulations", {}).values():
                formulation.build_model()
            return problem

        return self.get_or_create(key, build)
