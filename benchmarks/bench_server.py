"""Load generator for the serving layer (``repro.server``).

Drives N concurrent clients over :class:`~repro.smt.generator.
InstanceGenerator` instances against an in-process
:class:`~repro.server.app.BackgroundServer` and reports throughput,
latency percentiles and the rejection/timeout mix, then cross-checks the
``/metrics`` accounting identity (``completed + rejected + timed out +
cancelled == submitted``).

This file runs two ways:

* as a script (``PYTHONPATH=src python benchmarks/bench_server.py
  [--clients 8 --requests 64]``) it prints the load report — the numbers
  referenced from EXPERIMENTS.md;
* with ``--smoke`` it is the CI ``server-smoke`` job: start the server,
  fire a 20-request mixed sat/unsat/parse-error burst through the client
  library, assert every envelope is well-formed and ``/healthz`` is
  green, exercise graceful shutdown, and exit non-zero on any violation
  — all inside a bounded wall-clock budget.

Scale-out flags: ``--backend process`` swaps the shard-local solve pool
for worker processes; ``--shards N`` stands up N shard servers behind a
:class:`~repro.server.router.ShardRouter` and drives the burst through
the router instead, reporting per-shard request counts and **cache-hit
concentration** (content-hash placement should keep repeat formulas on
one shard — visible as per-shard hit rates far above the uniform-spread
baseline). ``--repeat K`` re-fires the same burst K times so warm-cache
behaviour shows up in the report. The CI ``router-smoke`` job is
``--shards 2 --backend process --smoke``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.server.app import BackgroundServer, ServerConfig
from repro.server.client import AsyncSolverClient, SolveReply, SolverClient
from repro.smt.generator import InstanceGenerator
from repro.utils.timing import Timer

SEED = 2025
DEFAULT_CLIENTS = 8
DEFAULT_REQUESTS = 64
SMOKE_REQUESTS = 20

#: Deliberately-malformed scripts mixed into every burst: the server must
#: answer them with located ``error: parse`` envelopes, not crash.
PARSE_ERROR_SCRIPTS = [
    '(assert (= x "unterminated',
    ")))) garbage ((((",
    "(declare-const x String)(assert (= y x))(check-sat)",
]


def percentile(values: Sequence[float], p: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(p * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class LoadReport:
    """Aggregate of one burst."""

    submitted: int = 0
    wall_time: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)
    outcomes: Dict[str, int] = field(default_factory=dict)

    def record(self, reply: SolveReply, latency_ms: float) -> None:
        key = reply.status if reply.ok else f"error:{reply.error_type}"
        self.outcomes[key] = self.outcomes.get(key, 0) + 1
        self.latencies_ms.append(latency_ms)

    @property
    def throughput(self) -> float:
        return self.submitted / self.wall_time if self.wall_time else 0.0

    @property
    def rejection_rate(self) -> float:
        rejected = sum(
            count
            for key, count in self.outcomes.items()
            if key in ("error:overloaded", "error:too_large", "error:draining")
        )
        return rejected / self.submitted if self.submitted else 0.0

    def lines(self) -> List[str]:
        lat = self.latencies_ms
        return [
            f"requests submitted   : {self.submitted}",
            f"wall time            : {self.wall_time:.3f} s",
            f"throughput           : {self.throughput:.1f} req/s",
            f"latency p50/p95/p99  : {percentile(lat, 0.5):.1f} / "
            f"{percentile(lat, 0.95):.1f} / {percentile(lat, 0.99):.1f} ms",
            f"rejection rate       : {100.0 * self.rejection_rate:.1f} %",
            f"outcome mix          : "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.outcomes.items())),
        ]


def make_scripts(total: int, seed: int = SEED, unsat_every: int = 5) -> List[str]:
    """A mixed burst: generated sat instances, unsat instances, parse errors."""
    generator = InstanceGenerator(seed=seed, ops="all", max_constraints=2)
    scripts: List[str] = []
    for index in range(total):
        if index % 7 == 3:
            scripts.append(PARSE_ERROR_SCRIPTS[index % len(PARSE_ERROR_SCRIPTS)])
        elif index % unsat_every == unsat_every - 1:
            scripts.append(generator.generate_unsat().script)
        else:
            scripts.append(generator.generate().script)
    return scripts


def run_burst(
    server: BackgroundServer,
    scripts: Sequence[str],
    clients: int,
    deadline_ms: Optional[float] = None,
) -> LoadReport:
    """Fan the scripts over *clients* concurrent async workers."""
    report = LoadReport(submitted=len(scripts))
    queue: "asyncio.Queue[str]" = asyncio.Queue()

    async def worker(client: AsyncSolverClient) -> None:
        while True:
            try:
                script = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            with Timer() as timer:
                reply = await client.solve(script, deadline_ms=deadline_ms)
            report.record(reply, timer.elapsed * 1000.0)

    async def drive() -> None:
        for script in scripts:
            queue.put_nowait(script)
        pool = [
            AsyncSolverClient(server.host, server.port, timeout=120.0)
            for _ in range(clients)
        ]
        await asyncio.gather(*(worker(client) for client in pool))

    with Timer() as timer:
        asyncio.run(drive())
    report.wall_time = timer.elapsed
    return report


def check_accounting(metrics: Dict) -> List[str]:
    """Violations of the request-accounting identity (empty = clean)."""
    counters = metrics.get("counters", {})
    submitted = counters.get("server.requests", 0)
    completed = counters.get("server.completed", 0)
    rejected = sum(
        value
        for name, value in counters.items()
        if name.startswith("server.rejected.")
    )
    timeouts = counters.get("server.timeout", 0)
    cancelled = counters.get("server.cancelled", 0)
    internal = counters.get("server.internal", 0)
    accounted = completed + rejected + timeouts + cancelled + internal
    if submitted != accounted:
        return [
            f"accounting identity violated: submitted={submitted} but "
            f"completed={completed} + rejected={rejected} + "
            f"timeouts={timeouts} + cancelled={cancelled} + "
            f"internal={internal} = {accounted}"
        ]
    return []


def check_envelopes(report: LoadReport, expect_parse_errors: bool) -> List[str]:
    failures: List[str] = []
    if len(report.latencies_ms) != report.submitted:
        failures.append(
            f"only {len(report.latencies_ms)}/{report.submitted} requests "
            "produced a well-formed envelope"
        )
    good = sum(
        count
        for key, count in report.outcomes.items()
        if key in ("sat", "unsat", "unknown")
    )
    if good == 0:
        failures.append(f"no request solved at all: {report.outcomes}")
    if expect_parse_errors and report.outcomes.get("error:parse", 0) == 0:
        failures.append("parse-error scripts did not yield parse envelopes")
    return failures


# --------------------------------------------------------------------- #
# sharded mode
# --------------------------------------------------------------------- #


def shard_report_lines(metrics: Dict) -> List[str]:
    """Per-shard request counts and cache-hit concentration."""
    lines: List[str] = []
    shards = metrics.get("shards", {})
    for shard_id in sorted(shards):
        payload = shards[shard_id]
        if "error" in payload:
            lines.append(f"{shard_id:<10}: unreachable ({payload['error']})")
            continue
        counters = payload.get("counters", {})
        cache = payload.get("cache", {})
        hits = cache.get("hits", 0)
        lookups = hits + cache.get("misses", 0)
        rate = 100.0 * hits / lookups if lookups else 0.0
        lines.append(
            f"{shard_id:<10}: requests={counters.get('server.requests', 0):<4} "
            f"completed={counters.get('server.completed', 0):<4} "
            f"cache {hits}/{lookups} hits ({rate:.0f} %)"
        )
    rollup_cache = metrics.get("cache", {})
    total_hits = rollup_cache.get("hits", 0)
    total_lookups = total_hits + rollup_cache.get("misses", 0)
    if total_lookups:
        lines.append(
            f"{'fleet':<10}: cache {total_hits}/{total_lookups} hits "
            f"({100.0 * total_hits / total_lookups:.0f} %) — content-hash "
            "placement keeps repeats shard-local"
        )
    return lines


def run_sharded(args, requests: int, clients: int, scripts: List[str]):
    """The ``--shards N`` flavour: burst through a ShardRouter.

    Returns ``(reports, metrics, failures)`` — one LoadReport per repeat,
    the final aggregated router metrics, and any violations found.
    """
    from repro.server.router import BackgroundRouter, RouterConfig, ShardSpec

    failures: List[str] = []
    configs = [
        ServerConfig(
            port=0,
            workers=args.workers,
            backend=args.backend,
            batch_window_ms=args.batch_window_ms,
            batch_max=args.batch_max,
            queue_limit=args.queue_limit,
            deadline_ms=args.deadline_ms,
            drain_timeout=10.0,
            seed=args.seed,
            num_reads=args.num_reads,
            sampler_params={"num_sweeps": args.num_sweeps},
        )
        for _ in range(args.shards)
    ]
    servers = [BackgroundServer(config).start() for config in configs]
    router = BackgroundRouter(
        RouterConfig(
            port=0,
            shards=[ShardSpec("127.0.0.1", server.port) for server in servers],
            health_interval=0.25,
        )
    ).start()
    try:
        print(
            f"bench_server: {requests} requests × {args.repeat} over "
            f"{clients} clients → router {router.host}:{router.port} "
            f"({args.shards} shards, backend={args.backend}, "
            f"workers={args.workers}/shard)"
        )
        # run_burst only touches .host/.port, so the router passes as the
        # target transparently.
        reports = [run_burst(router, scripts, clients) for _ in range(args.repeat)]

        with SolverClient(router.host, router.port) as probe:
            health = probe.healthz()
            metrics = probe.metrics()
        if health.get("http_status") != 200 or health.get("status") != "ok":
            failures.append(f"router /healthz not green after the burst: {health}")
        if health.get("healthy_shards") != args.shards:
            failures.append(
                f"only {health.get('healthy_shards')}/{args.shards} shards "
                "healthy after the burst"
            )
        for report in reports:
            failures += check_envelopes(report, expect_parse_errors=True)
        # The identity must hold on the *aggregated* rollup, exactly as it
        # does per shard.
        failures += check_accounting(metrics)
    finally:
        router.stop()
        for server in servers:
            server.stop()
    return reports, metrics, failures


# --------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------- #


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-limit", type=int, default=32)
    parser.add_argument("--deadline-ms", type=float, default=60000.0)
    parser.add_argument("--num-reads", type=int, default=32)
    parser.add_argument("--num-sweeps", type=int, default=200)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="solve backend for the server(s): executor threads or "
        "long-lived worker processes",
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=0.0,
        help="micro-batching window for the thread backend: the server "
        "fuses concurrent requests into block-diagonal tiled kernel "
        "calls (0 = disabled)",
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=8,
        help="max requests fused per micro-batch (with --batch-window-ms)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="route the burst through a ShardRouter over this many shard "
        "servers (0 = single server, the default)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="fire the same burst this many times (repeats expose "
        "warm-cache concentration in sharded mode)",
    )
    parser.add_argument(
        "--overload",
        action="store_true",
        help="shrink the queue to force overload rejections during the burst",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: 20-request mixed burst + healthz + graceful "
        "shutdown assertions, non-zero exit on any violation",
    )
    args = parser.parse_args(argv)

    requests = SMOKE_REQUESTS if args.smoke else args.requests
    clients = min(args.clients, requests)
    queue_limit = 2 if args.overload else args.queue_limit
    workers = 1 if args.overload else args.workers
    scripts = make_scripts(requests, seed=args.seed)

    if args.shards:
        started = time.monotonic()
        reports, metrics, failures = run_sharded(args, requests, clients, scripts)
        total_elapsed = time.monotonic() - started
        print()
        for index, report in enumerate(reports):
            label = f"burst {index + 1}/{len(reports)}"
            print(f"  -- {label} " + "-" * max(1, 40 - len(label)))
            for line in report.lines():
                print("  " + line)
        print("  -- per-shard " + "-" * 28)
        for line in shard_report_lines(metrics):
            print("  " + line)
        print(f"  shutdown             : graceful (total wall {total_elapsed:.1f} s)")
        if args.smoke and total_elapsed > 180.0:
            failures.append(
                f"smoke run exceeded its wall-clock budget: {total_elapsed:.1f} s"
            )
        if failures:
            print("\nFAILURES:")
            for failure in failures:
                print("  - " + failure)
            return 1
        print(
            "\nOK: envelopes well-formed, router /healthz green, aggregated "
            "accounting identity holds"
        )
        return 0

    config = ServerConfig(
        port=0,
        workers=workers,
        backend=args.backend,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
        queue_limit=queue_limit,
        deadline_ms=args.deadline_ms,
        drain_timeout=10.0,
        seed=args.seed,
        num_reads=args.num_reads,
        sampler_params={"num_sweeps": args.num_sweeps},
    )

    failures: List[str] = []
    started = time.monotonic()
    with BackgroundServer(config) as server:
        print(
            f"bench_server: {requests} requests × {args.repeat} over "
            f"{clients} clients → {server.host}:{server.port} "
            f"(workers={workers}, backend={args.backend}, "
            f"queue_limit={queue_limit})"
        )
        reports = [run_burst(server, scripts, clients) for _ in range(args.repeat)]
        report = reports[-1]

        with SolverClient(server.host, server.port) as probe:
            health = probe.healthz()
            metrics = probe.metrics()
        if health.get("http_status") != 200 or health.get("status") != "ok":
            failures.append(f"/healthz not green after the burst: {health}")
        for burst_report in reports:
            failures += check_envelopes(burst_report, expect_parse_errors=True)
        failures += check_accounting(metrics)

    # Context exit exercised the graceful drain; the server must be gone.
    try:
        SolverClient(config.host, server.port, timeout=1.0).healthz()
        failures.append("server still answering after graceful shutdown")
    except Exception:
        pass
    total_elapsed = time.monotonic() - started

    print()
    for line in report.lines():
        print("  " + line)
    print(f"  shutdown             : graceful (total wall {total_elapsed:.1f} s)")

    if args.smoke and total_elapsed > 180.0:
        failures.append(f"smoke run exceeded its wall-clock budget: {total_elapsed:.1f} s")
    if failures:
        print("\nFAILURES:")
        for failure in failures:
            print("  - " + failure)
        return 1
    print("\nOK: envelopes well-formed, /healthz green, accounting identity holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
