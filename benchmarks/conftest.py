"""Benchmark-suite plumbing.

Flushes the reproduction tables queued by :func:`benchmarks.common.emit`
after pytest's capture ends, so ``pytest benchmarks/ --benchmark-only``
shows the regenerated paper tables alongside the timing summary.
"""

from benchmarks.common import REPORT_BUFFER


def pytest_terminal_summary(terminalreporter):
    if not REPORT_BUFFER:
        return
    terminalreporter.write_sep("=", "reproduced paper tables & figures")
    for line in REPORT_BUFFER:
        terminalreporter.write_line(line)
