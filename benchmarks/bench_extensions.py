"""Ext-H — the future-work extensions, measured.

The paper's §6 lists its future work: richer formulations and hardware
execution. This bench quantifies the extensions built on top of the
reproduction:

* negative constraints (disequality) via AND-chain quadratization — cost
  of auxiliary variables vs string length;
* reverse annealing as a §4.12 pipeline refinement step;
* the three hardware generations' embedding footprints (Chimera →
  Pegasus-like → Zephyr-like).
"""

import networkx as nx
import numpy as np
import pytest

from benchmarks.common import bench_few, bench_once, emit_table, make_solver
from repro.anneal import ReverseAnnealingSampler, SimulatedAnnealingSampler
from repro.core import PalindromeGeneration, StringNotEquals, StringQuboSolver
from repro.core.affixes import StringPrefixOf, StringSuffixOf
from repro.hardware import (
    chimera_graph,
    find_embedding,
    pegasus_like_graph,
    zephyr_like_graph,
)


def test_disequality_cost_table(benchmark):
    def _run():
        rows = []
        for n in [2, 4, 6, 8]:
            target = "x" * n
            f = StringNotEquals(target, seed=n)
            model = f.build_model()
            solver = make_solver(seed=300 + n)
            result = solver.solve(f)
            rows.append([
                n,
                7 * n,
                model.num_variables,
                model.num_interactions,
                repr(result.output),
                result.ok,
            ])
        emit_table(
            "Ext-H — disequality via AND-chain: auxiliary cost vs length",
            ["n", "string bits", "total vars", "couplings", "witness", "ok"],
            rows,
        )
        assert all(row[-1] for row in rows)

    bench_once(benchmark, _run)


def test_reverse_annealing_refinement_table(benchmark):
    def _run():
        rng = np.random.default_rng(0)
        from repro.qubo.model import QuboModel

        model = QuboModel.from_dense(np.triu(rng.normal(size=(24, 24))))
        rows = []
        for budget in [3, 10, 30]:
            rough = SimulatedAnnealingSampler().sample_model(
                model, num_reads=16, num_sweeps=budget, seed=1
            )
            refined = ReverseAnnealingSampler().sample_model(
                model,
                initial_states=rough.states,
                num_reads=16,
                num_sweeps=200,
                seed=2,
            )
            rows.append([
                budget,
                f"{rough.first.energy:.3f}",
                f"{refined.first.energy:.3f}",
                refined.first.energy <= rough.first.energy + 1e-9,
            ])
        emit_table(
            "Ext-H — reverse annealing refines short forward anneals (24-var QUBO)",
            ["forward sweeps", "rough best E", "refined best E", "improved-or-equal"],
            rows,
        )
        assert all(row[-1] for row in rows)

    bench_once(benchmark, _run)


def test_topology_generations_table(benchmark):
    def _run():
        rows = []
        k8 = nx.complete_graph(8)
        for name, topo in [
            ("chimera C6", chimera_graph(6)),
            ("pegasus-like P6", pegasus_like_graph(6)),
            ("zephyr-like Z6", zephyr_like_graph(6)),
        ]:
            degrees = [d for _, d in topo.degree()]
            emb = find_embedding(k8, topo, seed=3)
            lengths = [len(c) for c in emb.values()]
            rows.append([
                name,
                topo.number_of_edges(),
                f"{np.mean(degrees):.1f}",
                max(lengths),
                sum(lengths),
            ])
        emit_table(
            "Ext-H — hardware generations: connectivity vs K8 embedding cost",
            ["topology", "couplers", "mean degree", "max chain", "physical qubits"],
            rows,
        )

    bench_once(benchmark, _run)


def test_affix_constraints_table(benchmark):
    def _run():
        solver = make_solver(seed=77)
        rows = []
        for name, formulation in [
            ("prefixof 'GET ' @8", StringPrefixOf(8, "GET ", seed=1)),
            ("suffixof '.txt' @8", StringSuffixOf(8, ".txt", seed=2)),
        ]:
            result = solver.solve(formulation)
            rows.append([name, repr(result.output), f"{result.success_rate:.0%}", result.ok])
        emit_table(
            "Ext-H — affix formulations (indexOf-window corollaries)",
            ["constraint", "witness", "success", "ok"],
            rows,
        )
        assert all(row[-1] for row in rows)

    bench_once(benchmark, _run)


def test_disequality_latency(benchmark):
    solver = make_solver(seed=5)
    f = StringNotEquals("hello", seed=6)
    result = bench_few(benchmark, lambda: solver.solve(StringNotEquals("hello", seed=6)))
    assert result.ok


def test_reverse_annealing_latency(benchmark):
    model = PalindromeGeneration(6).build_model()
    starts = np.zeros((16, model.num_variables), dtype=np.int8)
    sampler = ReverseAnnealingSampler()
    bench_few(
        benchmark,
        lambda: sampler.sample_model(
            model, initial_states=starts, num_reads=16, num_sweeps=200, seed=7
        ),
    )
