"""Ext-C — sampler ablation: SA vs SQA vs tabu vs greedy vs random vs exact.

All samplers hit the same two workloads (a diagonal-only equality QUBO and
the coupled palindrome QUBO). Expected shape: SA/SQA/tabu/greedy all solve
the diagonal workload; random fails decisively (anchoring the claim that
annealing does real work); the coupled workload separates greedy (local
minima) from the annealers.
"""

import pytest

from benchmarks.common import bench_few, bench_once, emit_table
from repro.anneal import (
    ExactSolver,
    PathIntegralAnnealer,
    RandomSampler,
    SimulatedAnnealingSampler,
    SteepestDescentSampler,
    TabuSampler,
)
from repro.core import PalindromeGeneration, StringEquality, StringQuboSolver

SAMPLERS = [
    ("simulated-annealing", SimulatedAnnealingSampler(), {"num_sweeps": 400}, 48),
    ("sqa (path-integral)", PathIntegralAnnealer(), {"num_sweeps": 128}, 8),
    ("tabu", TabuSampler(), {}, 16),
    ("steepest-descent", SteepestDescentSampler(), {}, 48),
    ("random", RandomSampler(), {}, 48),
]


def _solve_with(sampler, params, reads, formulation, seed):
    solver = StringQuboSolver(
        sampler=sampler, num_reads=reads, seed=seed, sampler_params=params
    )
    return solver.solve(formulation)


def test_sampler_ablation_table(benchmark):
    def _run():
        workloads = [
            ("equality 'hello'", lambda: StringEquality("hello")),
            ("palindrome(6)", lambda: PalindromeGeneration(6)),
        ]
        rows = []
        for wname, factory in workloads:
            for sname, sampler, params, reads in SAMPLERS:
                result = _solve_with(sampler, params, reads, factory(), seed=hash(sname) % 1000)
                rows.append([
                    wname,
                    sname,
                    f"{result.wall_time:.3f}s",
                    f"{result.energy:.1f}",
                    f"{result.success_rate:.0%}",
                    result.ok,
                ])
        emit_table(
            "Ext-C — sampler ablation on the paper's workloads",
            ["workload", "sampler", "time", "best E", "success", "verified"],
            rows,
        )

    bench_once(benchmark, _run)


def test_exact_ground_truth_small(benchmark):
    def _run():
        """ExactSolver certifies the annealers on a small instance."""
        f = StringEquality("abc")  # 21 variables: enumerable
        model = f.build_model()
        _, ground = ExactSolver().ground_state(model)
        rows = [["exact (brute force)", f"{ground:.1f}", "reference"]]
        for sname, sampler, params, reads in SAMPLERS[:-1]:
            ss = sampler.sample_model(model, num_reads=reads, seed=3, **params)
            rows.append([
                sname,
                f"{ss.first.energy:.1f}",
                "hit" if abs(ss.first.energy - ground) < 1e-9 else "miss",
            ])
        emit_table(
            "Ext-C — ground-truth certification (equality 'abc', 21 qubits)",
            ["solver", "best energy", "vs exact"],
            rows,
        )
        for row in rows[1:]:
            assert row[2] == "hit", f"{row[0]} missed the certified ground state"

    bench_once(benchmark, _run)


@pytest.mark.parametrize(
    "name,sampler,params,reads",
    [(n, s, p, r) for n, s, p, r in SAMPLERS],
    ids=[n for n, *_ in SAMPLERS],
)
def test_sampler_latency(benchmark, name, sampler, params, reads):
    model = PalindromeGeneration(6).build_model()
    benchmark(
        lambda: sampler.sample_model(model, num_reads=reads, seed=5, **params)
    )
