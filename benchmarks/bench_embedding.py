"""Ext-E — the hardware path: embedding overhead and chain behaviour.

Quantifies what running the paper's QUBOs on a real annealer would cost:
chain lengths on Chimera vs the Pegasus-like topology, chain-break rates as
a function of chain strength, and the end-to-end success of a string solve
through the noisy simulated QPU.
"""

import networkx as nx
import numpy as np
import pytest

from benchmarks.common import bench_few, bench_once, emit_table
from repro.anneal.exact import ExactSolver
from repro.core import PalindromeGeneration, StringEquality, StringQuboSolver
from repro.hardware import (
    EmbeddingComposite,
    GaussianNoiseModel,
    SimulatedQPU,
    chimera_graph,
    find_embedding,
    pegasus_like_graph,
)


def test_chain_length_by_topology_table(benchmark):
    def _run():
        rows = []
        for k in [4, 6, 8, 10]:
            source = nx.complete_graph(k)
            for name, topo in [
                ("chimera C6", chimera_graph(6)),
                ("pegasus-like P6", pegasus_like_graph(6)),
            ]:
                emb = find_embedding(source, topo, seed=1)
                lengths = [len(c) for c in emb.values()]
                rows.append([
                    f"K{k}",
                    name,
                    max(lengths),
                    f"{np.mean(lengths):.1f}",
                    sum(lengths),
                ])
        emit_table(
            "Ext-E — embedding footprint: complete graphs on two topologies",
            ["source", "topology", "max chain", "mean chain", "physical qubits"],
            rows,
        )

    bench_once(benchmark, _run)


def test_chain_break_vs_strength_table(benchmark):
    def _run():
        """Weak chains break; over-strong chains drown the problem signal."""
        rng = np.random.default_rng(0)
        from repro.qubo.model import QuboModel

        model = QuboModel.from_dense(np.triu(rng.normal(size=(8, 8))))
        _, ground = ExactSolver().ground_state(model)
        qpu = SimulatedQPU(topology=chimera_graph(4))
        rows = []
        for strength in [0.05, 0.2, 1.0, 4.0, 16.0]:
            comp = EmbeddingComposite(qpu, chain_strength=strength)
            ss = comp.sample_model(model, num_reads=32, num_sweeps=300, seed=2)
            rows.append([
                strength,
                f"{ss.info['chain_break_fraction']:.1%}",
                f"{ss.first.energy:.2f}",
                "hit" if abs(ss.first.energy - ground) < 1e-6 else "miss",
            ])
        emit_table(
            "Ext-E — chain-break rate and solution quality vs chain strength "
            f"(dense 8-var QUBO, ground={ground:.2f})",
            ["chain strength", "chain breaks", "best E", "vs exact"],
            rows,
        )

    bench_once(benchmark, _run)


def test_string_solve_through_noisy_qpu_table(benchmark):
    def _run():
        rows = []
        for noise_level in [0.0, 0.01, 0.05, 0.2]:
            noise = (
                GaussianNoiseModel(h_sigma=noise_level, j_sigma=noise_level / 2)
                if noise_level
                else None
            )
            qpu = SimulatedQPU(topology=chimera_graph(6), noise=noise)
            solver = StringQuboSolver(
                sampler=EmbeddingComposite(qpu),
                num_reads=32,
                seed=3,
                sampler_params={"num_sweeps": 400},
            )
            result = solver.solve(StringEquality("hi"))
            rows.append([
                noise_level,
                result.output if result.ok else repr(result.output),
                f"{result.success_rate:.0%}",
                result.ok,
            ])
        emit_table(
            "Ext-E — equality 'hi' through the simulated QPU vs control noise",
            ["noise sigma", "output", "success", "verified"],
            rows,
        )

    bench_once(benchmark, _run)


def test_embedding_latency(benchmark):
    source = PalindromeGeneration(2).build_model().interaction_graph()
    topo = chimera_graph(6)
    bench_few(benchmark, lambda: find_embedding(source, topo, seed=4))


def test_qpu_solve_latency(benchmark):
    qpu = SimulatedQPU(topology=chimera_graph(6))
    solver = StringQuboSolver(
        sampler=EmbeddingComposite(qpu),
        num_reads=16,
        seed=5,
        sampler_params={"num_sweeps": 200},
    )
    bench_few(benchmark, lambda: solver.solve(StringEquality("hi")))
