"""Ext-D — the quantum QUBO pipeline vs the classical baseline solver.

The paper's framing: classical string solving degrades as the search space
grows; annealing explores it stochastically. We run both paths on the same
SMT constraints and report time and outcome. Expected shape on this
substrate: the classical propagation solver wins tiny instances outright
(it is exact and the instances are small), while the annealer's cost grows
slowly with instance size and it keeps producing witnesses where classical
enumeration starts visiting exponentially many candidates — e.g. the
unconstrained-filler workloads.
"""

import pytest

from benchmarks.common import bench_few, bench_once, emit_table, measure
from repro.smt import ClassicalStringSolver, QuantumSMTSolver, parse_script

WORKLOADS = {
    "equality (n=11)": '(declare-const x String)(assert (= x "hello world"))',
    "replaceAll (n=11)": (
        '(declare-const x String)'
        '(assert (= x (str.replace_all "hello world" "l" "x")))'
    ),
    "contains in 6": (
        "(declare-const x String)(assert (= (str.len x) 6))"
        '(assert (str.contains x "cat"))'
    ),
    "regex a[bc]+d @8": (
        "(declare-const x String)(assert (= (str.len x) 8))"
        '(assert (str.in_re x (re.++ (str.to_re "a") (re.+ (re.union (str.to_re "b") (str.to_re "c"))) (str.to_re "d"))))'
    ),
    "indexOf free fill @8": (
        "(declare-const x String)(assert (= (str.len x) 8))"
        '(assert (= (str.indexof x "hi") 3))'
    ),
}


def _quantum(script, seed):
    solver = QuantumSMTSolver.from_script_text(
        script, seed=seed, num_reads=48, max_attempts=5,
        sampler_params={"num_sweeps": 400},
    )
    elapsed, result = measure(solver.check_sat)
    return result, elapsed


def _classical(script):
    assertions = parse_script(script).assertions
    solver = ClassicalStringSolver(max_length=12)
    elapsed, result = measure(solver.solve, assertions)
    return result, elapsed


def test_quantum_vs_classical_table(benchmark):
    def _run():
        rows = []
        for name, script in WORKLOADS.items():
            q, q_time = _quantum(script, seed=abs(hash(name)) % 1000)
            c, c_time = _classical(script)
            rows.append([
                name,
                q.status,
                f"{q_time:.3f}s",
                c.status,
                f"{c_time:.3f}s",
                c.nodes_explored,
            ])
            assert q.status == "sat" == c.status, name
        emit_table(
            "Ext-D — quantum (annealed QUBO) vs classical (propagate+enumerate)",
            ["workload", "quantum", "q time", "classical", "c time", "c nodes"],
            rows,
        )

    bench_once(benchmark, _run)


def test_classical_refutation_blowup(benchmark):
    def _run():
        """The classical cost driver: unconstrained positions multiply nodes."""
        # A refutation query: x in [ab]+ but contains neither 'a' nor 'b'.
        # Propagation narrows every position to {a, b}; proving UNSAT then
        # requires visiting all 2^n leaves — the exponential behaviour the
        # paper's introduction attributes to classical string search.
        rows = []
        for n in [4, 8, 12, 16]:
            script = (
                f"(declare-const x String)(assert (= (str.len x) {n}))"
                '(assert (str.in_re x (re.+ (re.union (str.to_re "a") (str.to_re "b")))))'
                '(assert (not (str.contains x "a")))'
                '(assert (not (str.contains x "b")))'
            )
            assertions = parse_script(script).assertions
            solver = ClassicalStringSolver(max_length=20)
            elapsed, result = measure(solver.solve, assertions)
            rows.append(
                [n, f"2^{n}", result.status, result.nodes_explored, f"{elapsed:.4f}s"]
            )
            assert result.status == "unsat"
        emit_table(
            "Ext-D — classical refutation cost grows exponentially "
            "(x in [ab]+ with both letters excluded)",
            ["n", "leaves", "status", "nodes", "time"],
            rows,
        )

    bench_once(benchmark, _run)


@pytest.mark.parametrize("path", ["quantum", "classical"])
def test_head_to_head_latency(benchmark, path):
    script = WORKLOADS["contains in 6"]
    if path == "quantum":
        bench_few(benchmark, lambda: _quantum(script, seed=1)[0])
    else:
        bench_few(benchmark, lambda: _classical(script)[0])
