"""Shared benchmark utilities.

Benchmarks double as the reproduction harness: each one *prints* the
table/figure series it regenerates (so the paper-vs-measured comparison in
EXPERIMENTS.md can be refreshed from ``bench_output.txt``) and *times* the
representative kernel through pytest-benchmark.

pytest captures stdout, so the report printer writes to the real stdout
(``sys.__stdout__``), keeping the regenerated tables visible in the
``pytest benchmarks/ --benchmark-only | tee`` flow.
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Sequence

from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.core.solver import StringQuboSolver

# The monotonic-clock primitives live in repro.utils.timing (single source
# of wall-clock measurement — see that module's docstring); benchmarks
# re-export them instead of keeping local copies.
from repro.utils.timing import Timer, measure  # noqa: F401  (re-export)

__all__ = [
    "emit",
    "emit_table",
    "make_solver",
    "bench_once",
    "bench_few",
    "registered_workload",
    "run_registered",
    "measure",
    "Timer",
    "DEFAULT_SWEEPS",
    "DEFAULT_READS",
]

DEFAULT_SWEEPS = 400
DEFAULT_READS = 48


#: Lines queued for the end-of-run report (pytest captures stdout at the
#: file-descriptor level, so direct printing is invisible mid-run; the
#: ``pytest_terminal_summary`` hook in ``benchmarks/conftest.py`` flushes
#: this buffer after capture ends).
REPORT_BUFFER: List[str] = []


def emit(*lines: str) -> None:
    """Queue report lines for the end-of-run reproduction summary."""
    REPORT_BUFFER.extend(lines)


def emit_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render an aligned text table straight to the real stdout."""
    rows = [[str(c) for c in row] for row in rows]
    header = [str(h) for h in header]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: List[str]) -> str:
        return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths))

    emit("", f"## {title}", fmt(header), fmt(["-" * w for w in widths]))
    for row in rows:
        emit(fmt(row))


def bench_once(benchmark, fn):
    """Time *fn* exactly once.

    Used for the table-regeneration harnesses: they must run (and print)
    under ``--benchmark-only``, but repeating a multi-second sweep five
    times buys no precision worth the wall-clock.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def bench_few(benchmark, fn, rounds: int = 3):
    """Time *fn* a few rounds — the default for second-scale solves."""
    return benchmark.pedantic(fn, rounds=rounds, iterations=1, warmup_rounds=0)


def make_solver(seed: int = 2025, reads: int = DEFAULT_READS,
                sweeps: int = DEFAULT_SWEEPS) -> StringQuboSolver:
    """The paper's configuration: simulated annealing, A = 1."""
    return StringQuboSolver(
        sampler=SimulatedAnnealingSampler(),
        num_reads=reads,
        seed=seed,
        sampler_params={"num_sweeps": sweeps},
    )


def registered_workload(name: str):
    """A zero-arg runner for one registered ``repro.perf`` benchmark spec.

    Benchmarks that single out a representative workload are thin
    wrappers over the perf registry, so the pytest-benchmark numbers and
    the committed ``BENCH_*.json`` baselines describe the *same* workload
    (same seeds, same instances). Construction (instance generation,
    model building, cache priming) happens here, outside the timed
    region; each call of the returned function is one timed repeat and
    returns the workload fingerprint dict.
    """
    from repro.perf.registry import get_spec
    from repro.perf.workloads import build_workload
    from repro.service.metrics import MetricsRegistry

    workload = build_workload(get_spec(name))
    return lambda: workload.run(MetricsRegistry())


def run_registered(name: str):
    """Build and run one repeat of a registered spec (see above)."""
    return registered_workload(name)()
