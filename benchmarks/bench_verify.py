"""Verify-A — differential campaign throughput and verdict profile.

Measures the verification harness itself on a fixed-seed campaign:

* **campaign latency** — instances/second through generator → quantum
  solver → classical reference → classification (the fuzzing loop's
  sustained rate bounds how much differential evidence a CI budget buys);
* **verdict profile** — the agree/miss/unresolved split at the paper's
  solver configuration, reproduced as a table (soundness bugs must be 0);
* **cache leverage** — warm-cache re-run of the identical campaign,
  which also re-asserts the byte-identical-JSON determinism contract.
"""

import pytest

from benchmarks.common import DEFAULT_SWEEPS, bench_once, emit_table
from repro.service import CompileCache
from repro.verify import CampaignConfig, run_campaign

INSTANCES = 40
SEED = 2025


def _config():
    return CampaignConfig(
        instances=INSTANCES,
        seed=SEED,
        num_reads=48,
        num_sweeps=DEFAULT_SWEEPS,
        max_length=3,
        shrink_failures=False,  # measure the oracle loop, not ddmin
    )


def test_campaign_latency(benchmark):
    def run():
        return run_campaign(_config())

    report = bench_once(benchmark, run)
    assert report.instances_run == INSTANCES
    assert report.soundness_bugs == 0
    emit_table(
        "Verify-A: differential campaign "
        f"({INSTANCES} instances, seed {SEED})",
        ["metric", "value"],
        [
            ["instances/s", f"{report.instances_run / report.wall_time:.1f}"],
            *[[k, v] for k, v in sorted(report.verdicts.items())],
            ["ops covered", len(report.coverage)],
        ],
    )


def test_warm_cache_campaign(benchmark):
    cache = CompileCache(maxsize=256)
    cold = run_campaign(_config(), cache=cache)

    def run():
        return run_campaign(_config(), cache=cache)

    warm = bench_once(benchmark, run)
    assert warm.cache_hits > cold.cache_hits
    # The determinism contract, re-asserted under benchmark conditions.
    assert warm.to_json() == cold.to_json()
    emit_table(
        "Verify-A: cache leverage (same campaign, warm CompileCache)",
        ["run", "wall s", "cache hits"],
        [
            ["cold", f"{cold.wall_time:.2f}", cold.cache_hits],
            ["warm", f"{warm.wall_time:.2f}", warm.cache_hits],
        ],
    )
