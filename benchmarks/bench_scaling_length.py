"""Ext-A — scaling with string length.

The paper's core claim is that QUBO annealing offers a path through the
string search-space blowup. This bench sweeps the target length n and
reports, for the annealer at a fixed budget: wall time, success rate
(fraction of reads decoding to a verified string), and whether the ground
state was reached. The search space is 2^(7n), so the interesting shape is
how gracefully success decays while time stays near-linear in n.
"""

import pytest

from benchmarks.common import bench_few, bench_once, emit_table, make_solver
from repro.core import PalindromeGeneration, StringEquality

LENGTHS = [2, 4, 8, 12, 16, 24]


@pytest.mark.parametrize("length", LENGTHS)
def test_equality_scaling(benchmark, length):
    target = ("quantum strings!" * 3)[:length]
    solver = make_solver(seed=100 + length)
    result = bench_few(benchmark, lambda: solver.solve(StringEquality(target)))
    assert result.ok, f"annealer missed at n={length}"


def test_equality_scaling_table(benchmark):
    def _run():
        rows = []
        for length in LENGTHS:
            target = ("quantum strings!" * 3)[:length]
            solver = make_solver(seed=100 + length)
            result = solver.solve(StringEquality(target))
            rows.append([
                length,
                7 * length,
                f"2^{7 * length}",
                f"{result.wall_time:.3f}s",
                f"{result.success_rate:.0%}",
                result.reached_ground,
                result.ok,
            ])
        emit_table(
            "Ext-A — equality generation vs string length (48 reads, 400 sweeps)",
            ["n", "qubits", "search space", "time", "success", "ground", "ok"],
            rows,
        )

    bench_once(benchmark, _run)


def test_palindrome_scaling_table(benchmark):
    def _run():
        rows = []
        for length in [2, 4, 6, 8, 12]:
            solver = make_solver(seed=200 + length)
            result = solver.solve(PalindromeGeneration(length))
            rows.append([
                length,
                7 * length,
                f"{result.wall_time:.3f}s",
                f"{result.success_rate:.0%}",
                result.ok,
            ])
        emit_table(
            "Ext-A — palindrome generation vs length (coupled QUBO)",
            ["n", "qubits", "time", "success", "ok"],
            rows,
        )

    bench_once(benchmark, _run)


def test_palindrome_length_12(benchmark):
    """Thin wrapper over the tracked ``palindrome-n12`` perf spec (same
    seed/budget as the BENCH_core.json baseline entry)."""
    from benchmarks.common import registered_workload

    run = registered_workload("palindrome-n12")
    fingerprint = bench_few(benchmark, run)
    assert fingerprint["output"] == fingerprint["output"][::-1]
