"""Figure 1 — the solver pipeline, instrumented stage by stage.

The paper's Figure 1 shows: operation + args -> binary variables ->
QUBO matrix (+ penalties) -> annealer -> decode. This bench times each
stage separately across the supported operations and prints the resulting
stage-cost table — the quantitative version of the figure.
"""

import numpy as np
import pytest

from benchmarks.common import bench_few, bench_once, emit_table, make_solver
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.core import (
    PalindromeGeneration,
    RegexMatching,
    StringEquality,
    StringIncludes,
    StringReplaceAll,
    StringReversal,
    SubstringIndexOf,
    SubstringMatching,
)
from repro.utils.timing import Stopwatch

OPERATIONS = [
    ("equality", lambda: StringEquality("hello world")),
    ("substring", lambda: SubstringMatching(8, "cat")),
    ("includes", lambda: StringIncludes("the cat sat on", "cat")),
    ("indexOf", lambda: SubstringIndexOf(8, "hi", 3, seed=0)),
    ("replaceAll", lambda: StringReplaceAll("hello world", "l", "x")),
    ("reversal", lambda: StringReversal("hello world")),
    ("palindrome", lambda: PalindromeGeneration(8)),
    ("regex", lambda: RegexMatching("a[bc]+d", 8)),
]


def _staged_solve(factory, sampler, stopwatch: Stopwatch):
    with stopwatch.time("build-formulation"):
        formulation = factory()
    with stopwatch.time("build-qubo"):
        model = formulation.build_model()
    with stopwatch.time("anneal"):
        sampleset = sampler.sample_model(
            model, num_reads=48, num_sweeps=400, seed=7
        )
    with stopwatch.time("decode+verify"):
        best = sampleset.first
        decoded = formulation.decode(best.state(sampleset.variables))
        ok = formulation.verify(decoded)
    return decoded, ok


def test_figure1_stage_costs(benchmark):
    sampler = SimulatedAnnealingSampler()

    def run_all():
        stopwatch = Stopwatch()
        outputs = {}
        for name, factory in OPERATIONS:
            decoded, ok = _staged_solve(factory, sampler, stopwatch)
            outputs[name] = (decoded, ok)
        return stopwatch, outputs

    stopwatch, outputs = bench_few(benchmark, run_all)
    assert all(ok for _, ok in outputs.values())
    summary = stopwatch.summary()
    total = sum(summary.values())
    emit_table(
        "Figure 1 — pipeline stage costs over all supported operations",
        ["stage", "total seconds", "share"],
        [
            [stage, f"{seconds:.4f}", f"{seconds / total:.1%}"]
            for stage, seconds in summary.items()
        ],
    )
    emit_table(
        "Figure 1 — end-to-end outputs per operation",
        ["operation", "output", "verified"],
        [[name, repr(out), ok] for name, (out, ok) in outputs.items()],
    )


def test_figure1_single_operation_latency(benchmark):
    """Latency of one full pipeline pass (the figure's left-to-right arrow)."""
    solver = make_solver(seed=0)
    result = bench_few(benchmark, lambda: solver.solve(StringEquality("hello")))
    assert result.ok
