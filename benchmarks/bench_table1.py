"""Table 1 — the paper's evaluation table, regenerated.

Each benchmark reproduces one row: the constraint, a fragment of its QUBO
matrix (as printed in the paper), and the solver output, then times the
end-to-end solve. Matching rule: deterministic rows must equal the paper's
string exactly; generative rows (palindrome, regex, indexOf filler) must
satisfy the constraint, per the paper's own §5 caveat that those differ
run-to-run.
"""

import numpy as np
import pytest

from benchmarks.common import bench_few, bench_once, emit, emit_table, make_solver
from repro.core import (
    ConstraintPipeline,
    PalindromeGeneration,
    PipelineStage,
    RegexMatching,
    StringConcatenation,
    StringReplaceAll,
    StringReversal,
    SubstringIndexOf,
)
from repro.core.regex import regex_matches
from repro.utils.asciitab import CHAR_BITS


def _fragment(model, k=8):
    """First k diagonal entries, the way Table 1 abbreviates matrices."""
    diag = model.linear_vector()[:k]
    return "[" + ", ".join(f"{v:+.2f}" for v in diag) + ", ...]"


def test_row1_reverse_replace(benchmark):
    solver = make_solver(seed=1)
    pipeline = ConstraintPipeline([
        PipelineStage("reverse", lambda prev: StringReversal(prev)),
        PipelineStage("replace", lambda prev: StringReplaceAll(prev, "e", "a")),
    ])

    result = bench_few(benchmark, lambda: pipeline.run(solver, initial="hello"))
    assert result.output == "ollah" and result.ok
    emit_table(
        "Table 1 / row 1 — reverse 'hello', replace e->a",
        ["constraint", "matrix fragment", "paper output", "our output", "ok"],
        [[
            "reverse+replaceAll",
            _fragment(StringReversal("hello").build_model()),
            "ollah",
            result.output,
            result.ok,
        ]],
    )


def test_row2_palindrome(benchmark):
    solver = make_solver(seed=2)
    result = bench_few(benchmark, lambda: solver.solve(PalindromeGeneration(6)))
    assert result.ok and result.output == result.output[::-1]
    model = PalindromeGeneration(6).build_model()
    coupling = model.get(0, 5 * CHAR_BITS)
    emit_table(
        "Table 1 / row 2 — palindrome of length 6",
        ["constraint", "diag", "mirror coupling", "paper output", "our output", "ok"],
        [[
            "palindrome(6)",
            f"{model.get(0):+.2f}",
            f"{coupling:+.2f}",
            "OnFFnO (sample)",
            repr(result.output),
            result.ok,
        ]],
    )


def test_row3_regex(benchmark):
    solver = make_solver(seed=3)
    result = bench_few(benchmark, lambda: solver.solve(RegexMatching("a[bc]+", 5)))
    assert result.ok and regex_matches("a[bc]+", result.output)
    emit_table(
        "Table 1 / row 3 — regex a[bc]+ with length 5",
        ["constraint", "matrix fragment", "paper output", "our output", "ok"],
        [[
            "regex a[bc]+ @5",
            _fragment(RegexMatching("a[bc]+", 5).build_model()),
            "abcbb (sample)",
            repr(result.output),
            result.ok,
        ]],
    )


def test_row4_concat_replaceall(benchmark):
    solver = make_solver(seed=4)
    pipeline = ConstraintPipeline([
        PipelineStage("concat", lambda prev: StringConcatenation("hello ", "world")),
        PipelineStage("replace", lambda prev: StringReplaceAll(prev, "l", "x")),
    ])
    result = bench_few(benchmark, lambda: pipeline.run(solver))
    assert result.output == "hexxo worxd" and result.ok
    emit_table(
        "Table 1 / row 4 — concat 'hello '+'world', replaceAll l->x",
        ["constraint", "matrix fragment", "paper output", "our output", "ok"],
        [[
            "concat+replaceAll",
            _fragment(StringConcatenation("hello ", "world").build_model()),
            "hexxo worxd",
            result.output,
            result.ok,
        ]],
    )


def test_row5_indexof(benchmark):
    solver = make_solver(seed=5)
    result = bench_few(
        benchmark, lambda: solver.solve(SubstringIndexOf(6, "hi", 2, seed=11))
    )
    assert result.ok and result.output[2:4] == "hi" and len(result.output) == 6
    emit_table(
        "Table 1 / row 5 — length 6 with 'hi' at index 2",
        ["constraint", "strong/soft", "paper output", "our output", "ok"],
        [[
            "indexOf('hi')=2, len 6",
            "2.00 / 0.10 (xA)",
            "qphiqp (sample)",
            repr(result.output),
            result.ok,
        ]],
    )


def test_matrix_fragments(benchmark):
    """Regenerate the matrix fragments column for all five rows at once."""

    def build_all():
        return {
            "row1": StringReversal("hello").build_model().to_dense(),
            "row2": PalindromeGeneration(6).build_model().to_dense(),
            "row3": RegexMatching("a[bc]+", 5).build_model().to_dense(),
            "row4": StringConcatenation("hello ", "world").build_model().to_dense(),
            "row5": SubstringIndexOf(6, "hi", 2, seed=11).build_model().to_dense(),
        }

    matrices = bench_once(benchmark, build_all)
    rows = []
    for name, q in matrices.items():
        nnz = int(np.count_nonzero(q))
        rows.append([
            name,
            f"{q.shape[0]}x{q.shape[1]}",
            nnz,
            f"{q.min():+.2f}",
            f"{q.max():+.2f}",
        ])
    emit_table(
        "Table 1 — QUBO matrix shapes (full matrices behind the fragments)",
        ["row", "shape", "nnz", "min", "max"],
        rows,
    )
