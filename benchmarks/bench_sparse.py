"""Sparse-vs-dense annealing kernels across string lengths.

The bit-local string QUBOs of §4 have O(n) couplings on 7n variables, so
their off-diagonal density decays like 1/n; beyond the auto-select
threshold the CSR kernels should win on both sweep throughput (row-slice
field updates are O(deg) instead of O(n)) and model memory (CSR triplet
instead of an (n, n) float64 matrix), while staying **bit-identical** to
the dense path at a fixed seed.

This file runs two ways:

* under pytest-benchmark (``pytest benchmarks/bench_sparse.py
  --benchmark-only``) it regenerates the comparison table through the
  shared report buffer, like every other bench in this directory;
* as a script (``PYTHONPATH=src python benchmarks/bench_sparse.py
  [--smoke]``) it prints the same table directly and exits non-zero if
  the two kernels ever disagree — the CI smoke job.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.core import PalindromeGeneration
from repro.qubo.sparse import sparse_stats
from repro.utils.timing import measure

#: Palindrome lengths swept by the full benchmark (7 n binary variables
#: each); 64 is the acceptance point — 448 variables, where the sparse
#: path must be auto-selected and clearly ahead.
LENGTHS = [16, 32, 64, 96]
SMOKE_LENGTHS = [16, 32]

#: Many reads is the representative regime: success-rate accounting and the
#: batch service sample in bulk, and the dense kernel's O(R n) field update
#: is what the CSR row slices beat.
READS = 256
SWEEPS = 100
SMOKE_READS = 8
SMOKE_SWEEPS = 64
SEED = 2025


@dataclass
class SparseBenchRow:
    """One length's dense-vs-sparse comparison."""

    length: int
    num_variables: int
    density: float
    auto_sparse: bool
    dense_time: float
    sparse_time: float
    memory_ratio: float
    identical: bool

    @property
    def speedup(self) -> float:
        return self.dense_time / max(self.sparse_time, 1e-12)


def _time_mode(model, mode: str, reads: int, sweeps: int, seed: int):
    """Run the annealer with a forced coupling form; return (time, sampleset)."""
    sampler = SimulatedAnnealingSampler()
    return measure(
        sampler.sample_model,
        model,
        num_reads=reads,
        num_sweeps=sweeps,
        seed=seed,
        coupling_mode=mode,
    )


def measure(length: int, reads: int = READS, sweeps: int = SWEEPS,
            seed: int = SEED) -> SparseBenchRow:
    """Compare the dense and sparse kernels on one palindrome model."""
    model = PalindromeGeneration(length).build_model()
    stats = sparse_stats(model.to_dict(), model.num_variables)

    dense_time, dense_set = _time_mode(model, "dense", reads, sweeps, seed)
    sparse_time, sparse_set = _time_mode(model, "sparse", reads, sweeps, seed)

    identical = bool(
        np.array_equal(dense_set.states, sparse_set.states)
        and np.array_equal(dense_set.energies, sparse_set.energies)
    )
    return SparseBenchRow(
        length=length,
        num_variables=model.num_variables,
        density=stats.density,
        auto_sparse=stats.auto_sparse,
        dense_time=dense_time,
        sparse_time=sparse_time,
        memory_ratio=stats.memory_ratio,
        identical=identical,
    )


def _format_rows(rows: Sequence[SparseBenchRow]) -> List[List[str]]:
    return [
        [
            str(row.length),
            str(row.num_variables),
            f"{row.density:.4f}",
            str(row.auto_sparse),
            f"{row.dense_time:.3f}s",
            f"{row.sparse_time:.3f}s",
            f"{row.speedup:.1f}x",
            f"{row.memory_ratio:.1f}x",
            str(row.identical),
        ]
        for row in rows
    ]


_HEADER = [
    "n", "qubits", "density", "auto", "dense", "sparse",
    "speedup", "mem ratio", "bit-identical",
]


# ------------------------------------------------------------------ #
# pytest-benchmark entry points
# ------------------------------------------------------------------ #


def test_sparse_vs_dense_table(benchmark):
    from benchmarks.common import bench_once, emit_table

    def _run():
        rows = [measure(length) for length in LENGTHS]
        emit_table(
            "Sparse CSR vs dense kernels — palindrome generation "
            f"({READS} reads, {SWEEPS} sweeps)",
            _HEADER,
            _format_rows(rows),
        )
        for row in rows:
            assert row.identical, f"kernel mismatch at n={row.length}"
        return rows

    bench_once(benchmark, _run)


def test_sparse_kernel_length_64(benchmark):
    """Time the acceptance-point sparse kernel on its own.

    Thin wrapper over the tracked ``kernel-sparse-n64`` perf spec, so this
    number and the committed ``BENCH_sparse.json`` baseline describe the
    same workload.
    """
    from benchmarks.common import bench_few, registered_workload

    run = registered_workload("kernel-sparse-n64")
    fingerprint = bench_few(benchmark, run)
    assert fingerprint["coupling_form"] == "sparse"


# ------------------------------------------------------------------ #
# standalone / CI smoke entry point
# ------------------------------------------------------------------ #


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short lengths and budgets (the CI configuration)",
    )
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    lengths = SMOKE_LENGTHS if args.smoke else LENGTHS
    reads = SMOKE_READS if args.smoke else READS
    sweeps = SMOKE_SWEEPS if args.smoke else SWEEPS

    rows = [measure(n, reads=reads, sweeps=sweeps, seed=args.seed)
            for n in lengths]

    widths = [max(len(h), *(len(r[i]) for r in _format_rows(rows)))
              for i, h in enumerate(_HEADER)]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    print(f"sparse vs dense kernels ({reads} reads, {sweeps} sweeps)")
    print(fmt.format(*_HEADER))
    print(fmt.format(*("-" * w for w in widths)))
    for formatted in _format_rows(rows):
        print(fmt.format(*formatted))

    failures = [row.length for row in rows if not row.identical]
    if failures:
        print(f"FAIL: dense/sparse kernels disagree at n={failures}",
              file=sys.stderr)
        return 1
    print("OK: sparse kernel bit-identical to dense at fixed seed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
