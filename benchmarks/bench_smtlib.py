"""Ext-G — SMT front-end throughput: parse, compile, solve.

Times each layer of the SMT stack separately so front-end overhead can be
compared against annealing cost (shape: parsing and compilation are
microseconds-to-milliseconds; annealing dominates end-to-end latency).
"""

import pytest

from benchmarks.common import bench_few, bench_once, emit_table, measure
from repro.smt import QuantumSMTSolver, compile_assertions, parse_script

SCRIPT = """
(set-logic QF_S)
(declare-const a String)
(declare-const b String)
(declare-const c String)
(assert (= a (str.replace_all (str.++ "hello " "world") "l" "x")))
(assert (= (str.len b) 6))
(assert (= (str.indexof b "hi") 2))
(assert (= (str.len c) 5))
(assert (str.in_re c (re.++ (str.to_re "a") (re.+ (re.union (str.to_re "b") (str.to_re "c"))))))
(check-sat)
"""


def test_parse_latency(benchmark):
    script = bench_few(benchmark, lambda: parse_script(SCRIPT))
    assert len(script.assertions) == 5


def test_compile_latency(benchmark):
    assertions = parse_script(SCRIPT).assertions
    problem = bench_few(benchmark, lambda: compile_assertions(assertions, seed=0))
    assert set(problem.formulations) == {"a", "b", "c"}


def test_check_sat_latency(benchmark):
    def run():
        solver = QuantumSMTSolver.from_script_text(
            SCRIPT, seed=1, num_reads=48, sampler_params={"num_sweeps": 400}
        )
        return solver.check_sat()

    result = bench_few(benchmark, run)
    assert result.status == "sat"


def test_layer_breakdown_table(benchmark):
    def _run():
        parse_time, script = measure(parse_script, SCRIPT)
        compile_time, _ = measure(compile_assertions, script.assertions, seed=0)

        solver = QuantumSMTSolver.from_script_text(
            SCRIPT, seed=1, num_reads=48, sampler_params={"num_sweeps": 400}
        )
        solve_time, result = measure(solver.check_sat)
        assert result.status == "sat"

        total = parse_time + compile_time + solve_time
        emit_table(
            "Ext-G — SMT stack layer costs (3 variables, 5 assertions)",
            ["layer", "seconds", "share"],
            [
                ["parse (SMT-LIB -> AST)", f"{parse_time:.5f}", f"{parse_time/total:.2%}"],
                ["compile (AST -> QUBO)", f"{compile_time:.5f}", f"{compile_time/total:.2%}"],
                ["solve (anneal+verify)", f"{solve_time:.5f}", f"{solve_time/total:.2%}"],
            ],
        )

    bench_once(benchmark, _run)



def test_generated_instance_throughput_table(benchmark):
    def _run():
        from repro.smt.classical import ClassicalStringSolver
        from repro.smt.generator import InstanceGenerator
        from repro.smt.solver import QuantumSMTSolver
        from repro.smt.theory import eval_formula

        gen = InstanceGenerator(seed=42, max_length=6, max_constraints=2)
        instances = [gen.generate() for _ in range(8)]

        def _classical_sweep():
            ok = 0
            for inst in instances:
                result = ClassicalStringSolver().solve(inst.assertions)
                ok += result.status == "sat" and all(
                    eval_formula(a, result.model) for a in inst.assertions
                )
            return ok

        def _quantum_sweep():
            ok = 0
            for k, inst in enumerate(instances):
                solver = QuantumSMTSolver(
                    seed=k, num_reads=48, max_attempts=5,
                    sampler_params={"num_sweeps": 500},
                )
                solver.declare_const("x")
                for assertion in inst.assertions:
                    solver.add_assertion(assertion)
                ok += solver.check_sat().status == "sat"
            return ok

        classical_time, classical_ok = measure(_classical_sweep)
        quantum_time, quantum_ok = measure(_quantum_sweep)

        emit_table(
            "Ext-G — randomized instance sweep (8 planted-witness problems)",
            ["path", "solved+verified", "total time", "per instance"],
            [
                [
                    "classical",
                    f"{classical_ok}/8",
                    f"{classical_time:.3f}s",
                    f"{classical_time / 8:.4f}s",
                ],
                [
                    "quantum",
                    f"{quantum_ok}/8",
                    f"{quantum_time:.3f}s",
                    f"{quantum_time / 8:.4f}s",
                ],
            ],
        )
        assert classical_ok == 8
        assert quantum_ok >= 7  # stochastic path may rarely miss one

    bench_once(benchmark, _run)
