"""Ext-F — penalty-strength ablation.

The paper fixes A = 1 ("we find that this coefficient works best with our
simulated annealer") and, for indexOf, strong/soft factors of 2 and 0.1.
This bench sweeps both choices. Expected shape: success is flat in A for a
*fixed-relative* schedule (the model is scale-invariant once the beta range
adapts), so the paper's A = 1 is as good as any — and the strong/soft gap
is what matters for indexOf: close the gap and the pinned window stops
dominating the filler.
"""

import pytest

from benchmarks.common import bench_few, bench_once, emit_table
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.core import RegexMatching, StringQuboSolver, SubstringIndexOf


def _solver(seed):
    return StringQuboSolver(
        sampler=SimulatedAnnealingSampler(),
        num_reads=32,
        seed=seed,
        sampler_params={"num_sweeps": 300},
    )


def test_penalty_strength_sweep_table(benchmark):
    def _run():
        rows = []
        for a in [0.1, 0.5, 1.0, 2.0, 10.0]:
            result = _solver(int(a * 10)).solve(
                RegexMatching("a[bc]+", 5, penalty_strength=a)
            )
            rows.append([a, f"{result.energy:.2f}", f"{result.success_rate:.0%}", result.ok])
        emit_table(
            "Ext-F — penalty strength A sweep (regex a[bc]+ @5, adaptive schedule)",
            ["A", "best E", "success", "verified"],
            rows,
        )

    bench_once(benchmark, _run)


def test_penalty_strength_fixed_schedule_table(benchmark):
    def _run():
        """With a schedule tuned for A=1, mis-scaled A should hurt — the
        paper's 'A=1 works best' observation reproduced."""
        rows = []
        for a in [0.02, 1.0, 50.0]:
            solver = StringQuboSolver(
                sampler=SimulatedAnnealingSampler(),
                num_reads=32,
                seed=9,
                sampler_params={
                    "num_sweeps": 300,
                    # Fixed absolute range, appropriate for A = 1.
                    "beta_range": (0.1, 12.0),
                },
            )
            result = solver.solve(RegexMatching("a[bc]+", 5, penalty_strength=a))
            rows.append([a, f"{result.success_rate:.0%}", result.ok])
        emit_table(
            "Ext-F — A sweep under a FIXED beta schedule tuned for A=1",
            ["A", "success", "verified"],
            rows,
        )

    bench_once(benchmark, _run)


def test_indexof_strong_soft_ratio_table(benchmark):
    def _run():
        rows = []
        for strong, soft in [(2.0, 0.1), (2.0, 0.5), (2.0, 1.5), (1.1, 1.0)]:
            result = _solver(int(strong * 10 + soft * 100)).solve(
                SubstringIndexOf(
                    6, "hi", 2, strong_factor=strong, soft_factor=soft, seed=1
                )
            )
            window_ok = len(result.output) == 6 and result.output[2:4] == "hi"
            rows.append([
                f"{strong}/{soft}",
                repr(result.output),
                window_ok,
                f"{result.success_rate:.0%}",
            ])
        emit_table(
            "Ext-F — indexOf strong/soft factor ablation (paper: 2.0 / 0.1)",
            ["strong/soft", "output", "window intact", "success"],
            rows,
        )

    bench_once(benchmark, _run)


@pytest.mark.parametrize("a", [0.5, 1.0, 2.0])
def test_penalty_latency(benchmark, a):
    solver = _solver(3)
    benchmark(
        lambda: solver.solve(RegexMatching("a[bc]+", 5, penalty_strength=a))
    )
