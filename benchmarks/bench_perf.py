"""Perf-C — the tracked perf registry, end to end.

Runs every registered ``repro.perf`` suite (the workloads behind the
committed ``BENCH_*.json`` baselines) and regenerates the measurement
table: median wall, MAD, and per-stage compile/embed/anneal/decode
medians. This is the pytest-benchmark view of the same data
``python -m repro.perf run`` prints; the CLI is what CI gates on.
"""

import pytest

from benchmarks.common import bench_once, emit_table
from repro.perf import SUITES, run_suite


@pytest.mark.parametrize("suite", SUITES)
def test_perf_suite_table(benchmark, suite):
    def _run():
        results = run_suite(suite, repeats=3, warmup=1)
        rows = []
        for result in results:
            summary = result.wall_summary()
            stages = " ".join(
                f"{name}={value:.4f}"
                for name, value in result.stage_medians().items()
            )
            rows.append([
                result.name,
                f"{summary['median']:.4f}s",
                f"{summary['mad']:.4f}s",
                stages or "-",
            ])
        emit_table(
            f"Perf-C — tracked suite '{suite}' (3 repeats, 1 warmup)",
            ["benchmark", "median", "mad", "stage medians"],
            rows,
        )
        return results

    results = bench_once(benchmark, _run)
    assert results, f"suite {suite} has no registered benchmarks"
