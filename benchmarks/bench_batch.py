"""Svc-A — batch solve service: compile cache and worker-pool scaling.

Quantifies the two levers of the service layer on a validation-style
workload (many near-identical constraint sets):

* **compile cache** — cold vs warm batch over repeated scripts; the warm
  run should skip every compile (hit rate → (n-1)/n for n repeats of one
  unique script);
* **worker pool** — serial vs threaded executor on the same batch.

The end-of-run table also reproduces the metrics-export schema documented
in DESIGN.md (per-stage timings + cache hit rate).
"""

import json

import pytest

from benchmarks.common import DEFAULT_SWEEPS, bench_once, emit, emit_table
from repro.service import CompileCache, MetricsRegistry, RetryPolicy
from repro.service.batch import BatchSolver

UNIQUE_SCRIPTS = [
    f'(declare-const x String)(assert (= x "{word}"))(check-sat)'
    for word in ("hi", "ok", "go", "no", "up")
]
REPEATS = 4  # 5 unique scripts x 4 = 20-item batch


def _make_batch(executor="serial", num_workers=4, cache=None):
    return BatchSolver(
        seed=2025,
        num_reads=32,
        sampler_params={"num_sweeps": DEFAULT_SWEEPS},
        policy=RetryPolicy(max_attempts=3),
        cache=cache if cache is not None else CompileCache(maxsize=64),
        metrics=MetricsRegistry(),
        executor=executor,
        num_workers=num_workers,
    )


def _workload():
    return UNIQUE_SCRIPTS * REPEATS


def test_cold_batch_latency(benchmark):
    """Thin wrapper over the tracked ``batch-cold-serial`` perf spec."""
    from benchmarks.common import registered_workload

    run = registered_workload("batch-cold-serial")
    fingerprint = bench_once(benchmark, run)
    assert set(fingerprint["statuses"]) == {"sat"}


def test_warm_batch_latency(benchmark):
    """Thin wrapper over the tracked ``batch-warm-serial`` perf spec (the
    cache is primed at workload construction, outside the timed region)."""
    from benchmarks.common import registered_workload

    run = registered_workload("batch-warm-serial")
    fingerprint = bench_once(benchmark, run)
    assert set(fingerprint["statuses"]) == {"sat"}


@pytest.mark.slow
def test_threaded_batch_latency(benchmark):
    def run():
        return _make_batch(executor="thread", num_workers=4).solve_batch(
            _workload()
        )

    report = bench_once(benchmark, run)
    assert report.statuses == ["sat"] * len(_workload())


def test_batch_service_table(benchmark):
    def _run():
        rows = []
        metrics_blob = "{}"
        for label, executor, workers, warm in (
            ("serial / cold cache", "serial", 1, False),
            ("serial / warm cache", "serial", 1, True),
            ("4 threads / cold cache", "thread", 4, False),
            ("4 threads / warm cache", "thread", 4, True),
        ):
            cache = CompileCache(maxsize=64)
            if warm:
                _make_batch(cache=cache).solve_batch(_workload())
            batch = _make_batch(executor=executor, num_workers=workers, cache=cache)
            before = cache.stats
            report = batch.solve_batch(_workload())
            after = cache.stats
            hits = after.hits - before.hits
            lookups = hits + (after.misses - before.misses)
            export = batch.export_metrics()
            anneal = export["histograms"].get("anneal", {})
            rows.append(
                [
                    label,
                    f"{report.wall_time:.3f}s",
                    f"{hits}/{lookups}",
                    f"{anneal.get('mean', 0.0):.4f}s",
                    "".join(s[0] for s in report.statuses),
                ]
            )
            metrics_blob = json.dumps(export, sort_keys=True)[:240]
        emit_table(
            "Svc-A — 20-item batch (5 unique scripts x 4 repeats)",
            ["configuration", "batch wall", "cache hits", "anneal mean", "statuses"],
            rows,
        )
        emit("", "metrics export (truncated): " + metrics_blob)
        return rows

    rows = bench_once(benchmark, _run)
    # Warm runs answer every lookup from the cache.
    assert rows[1][2] == "20/20"
    assert rows[3][2] == "20/20"
