"""Ext-B — annealing budget: success probability vs reads and sweeps.

The knobs every annealing user turns. Reported shape: success rate rises
with both knobs; the geometric schedule dominates the linear one at equal
budget (it spends more sweeps in the decisive mid-temperature range).
"""

import pytest

from benchmarks.common import bench_few, bench_once, emit_table
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.core import RegexMatching, StringQuboSolver

PATTERN, LENGTH = "a[bc]+d", 8


def _success_rate(num_reads, num_sweeps, schedule="geometric", seed=0):
    solver = StringQuboSolver(
        sampler=SimulatedAnnealingSampler(),
        num_reads=num_reads,
        seed=seed,
        sampler_params={"num_sweeps": num_sweeps, "beta_schedule": schedule},
    )
    result = solver.solve(RegexMatching(PATTERN, LENGTH))
    return result


def test_success_vs_reads_table(benchmark):
    def _run():
        rows = []
        for reads in [1, 4, 16, 64]:
            result = _success_rate(reads, 300, seed=reads)
            rows.append([reads, f"{result.success_rate:.0%}", result.ok])
        emit_table(
            f"Ext-B — success vs num_reads (regex {PATTERN} @ {LENGTH}, 300 sweeps)",
            ["reads", "per-read success", "best verified"],
            rows,
        )

    bench_once(benchmark, _run)


def test_success_vs_sweeps_table(benchmark):
    def _run():
        rows = []
        for sweeps in [10, 50, 150, 400, 1000]:
            geo = _success_rate(32, sweeps, "geometric", seed=sweeps)
            lin = _success_rate(32, sweeps, "linear", seed=sweeps)
            rows.append([
                sweeps,
                f"{geo.success_rate:.0%}",
                f"{lin.success_rate:.0%}",
                geo.ok,
            ])
        emit_table(
            "Ext-B — success vs num_sweeps: geometric vs linear beta schedule",
            ["sweeps", "geometric", "linear", "verified (geo)"],
            rows,
        )

    bench_once(benchmark, _run)


@pytest.mark.parametrize("reads", [4, 64])
def test_read_cost_scaling(benchmark, reads):
    """Wall time should scale sub-linearly in reads (vectorized batch)."""
    sampler = SimulatedAnnealingSampler()
    model = RegexMatching(PATTERN, LENGTH).build_model()
    benchmark(
        lambda: sampler.sample_model(model, num_reads=reads, num_sweeps=300, seed=1)
    )


@pytest.mark.parametrize("schedule", ["geometric", "linear"])
def test_schedule_cost(benchmark, schedule):
    sampler = SimulatedAnnealingSampler()
    model = RegexMatching(PATTERN, LENGTH).build_model()
    benchmark(
        lambda: sampler.sample_model(
            model, num_reads=32, num_sweeps=300, beta_schedule=schedule, seed=2
        )
    )
