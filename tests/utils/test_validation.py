import numpy as np
import pytest

from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckType:
    def test_accepts_matching(self):
        assert check_type("x", 3, int) == 3

    def test_accepts_tuple_of_types(self):
        assert check_type("x", 3.5, (int, float)) == 3.5

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "no", int)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("a", 2) == 2.0

    def test_accepts_numpy_scalar(self):
        assert check_positive("a", np.float64(0.5)) == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive("a", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("a", -1)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_positive("a", float("nan"))
        with pytest.raises(ValueError):
            check_positive("a", float("inf"))

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("a", "1")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("b", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("b", -0.1)


class TestCheckProbability:
    def test_bounds_inclusive(self):
        assert check_probability("p", 0) == 0.0
        assert check_probability("p", 1) == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.01)
        with pytest.raises(ValueError):
            check_probability("p", -0.01)
