import time

import pytest

from repro.utils.timing import Stopwatch, Timer


class TestTimer:
    def test_elapsed_after_block(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.005

    def test_elapsed_inside_block_grows(self):
        with Timer() as t:
            first = t.elapsed
            time.sleep(0.005)
            assert t.elapsed >= first

    def test_elapsed_frozen_after_exit(self):
        with Timer() as t:
            pass
        frozen = t.elapsed
        time.sleep(0.005)
        assert t.elapsed == frozen


class TestStopwatch:
    def test_record_and_total(self):
        sw = Stopwatch()
        sw.record("build", 0.5)
        sw.record("build", 0.25)
        assert sw.total("build") == pytest.approx(0.75)

    def test_mean(self):
        sw = Stopwatch()
        sw.record("x", 1.0)
        sw.record("x", 3.0)
        assert sw.mean("x") == pytest.approx(2.0)

    def test_mean_missing_raises(self):
        with pytest.raises(KeyError):
            Stopwatch().mean("missing")

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError):
            Stopwatch().record("x", -1.0)

    def test_context_manager_records(self):
        sw = Stopwatch()
        with sw.time("phase"):
            time.sleep(0.005)
        assert sw.total("phase") >= 0.002

    def test_summary_order_and_values(self):
        sw = Stopwatch()
        sw.record("a", 1.0)
        sw.record("b", 2.0)
        sw.record("a", 1.0)
        assert sw.summary() == {"a": 2.0, "b": 2.0}
        assert list(sw.summary()) == ["a", "b"]

    def test_total_of_unknown_segment_is_zero(self):
        assert Stopwatch().total("nothing") == 0.0
