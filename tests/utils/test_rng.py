import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 2**31, size=16)
        b = ensure_rng(2).integers(0, 2**31, size=16)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(ss), np.random.Generator)

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_invalid_seed_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")

    def test_float_seed_raises(self):
        with pytest.raises(TypeError):
            ensure_rng(1.5)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        children = spawn_rngs(123, 3)
        draws = [c.integers(0, 2**31, size=8) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_reproducible_from_int_seed(self):
        a = [g.integers(0, 1000) for g in spawn_rngs(9, 4)]
        b = [g.integers(0, 1000) for g in spawn_rngs(9, 4)]
        assert a == b

    def test_reproducible_from_generator(self):
        a = [g.integers(0, 1000) for g in spawn_rngs(np.random.default_rng(5), 4)]
        b = [g.integers(0, 1000) for g in spawn_rngs(np.random.default_rng(5), 4)]
        assert a == b

    def test_spawn_from_seed_sequence(self):
        children = spawn_rngs(np.random.SeedSequence(11), 2)
        assert len(children) == 2
