import numpy as np
import pytest

from repro.utils.asciitab import (
    ALPHABET_SIZE,
    CHAR_BITS,
    PRINTABLE_MAX,
    PRINTABLE_MIN,
    is_ascii7,
    is_printable,
    printable_chars,
    random_printable,
)


class TestConstants:
    def test_char_bits_is_seven(self):
        # The paper's encoding is explicitly 7 bits per character.
        assert CHAR_BITS == 7

    def test_alphabet_size(self):
        assert ALPHABET_SIZE == 128

    def test_printable_bounds(self):
        assert chr(PRINTABLE_MIN) == " "
        assert chr(PRINTABLE_MAX) == "~"


class TestPredicates:
    def test_ascii7_accepts_plain_text(self):
        assert is_ascii7("hello world! 123")

    def test_ascii7_rejects_unicode(self):
        assert not is_ascii7("héllo")

    def test_ascii7_accepts_control_chars(self):
        assert is_ascii7("\x00\x1f\x7f")

    def test_empty_string_is_ascii7_and_printable(self):
        assert is_ascii7("")
        assert is_printable("")

    def test_printable_rejects_control_chars(self):
        assert not is_printable("a\x00b")
        assert not is_printable("\x7f")

    def test_printable_accepts_space_and_tilde(self):
        assert is_printable(" ~")


class TestPrintableChars:
    def test_count(self):
        assert len(printable_chars()) == PRINTABLE_MAX - PRINTABLE_MIN + 1

    def test_sorted_by_codepoint(self):
        chars = printable_chars()
        assert list(chars) == sorted(chars)


class TestRandomPrintable:
    def test_length(self):
        rng = np.random.default_rng(0)
        assert len(random_printable(rng, 10)) == 10

    def test_zero_length(self):
        rng = np.random.default_rng(0)
        assert random_printable(rng, 0) == ""

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            random_printable(np.random.default_rng(0), -1)

    def test_all_printable(self):
        rng = np.random.default_rng(1)
        assert is_printable(random_printable(rng, 500))

    def test_reproducible(self):
        a = random_printable(np.random.default_rng(2), 20)
        b = random_printable(np.random.default_rng(2), 20)
        assert a == b
