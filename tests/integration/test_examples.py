"""Smoke tests: the runnable examples must execute end to end.

Only the two fastest examples run in the default suite; the heavier ones
(hardware sweeps, repeated regex batches) are covered by their underlying
integration tests and the benchmark suite.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(name: str, timeout: int = 240) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart_runs_clean(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "FAIL" not in result.stdout
        assert "'ollah'" in result.stdout or "ollah" in result.stdout

    def test_smtlib_repl_demo(self):
        result = _run("smtlib_repl.py")
        assert result.returncode == 0, result.stderr
        assert "sat" in result.stdout
        assert "hello, operator" in result.stdout

    def test_all_examples_compile(self):
        """Every example must at least be importable as source."""
        for path in sorted(EXAMPLES.glob("*.py")):
            source = path.read_text()
            compile(source, str(path), "exec")
