"""The full arc of the paper: a quantum annealer as the theory solver
inside a DPLL(T) loop (CDCL boolean core + QUBO string engine)."""

import pytest

from repro.smt.dpllt import DpllTSolver, QuantumTheoryAdapter
from repro.smt.parser import parse_script
from repro.smt.theory import eval_formula


def _atoms(*bodies, decls="(declare-const x String)"):
    out = []
    for body in bodies:
        out.extend(parse_script(decls + f"(assert {body})").assertions)
    return out


def _adapter():
    return QuantumTheoryAdapter(
        seed=0, num_reads=48, max_attempts=5, sampler_params={"num_sweeps": 500}
    )


class TestQuantumTheoryInsideDpllT:
    def test_conjunction_sat(self):
        atoms = _atoms("(= (str.len x) 4)", '(str.contains x "ab")')
        solver = DpllTSolver(atoms, theory_solver=_adapter())
        result = solver.solve()
        assert result.status == "sat"
        for atom in atoms:
            assert eval_formula(atom, result.model)

    def test_disjunction_takes_consistent_branch(self):
        # (x = "aa" OR x = "bb") AND |x| = 2, both equalities allowed:
        # the boolean core picks one, the annealer generates the witness.
        atoms = _atoms('(= x "aa")', '(= x "bb")', "(= (str.len x) 2)")
        solver = DpllTSolver(
            atoms, clauses=[[1, 2], [-1, -2], [3]], theory_solver=_adapter()
        )
        result = solver.solve()
        assert result.status == "sat"
        assert result.model["x"] in ("aa", "bb")

    def test_negative_literal_handled_by_gadget(self):
        # Boolean core forces atom 1 false -> the theory conjunction
        # includes not(x = "zz"), solved via the AND-chain disequality.
        atoms = _atoms('(= x "zz")', "(= (str.len x) 2)")
        solver = DpllTSolver(atoms, clauses=[[-1], [2]], theory_solver=_adapter())
        result = solver.solve()
        assert result.status == "sat"
        assert result.model["x"] != "zz"
        assert len(result.model["x"]) == 2

    def test_annealer_cannot_refute(self):
        # Inconsistent branch: the quantum path answers unknown (it cannot
        # prove theory unsat), so the loop reports unknown, never a wrong
        # sat — the documented soundness asymmetry.
        atoms = _atoms('(= x "aa")', '(= x "bb")')
        solver = DpllTSolver(atoms, clauses=[[1], [2]], theory_solver=_adapter())
        result = solver.solve()
        assert result.status == "unknown"
