"""Cross-stack integration: SMT-LIB in, verified models out, on multiple
sampler backends, with agreement between the quantum and classical paths."""

import pytest

from repro.anneal import (
    PathIntegralAnnealer,
    PortfolioSampler,
    SimulatedAnnealingSampler,
    SteepestDescentSampler,
    TabuSampler,
)
from repro.smt import ClassicalStringSolver, QuantumSMTSolver, parse_script
from repro.smt.theory import eval_formula

SCRIPT = """
(set-logic QF_S)
(declare-const greeting String)
(declare-const needle_host String)
(declare-const pattern String)
(assert (= greeting (str.replace_all (str.++ "hello " "world") "l" "x")))
(assert (= (str.len needle_host) 6))
(assert (= (str.indexof needle_host "hi") 2))
(assert (= (str.len pattern) 5))
(assert (str.in_re pattern (re.++ (str.to_re "a") (re.+ (re.union (str.to_re "b") (str.to_re "c"))))))
(check-sat)
"""


def _verify_model(model):
    assertions = parse_script(SCRIPT).assertions
    for assertion in assertions:
        assert eval_formula(assertion, model), assertion


class TestQuantumPath:
    def test_simulated_annealing_backend(self):
        solver = QuantumSMTSolver.from_script_text(
            SCRIPT, seed=0, num_reads=48, sampler_params={"num_sweeps": 400}
        )
        result = solver.check_sat()
        assert result.status == "sat"
        _verify_model(result.model)
        assert result.model["greeting"] == "hexxo worxd"

    def test_sqa_backend(self):
        solver = QuantumSMTSolver.from_script_text(
            SCRIPT,
            sampler=PathIntegralAnnealer(),
            seed=1,
            num_reads=8,
            max_attempts=5,
            sampler_params={"num_sweeps": 128},
        )
        result = solver.check_sat()
        assert result.status == "sat"
        _verify_model(result.model)

    def test_tabu_backend(self):
        solver = QuantumSMTSolver.from_script_text(
            SCRIPT, sampler=TabuSampler(), seed=2, num_reads=16, max_attempts=5
        )
        result = solver.check_sat()
        assert result.status == "sat"
        _verify_model(result.model)

    def test_portfolio_backend(self):
        portfolio = PortfolioSampler(
            [
                ("sa", SimulatedAnnealingSampler(), {"num_sweeps": 300}),
                ("greedy", SteepestDescentSampler(), {}),
            ]
        )
        solver = QuantumSMTSolver.from_script_text(
            SCRIPT, sampler=portfolio, seed=3, num_reads=24
        )
        result = solver.check_sat()
        assert result.status == "sat"
        _verify_model(result.model)


class TestAgreementWithClassical:
    def test_both_find_verified_models(self):
        assertions = parse_script(SCRIPT).assertions
        classical = ClassicalStringSolver(max_length=8).solve(assertions)
        assert classical.status == "sat"
        for assertion in assertions:
            assert eval_formula(assertion, classical.model)

        quantum = QuantumSMTSolver.from_script_text(
            SCRIPT, seed=4, num_reads=48, sampler_params={"num_sweeps": 400}
        ).check_sat()
        assert quantum.status == "sat"
        # Ground constraints fully determine `greeting`; both must agree.
        assert quantum.model["greeting"] == classical.model["greeting"]

    def test_unsat_agreement(self):
        script = '(declare-const x String)(assert (= x "a"))(assert (= x "b"))'
        assertions = parse_script(script).assertions
        classical = ClassicalStringSolver().solve(assertions)
        assert classical.status == "unsat"
        # The QUBO path is incomplete: it may only say unknown, never sat.
        quantum = QuantumSMTSolver.from_script_text(
            script, seed=5, num_reads=16, sampler_params={"num_sweeps": 200}
        ).check_sat()
        assert quantum.status in ("unsat", "unknown")


class TestSequentialVsConjunctive:
    def test_pipeline_and_composite_agree(self):
        """§4.12 sequential composition vs QUBO-sum conjunction."""
        from repro.core import (
            ConstraintPipeline,
            PipelineStage,
            StringQuboSolver,
            StringReplaceAll,
            StringReversal,
        )

        solver = StringQuboSolver(
            num_reads=32, seed=6, sampler_params={"num_sweeps": 300}
        )
        pipeline = ConstraintPipeline(
            [
                PipelineStage("rev", lambda prev: StringReversal(prev)),
                PipelineStage("rep", lambda prev: StringReplaceAll(prev, "e", "a")),
            ]
        )
        sequential = pipeline.run(solver, initial="hello")
        # Conjunctive: single equality with the composed concrete result.
        script = (
            "(declare-const x String)"
            '(assert (= x (str.replace_all (str.rev "hello") "e" "a")))'
            "(check-sat)"
        )
        conjunctive = QuantumSMTSolver.from_script_text(
            script, seed=7, num_reads=32, sampler_params={"num_sweeps": 300}
        )
        result = conjunctive.check_sat()
        assert result.status == "sat"
        assert result.model["x"] == sequential.output == "ollah"
