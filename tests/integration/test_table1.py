"""Integration tests reproducing every row of the paper's Table 1.

Each test mirrors one row: the constraint, the structure of its QUBO
matrix, and the solver output. Outputs that the paper leaves free (the
palindrome's characters, regex slack, indexOf filler) are checked against
the constraint rather than the paper's sample string, exactly as §5 says:
"our palindrome or regex generation ... would produce a different string
every time, while still obeying the given constraints".
"""

import numpy as np
import pytest

from repro.core import (
    ConstraintPipeline,
    PalindromeGeneration,
    PipelineStage,
    RegexMatching,
    StringConcatenation,
    StringQuboSolver,
    StringReplaceAll,
    StringReversal,
    SubstringIndexOf,
)
from repro.utils.asciitab import CHAR_BITS


@pytest.fixture
def table1_solver():
    return StringQuboSolver(
        num_reads=48, seed=2025, sampler_params={"num_sweeps": 400}
    )


class TestRow1ReverseThenReplace:
    """Reverse 'hello' and replace 'e' with 'a' -> 'ollah'."""

    def test_output(self, table1_solver):
        pipeline = ConstraintPipeline(
            [
                PipelineStage("reverse", lambda prev: StringReversal(prev)),
                PipelineStage(
                    "replace", lambda prev: StringReplaceAll(prev, "e", "a")
                ),
            ]
        )
        result = pipeline.run(table1_solver, initial="hello")
        assert result.output == "ollah"
        assert result.ok
        assert result.stages[0].output == "olleh"

    def test_matrix_is_pure_diagonal(self):
        model = StringReversal("hello").build_model()
        assert model.num_interactions == 0
        assert set(np.unique(model.linear_vector())) == {-1.0, 1.0}


class TestRow2Palindrome:
    """Generate a palindrome with length 6 (paper sample: 'OnFFnO')."""

    def test_output_is_palindrome(self, table1_solver):
        result = table1_solver.solve(PalindromeGeneration(6))
        assert result.ok
        assert len(result.output) == 6
        assert result.output == result.output[::-1]
        assert result.energy == pytest.approx(0.0)

    def test_matrix_fragment(self):
        """diag 1.00 / coupling -2.00 — the fragment printed in Table 1."""
        model = PalindromeGeneration(6).build_model()
        diag = model.linear_vector()
        coupled = [v for _, _, v in model.iter_coefficients() if v < 0]
        assert set(np.unique(diag)) == {1.0}
        assert set(coupled) == {-2.0}


class TestRow3Regex:
    """Generate a string of length 5 matching a[bc]+ (paper: 'abcbb')."""

    def test_output_matches_pattern(self, table1_solver):
        result = table1_solver.solve(RegexMatching("a[bc]+", 5))
        assert result.ok
        assert result.output[0] == "a"
        assert set(result.output[1:]) <= set("bc")

    def test_matrix_fragment_class_weights(self):
        """Class positions carry ±A/2 shares; Table 1 shows the summed
        2.00/-1.00 entries for bits shared/contested by the class."""
        model = RegexMatching("a[bc]+", 5).build_model()
        diag = model.linear_vector()
        # Literal 'a' position: entries are ±1.
        assert set(np.unique(diag[:CHAR_BITS])) == {-1.0, 1.0}
        # Class positions: b,c share six bits (±1 after summing halves) and
        # cancel on the last bit (0).
        class_bits = diag[CHAR_BITS : 2 * CHAR_BITS]
        assert class_bits[-1] == pytest.approx(0.0)
        assert set(np.round(class_bits[:-1], 9)) <= {-1.0, 1.0}


class TestRow4ConcatReplaceAll:
    """Concatenate 'hello ' + 'world', replace all 'l' with 'x'."""

    def test_output(self, table1_solver):
        pipeline = ConstraintPipeline(
            [
                PipelineStage(
                    "concat", lambda prev: StringConcatenation("hello ", "world")
                ),
                PipelineStage(
                    "replace_all", lambda prev: StringReplaceAll(prev, "l", "x")
                ),
            ]
        )
        result = pipeline.run(table1_solver)
        assert result.output == "hexxo worxd"
        assert result.ok
        assert "l" not in result.output


class TestRow5IndexOf:
    """Length-6 string containing 'hi' at index 2 (paper: 'qphiqp')."""

    def test_output(self, table1_solver):
        result = table1_solver.solve(SubstringIndexOf(6, "hi", 2, seed=11))
        assert result.ok
        assert len(result.output) == 6
        assert result.output[2:4] == "hi"

    def test_flexible_positions_vary_with_seed(self):
        outputs = set()
        for seed in range(5):
            f = SubstringIndexOf(6, "hi", 2, seed=seed)
            outputs.add(f.soft_characters())
        assert len(outputs) > 1  # "a unique string" per run, per the paper

    def test_matrix_strong_soft_structure(self):
        model = SubstringIndexOf(6, "hi", 2, seed=0).build_model()
        diag = np.abs(model.linear_vector())
        window = diag[2 * CHAR_BITS : 4 * CHAR_BITS]
        outside = np.concatenate([diag[: 2 * CHAR_BITS], diag[4 * CHAR_BITS :]])
        np.testing.assert_allclose(window, 2.0)   # strong 2A
        np.testing.assert_allclose(outside, 0.1)  # soft 0.1A
