"""Cross-cutting integration flows assembled from multiple subsystems."""

import numpy as np
import pytest

from repro.anneal import (
    PopulationAnnealingSampler,
    ReverseAnnealingSampler,
    SimulatedAnnealingSampler,
)
from repro.core import (
    ConstraintPipeline,
    PipelineStage,
    StringEquality,
    StringNotEquals,
    StringQuboSolver,
    StringReplaceAll,
    StringReversal,
)
from repro.core.affixes import StringPrefixOf, StringSuffixOf
from repro.qubo import load_model, save_model


class TestRefinementFlow:
    def test_anneal_then_reverse_anneal_on_formulation(self):
        """Rough forward anneal + reverse-anneal refinement on a string QUBO."""
        f = StringEquality("refine me")
        model = f.build_model()
        rough = SimulatedAnnealingSampler().sample_model(
            model, num_reads=16, num_sweeps=4, seed=0
        )
        refined = ReverseAnnealingSampler().sample_model(
            model,
            initial_states=rough.states,
            num_reads=16,
            num_sweeps=300,
            seed=1,
        )
        assert refined.first.energy <= rough.first.energy + 1e-9
        decoded = f.decode(refined.first.state(refined.variables))
        assert decoded == "refine me"

    def test_population_annealing_drives_pipeline(self):
        solver = StringQuboSolver(
            sampler=PopulationAnnealingSampler(),
            num_reads=48,
            seed=2,
            sampler_params={"num_steps": 24},
        )
        pipeline = ConstraintPipeline(
            [
                PipelineStage("reverse", lambda prev: StringReversal(prev)),
                PipelineStage(
                    "replace", lambda prev: StringReplaceAll(prev, "o", "0")
                ),
            ]
        )
        result = pipeline.run(solver, initial="loop")
        assert result.output == "p00l"
        assert result.ok


class TestPersistenceFlow:
    def test_formulation_model_round_trips_through_disk(self, tmp_path):
        """Compile -> save -> load -> anneal: the hardware-submission shape."""
        f = StringPrefixOf(5, "ab", seed=3)
        path = tmp_path / "constraint.json"
        save_model(f.build_model(), path)
        restored = load_model(path)
        ss = SimulatedAnnealingSampler().sample_model(
            restored, num_reads=32, num_sweeps=300, seed=4
        )
        decoded = f.decode(ss.first.state(ss.variables))
        assert f.verify(decoded)

    def test_notequals_model_round_trips(self, tmp_path):
        f = StringNotEquals("xyz", seed=5)
        path = tmp_path / "neq.json"
        save_model(f.build_model(), path)
        restored = load_model(path)
        assert restored == f.build_model()


class TestAffixPipeline:
    def test_prefix_then_disequality(self, solver):
        """Generate a prefixed witness, then a *different* prefixed witness."""
        first = solver.solve(StringPrefixOf(5, "ab", seed=6))
        assert first.ok
        second = solver.solve(StringNotEquals(first.output, seed=7))
        assert second.ok
        assert second.output != first.output

    def test_suffix_feeds_reversal(self, solver):
        pipeline = ConstraintPipeline(
            [
                PipelineStage(
                    "suffix", lambda prev: StringSuffixOf(4, "ab", seed=8)
                ),
                PipelineStage("reverse", lambda prev: StringReversal(prev)),
            ]
        )
        result = pipeline.run(solver)
        assert result.ok
        assert result.output.startswith("ba")
