"""Integration: string constraints solved through the simulated QPU
(embed -> noisy anneal -> unembed), the paper's future-work pathway."""

import pytest

from repro.core import StringEquality, StringQuboSolver, PalindromeGeneration
from repro.hardware import (
    EmbeddingComposite,
    GaussianNoiseModel,
    SimulatedQPU,
    chimera_graph,
    pegasus_like_graph,
)


@pytest.fixture(scope="module")
def chimera_qpu():
    return SimulatedQPU(
        topology=chimera_graph(6),
        noise=GaussianNoiseModel(h_sigma=0.005, j_sigma=0.003),
        name="chimera-sim",
    )


class TestStringsOnHardware:
    def test_equality_through_qpu(self, chimera_qpu):
        solver = StringQuboSolver(
            sampler=EmbeddingComposite(chimera_qpu),
            num_reads=32,
            seed=0,
            sampler_params={"num_sweeps": 400},
        )
        result = solver.solve(StringEquality("hi"))
        assert result.output == "hi"
        assert result.ok
        assert result.info["chain_break_fraction"] >= 0.0

    def test_palindrome_through_qpu(self, chimera_qpu):
        solver = StringQuboSolver(
            sampler=EmbeddingComposite(chimera_qpu),
            num_reads=32,
            seed=1,
            sampler_params={"num_sweeps": 400},
        )
        result = solver.solve(PalindromeGeneration(2))
        assert result.ok
        assert result.output == result.output[::-1]

    def test_pegasus_like_topology(self):
        qpu = SimulatedQPU(topology=pegasus_like_graph(5), name="pegasus-sim")
        solver = StringQuboSolver(
            sampler=EmbeddingComposite(qpu),
            num_reads=24,
            seed=2,
            sampler_params={"num_sweeps": 300},
        )
        result = solver.solve(StringEquality("ab"))
        assert result.output == "ab"

    def test_embedding_stats_exposed(self, chimera_qpu):
        solver = StringQuboSolver(
            sampler=EmbeddingComposite(chimera_qpu),
            num_reads=8,
            seed=3,
            sampler_params={"num_sweeps": 200},
        )
        result = solver.solve(PalindromeGeneration(2))
        assert result.info["max_chain_length"] >= 1
        assert result.info["num_physical_qubits"] >= 14
