import numpy as np
import pytest

from repro.anneal.exact import ExactSolver
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.qubo.model import QuboModel


def _random_model(seed, n=10):
    rng = np.random.default_rng(seed)
    return QuboModel.from_dense(np.triu(rng.normal(size=(n, n))))


class TestBasics:
    def test_returns_requested_reads(self):
        ss = SimulatedAnnealingSampler().sample_model(
            _random_model(0), num_reads=7, num_sweeps=10, seed=0
        )
        assert len(ss) == 7

    def test_energies_consistent_with_model(self):
        m = _random_model(1)
        ss = SimulatedAnnealingSampler().sample_model(
            m, num_reads=5, num_sweeps=20, seed=1
        )
        np.testing.assert_allclose(ss.energies, m.energies(ss.states), atol=1e-9)

    def test_states_are_binary(self):
        ss = SimulatedAnnealingSampler().sample_model(
            _random_model(2), num_reads=4, num_sweeps=10, seed=2
        )
        assert np.isin(ss.states, (0, 1)).all()

    def test_reproducible_with_seed(self):
        m = _random_model(3)
        a = SimulatedAnnealingSampler().sample_model(m, num_reads=4, num_sweeps=30, seed=9)
        b = SimulatedAnnealingSampler().sample_model(m, num_reads=4, num_sweeps=30, seed=9)
        np.testing.assert_array_equal(a.states, b.states)

    def test_empty_model(self):
        ss = SimulatedAnnealingSampler().sample_model(QuboModel(0), num_reads=3)
        assert len(ss) == 3
        assert ss.states.shape == (3, 0)

    def test_offset_carried_into_energies(self):
        m = QuboModel(1, {(0, 0): -1.0}, offset=10.0)
        ss = SimulatedAnnealingSampler().sample_model(m, num_reads=2, num_sweeps=50, seed=0)
        assert ss.first.energy == pytest.approx(9.0)

    def test_info_metadata(self):
        ss = SimulatedAnnealingSampler().sample_model(
            _random_model(4), num_reads=2, num_sweeps=5, seed=0
        )
        assert ss.info["sampler"] == "SimulatedAnnealingSampler"
        assert ss.info["num_sweeps"] == 5


class TestParameterValidation:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(TypeError):
            SimulatedAnnealingSampler().sample_model(_random_model(0), bogus=1)

    def test_bad_num_reads(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSampler().sample_model(_random_model(0), num_reads=0)

    def test_bad_sweep_mode(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSampler().sample_model(
                _random_model(0), sweep_mode="zigzag"
            )

    def test_bad_schedule_name(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSampler().sample_model(
                _random_model(0), beta_schedule="exponentialish"
            )

    def test_explicit_schedule_must_be_positive(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSampler().sample_model(
                _random_model(0), beta_schedule=[0.5, -1.0]
            )

    def test_initial_states_shape_checked(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSampler().sample_model(
                _random_model(0), num_reads=2, initial_states=np.zeros((3, 10))
            )

    def test_initial_states_values_checked(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSampler().sample_model(
                _random_model(0), num_reads=1, initial_states=np.full(10, 2)
            )


class TestQuality:
    @pytest.mark.parametrize("mode", ["random", "sequential", "colored"])
    def test_finds_ground_state_of_random_model(self, mode):
        m = _random_model(5, n=12)
        _, ground = ExactSolver().ground_state(m)
        ss = SimulatedAnnealingSampler().sample_model(
            m, num_reads=24, num_sweeps=300, seed=5, sweep_mode=mode
        )
        assert ss.first.energy == pytest.approx(ground, abs=1e-9)

    def test_diagonal_model_solved_exactly(self):
        # Diagonal models decouple: every bit independently takes its sign.
        m = QuboModel(30)
        rng = np.random.default_rng(6)
        diag = rng.choice([-1.0, 1.0], size=30)
        for i, v in enumerate(diag):
            m.set_linear(i, v)
        ss = SimulatedAnnealingSampler().sample_model(
            m, num_reads=8, num_sweeps=100, seed=6
        )
        assert ss.first.energy == pytest.approx(np.minimum(diag, 0).sum())

    def test_explicit_beta_schedule_used(self):
        m = _random_model(7)
        ss = SimulatedAnnealingSampler().sample_model(
            m, num_reads=2, beta_schedule=np.array([0.5, 1.0, 2.0]), seed=0
        )
        assert ss.info["num_sweeps"] == 3
        assert ss.info["beta_range"] == (0.5, 2.0)

    def test_linear_schedule_accepted(self):
        ss = SimulatedAnnealingSampler().sample_model(
            _random_model(8), num_reads=2, num_sweeps=10,
            beta_schedule="linear", beta_range=(0.1, 5.0), seed=0,
        )
        assert ss.info["beta_range"] == (pytest.approx(0.1), pytest.approx(5.0))

    def test_initial_states_1d_broadcast(self):
        m = QuboModel(4, {(i, i): 1.0 for i in range(4)})
        # Start at the all-ones state; with a cold schedule SA should fall
        # to all-zeros (the unique optimum).
        ss = SimulatedAnnealingSampler().sample_model(
            m,
            num_reads=3,
            initial_states=np.ones(4, dtype=np.int8),
            beta_schedule=np.array([50.0] * 20),
            seed=0,
        )
        assert ss.first.energy == pytest.approx(0.0)

    def test_colored_equals_scan_on_ground_energy(self):
        m = _random_model(9, n=10)
        _, ground = ExactSolver().ground_state(m)
        colored = SimulatedAnnealingSampler().sample_model(
            m, num_reads=16, num_sweeps=300, seed=1, sweep_mode="colored"
        )
        assert colored.first.energy == pytest.approx(ground, abs=1e-9)
