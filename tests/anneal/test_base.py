"""Tests for the Sampler base-class convenience entry points."""

import numpy as np
import pytest

from repro.anneal.exact import ExactSolver
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.qubo.bqm import BinaryQuadraticModel


class TestSampleQubo:
    def test_dict_qubo_with_string_labels(self):
        q = {("a", "a"): -1.0, ("b", "b"): 2.0, ("a", "b"): -3.0}
        ss = ExactSolver().sample_qubo(q)
        best = ss.first
        # minimum at a=1, b=1: -1 + 2 - 3 = -2
        assert best.assignment == {"a": 1, "b": 1}
        assert best.energy == pytest.approx(-2.0)

    def test_diagonal_entries_are_linear(self):
        ss = ExactSolver().sample_qubo({("x", "x"): -5.0})
        assert ss.first.assignment == {"x": 1}
        assert ss.first.energy == pytest.approx(-5.0)

    def test_annealer_through_dict_interface(self):
        q = {(i, i): -1.0 for i in range(10)}
        ss = SimulatedAnnealingSampler().sample_qubo(
            q, num_reads=8, num_sweeps=100, seed=0
        )
        assert ss.first.energy == pytest.approx(-10.0)


class TestSampleIsing:
    def test_states_come_back_as_spins(self):
        h = {"s": -2.0}
        ss = ExactSolver().sample_ising(h, {})
        assert ss.first.assignment["s"] in (-1, 1)
        # h favours s = -1 (energy -(-2)? E = h*s = -2*s, minimized at s=+1)
        assert ss.first.assignment["s"] == 1
        assert ss.first.energy == pytest.approx(-2.0)

    def test_ferromagnetic_pair(self):
        ss = ExactSolver().sample_ising({}, {("u", "v"): -1.0})
        best = ss.first
        assert best.assignment["u"] == best.assignment["v"]
        assert best.energy == pytest.approx(-1.0)

    def test_energies_match_manual_ising(self):
        h = {"a": 0.5, "b": -1.5}
        j = {("a", "b"): 0.75}
        ss = ExactSolver().sample_ising(h, j)
        for sample in ss:
            sa, sb = sample.assignment["a"], sample.assignment["b"]
            manual = 0.5 * sa - 1.5 * sb + 0.75 * sa * sb
            assert sample.energy == pytest.approx(manual)


class TestSampleBqm:
    def test_labels_restored(self):
        bqm = BinaryQuadraticModel({"x": -1.0, "y": 1.0}, {("x", "y"): 0.5})
        ss = ExactSolver().sample_bqm(bqm)
        assert set(ss.variables) == {"x", "y"}
        assert ss.first.energy == pytest.approx(
            bqm.energy(ss.first.assignment)
        )

    def test_spin_bqm_energies_preserved(self):
        bqm = BinaryQuadraticModel.from_ising({"s": 1.0, "t": -1.0}, {("s", "t"): 2.0})
        ss = ExactSolver().sample_bqm(bqm)
        # States are reported in binary, but energies match the spin model
        # under s = 2x - 1.
        best = ss.first
        spins = {v: 2 * val - 1 for v, val in best.assignment.items()}
        assert best.energy == pytest.approx(bqm.energy(spins))

    def test_parameters_forwarded(self):
        bqm = BinaryQuadraticModel({"x": -1.0})
        ss = SimulatedAnnealingSampler().sample_bqm(
            bqm, num_reads=5, num_sweeps=10, seed=1
        )
        assert len(ss) == 5
