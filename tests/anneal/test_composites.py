import numpy as np
import pytest

from repro.anneal.composites import (
    ScaleComposite,
    SpinReversalTransformComposite,
    TruncateComposite,
)
from repro.anneal.exact import ExactSolver
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.qubo.model import QuboModel


def _random_model(seed, n=8, scale=10.0):
    rng = np.random.default_rng(seed)
    return QuboModel.from_dense(scale * np.triu(rng.normal(size=(n, n))))


class TestScaleComposite:
    def test_energies_are_true_energies(self):
        m = _random_model(0, scale=50.0)
        ss = ScaleComposite(SimulatedAnnealingSampler()).sample_model(
            m, num_reads=8, num_sweeps=200, seed=0
        )
        np.testing.assert_allclose(ss.energies, m.energies(ss.states), atol=1e-9)

    def test_scale_factor_recorded(self):
        m = _random_model(1, scale=4.0)
        ss = ScaleComposite(SimulatedAnnealingSampler(), target=1.0).sample_model(
            m, num_reads=2, num_sweeps=20, seed=0
        )
        assert 0 < ss.info["scale_factor"] < 1

    def test_small_model_not_scaled(self):
        m = _random_model(2, scale=0.1)
        ss = ScaleComposite(SimulatedAnnealingSampler(), target=1.0).sample_model(
            m, num_reads=2, num_sweeps=20, seed=0
        )
        assert ss.info["scale_factor"] == 1.0

    def test_argmin_preserved(self):
        m = _random_model(3, scale=100.0)
        _, ground = ExactSolver().ground_state(m)
        ss = ScaleComposite(SimulatedAnnealingSampler()).sample_model(
            m, num_reads=16, num_sweeps=300, seed=1
        )
        assert ss.first.energy == pytest.approx(ground, abs=1e-6)

    def test_bad_target(self):
        with pytest.raises(ValueError):
            ScaleComposite(SimulatedAnnealingSampler(), target=0.0)


class TestTruncateComposite:
    def test_keeps_best_k(self):
        m = _random_model(4)
        ss = TruncateComposite(SimulatedAnnealingSampler(), k=3).sample_model(
            m, num_reads=16, num_sweeps=50, seed=0
        )
        assert len(ss) <= 3

    def test_aggregates_by_default(self):
        m = QuboModel(2, {(0, 0): -1.0})
        ss = TruncateComposite(SimulatedAnnealingSampler(), k=10).sample_model(
            m, num_reads=32, num_sweeps=50, seed=0
        )
        # Aggregation merges identical states; at most 4 distinct states.
        assert len(ss) <= 4

    def test_bad_k(self):
        with pytest.raises(ValueError):
            TruncateComposite(SimulatedAnnealingSampler(), k=0)


class TestSpinReversalTransform:
    def test_energies_preserved(self):
        m = _random_model(5)
        ss = SpinReversalTransformComposite(
            SimulatedAnnealingSampler(), num_transforms=3
        ).sample_model(m, num_reads=4, num_sweeps=100, seed=0)
        np.testing.assert_allclose(ss.energies, m.energies(ss.states), atol=1e-9)

    def test_read_count(self):
        m = _random_model(6)
        ss = SpinReversalTransformComposite(
            SimulatedAnnealingSampler(), num_transforms=4
        ).sample_model(m, num_reads=3, num_sweeps=20, seed=1)
        assert len(ss) == 12

    def test_finds_ground_state(self):
        m = _random_model(7)
        _, ground = ExactSolver().ground_state(m)
        ss = SpinReversalTransformComposite(
            SimulatedAnnealingSampler(), num_transforms=4
        ).sample_model(m, num_reads=8, num_sweeps=300, seed=2)
        assert ss.first.energy == pytest.approx(ground, abs=1e-9)

    def test_gauge_transform_is_exact(self):
        # Directly verify the matrix identity on random gauges.
        rng = np.random.default_rng(8)
        q = np.triu(rng.normal(size=(6, 6)))
        gauge = rng.integers(0, 2, size=6).astype(float)
        transformed, offset = SpinReversalTransformComposite._transform(q, 0.5, gauge)
        for _ in range(20):
            z = rng.integers(0, 2, size=6).astype(float)
            x = gauge + (1 - 2 * gauge) * z
            original = x @ q @ x + 0.5
            gauged = z @ transformed @ z + offset
            assert original == pytest.approx(gauged)

    def test_bad_num_transforms(self):
        with pytest.raises(ValueError):
            SpinReversalTransformComposite(SimulatedAnnealingSampler(), 0)
