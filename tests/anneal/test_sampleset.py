import numpy as np
import pytest

from repro.anneal.sampleset import Sample, SampleSet


def _simple_set():
    states = np.array([[1, 0], [0, 1], [1, 1]], dtype=np.int8)
    energies = np.array([2.0, -1.0, 0.5])
    return SampleSet(states, energies, variables=["a", "b"])


class TestConstruction:
    def test_rows_sorted_by_energy(self):
        ss = _simple_set()
        np.testing.assert_allclose(ss.energies, [-1.0, 0.5, 2.0])
        np.testing.assert_array_equal(ss.states[0], [0, 1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SampleSet(np.zeros((2, 3)), np.zeros(3))

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SampleSet(np.zeros((1, 2)), np.zeros(1), variables=["only"])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            SampleSet(np.zeros((1, 2)), np.zeros(1), variables=["x", "x"])

    def test_non_positive_occurrences_rejected(self):
        with pytest.raises(ValueError):
            SampleSet(
                np.zeros((1, 1)), np.zeros(1), num_occurrences=np.array([0])
            )

    def test_default_labels_are_indices(self):
        ss = SampleSet(np.zeros((1, 3)), np.zeros(1))
        assert ss.variables == [0, 1, 2]

    def test_empty(self):
        ss = SampleSet.empty(["a"])
        assert len(ss) == 0
        with pytest.raises(ValueError):
            _ = ss.first

    def test_single_row_1d_input(self):
        ss = SampleSet(np.array([1, 0]), np.array([3.0]))
        assert len(ss) == 1


class TestAccess:
    def test_first_is_lowest(self):
        assert _simple_set().first.energy == -1.0

    def test_sample_assignment(self):
        sample = _simple_set().first
        assert sample.assignment == {"a": 0, "b": 1}

    def test_sample_state_ordering(self):
        sample = _simple_set().first
        np.testing.assert_array_equal(sample.state(["b", "a"]), [1, 0])

    def test_iteration_yields_sorted_samples(self):
        energies = [s.energy for s in _simple_set()]
        assert energies == sorted(energies)

    def test_column_view(self):
        ss = _simple_set()
        np.testing.assert_array_equal(ss.column("b"), [1, 1, 0])

    def test_column_unknown_raises(self):
        with pytest.raises(KeyError):
            _simple_set().column("zzz")

    def test_repr(self):
        assert "SampleSet" in repr(_simple_set())
        assert "empty" in repr(SampleSet.empty())


class TestTransformations:
    def test_lowest(self):
        states = np.zeros((3, 1), dtype=np.int8)
        ss = SampleSet(states, np.array([1.0, 1.0, 2.0]))
        assert len(ss.lowest()) == 2

    def test_truncate(self):
        assert len(_simple_set().truncate(2)) == 2
        assert len(_simple_set().truncate(10)) == 3

    def test_truncate_negative_rejected(self):
        with pytest.raises(ValueError):
            _simple_set().truncate(-1)

    def test_aggregate_merges_duplicates(self):
        states = np.array([[1, 0], [1, 0], [0, 1]], dtype=np.int8)
        ss = SampleSet(states, np.array([1.0, 1.0, 2.0]))
        agg = ss.aggregate()
        assert len(agg) == 2
        assert agg.num_occurrences.sum() == 3

    def test_aggregate_weights(self):
        states = np.array([[1], [1]], dtype=np.int8)
        ss = SampleSet(
            states, np.array([1.0, 1.0]), num_occurrences=np.array([2, 3])
        )
        assert ss.aggregate().num_occurrences[0] == 5

    def test_filter(self):
        ss = _simple_set()
        kept = ss.filter(np.array([True, False, True]))
        assert len(kept) == 2

    def test_filter_shape_mismatch(self):
        with pytest.raises(ValueError):
            _simple_set().filter(np.array([True]))

    def test_relabel(self):
        out = _simple_set().relabel_variables({"a": "x"})
        assert out.variables == ["x", "b"]

    def test_concatenate(self):
        merged = SampleSet.concatenate([_simple_set(), _simple_set()])
        assert len(merged) == 6
        assert merged.energies[0] == -1.0

    def test_concatenate_mismatched_variables_rejected(self):
        other = SampleSet(np.zeros((1, 2)), np.zeros(1), variables=["x", "y"])
        with pytest.raises(ValueError):
            SampleSet.concatenate([_simple_set(), other])

    def test_from_samples(self):
        ss = SampleSet.from_samples(
            [{"a": 1, "b": 0}, {"a": 0, "b": 0}], [5.0, 1.0]
        )
        assert ss.first.assignment == {"a": 0, "b": 0}


class TestStatistics:
    def test_ground_state_probability(self):
        states = np.array([[0], [1], [1]], dtype=np.int8)
        ss = SampleSet(states, np.array([0.0, 1.0, 1.0]))
        assert ss.ground_state_probability(0.0) == pytest.approx(1 / 3)

    def test_ground_state_probability_weighted(self):
        states = np.array([[0], [1]], dtype=np.int8)
        ss = SampleSet(
            states, np.array([0.0, 1.0]), num_occurrences=np.array([3, 1])
        )
        assert ss.ground_state_probability(0.0) == pytest.approx(0.75)

    def test_mean_energy(self):
        states = np.array([[0], [1]], dtype=np.int8)
        ss = SampleSet(
            states, np.array([0.0, 4.0]), num_occurrences=np.array([3, 1])
        )
        assert ss.mean_energy() == pytest.approx(1.0)

    def test_mean_energy_empty_raises(self):
        with pytest.raises(ValueError):
            SampleSet.empty().mean_energy()


class TestEdgeCases:
    """Edge cases surfaced by the differential verification harness."""

    # --- empty-state aggregation -------------------------------------- #

    def test_aggregate_empty_set_is_identity(self):
        ss = SampleSet.empty(["a", "b"])
        agg = ss.aggregate()
        assert len(agg) == 0
        assert agg.variables == ["a", "b"]

    def test_lowest_and_filter_on_empty_set(self):
        ss = SampleSet.empty(["a"])
        assert len(ss.lowest()) == 0
        assert len(ss.filter(np.zeros(0, dtype=bool))) == 0
        assert ss.ground_state_probability(0.0) == 0.0

    def test_aggregate_zero_width_states(self):
        # Rows with no variables at all (fully ground problem).
        ss = SampleSet(np.zeros((2, 0), dtype=np.int8), np.array([0.0, 0.0]))
        agg = ss.aggregate()
        assert len(agg) == 1
        assert agg.num_occurrences[0] == 2

    # --- tie-breaking among equal energies ----------------------------- #

    def test_equal_energy_sort_is_stable(self):
        states = np.array([[0], [1], [2]], dtype=np.int8)
        ss = SampleSet(states, np.array([1.0, 1.0, 1.0]))
        # Stable sort: input order preserved among ties.
        np.testing.assert_array_equal(ss.states[:, 0], [0, 1, 2])
        assert ss.first.assignment == {0: 0}

    def test_equal_energy_ties_all_in_lowest(self):
        states = np.array([[0], [1], [2]], dtype=np.int8)
        ss = SampleSet(states, np.array([2.0, 2.0, 2.0]))
        assert len(ss.lowest()) == 3

    def test_aggregate_keeps_tied_duplicates_distinct_states(self):
        states = np.array([[0, 1], [0, 1], [1, 0]], dtype=np.int8)
        ss = SampleSet(states, np.array([1.0, 1.0, 1.0]))
        agg = ss.aggregate()
        assert len(agg) == 2
        assert sorted(agg.num_occurrences.tolist()) == [1, 2]

    # --- single-read sets ---------------------------------------------- #

    def test_first_on_single_read_set(self):
        ss = SampleSet(np.array([[1, 0]]), np.array([0.25]), variables=["a", "b"])
        assert ss.first.assignment == {"a": 1, "b": 0}
        assert ss.first.energy == 0.25

    def test_lowest_on_single_read_set(self):
        ss = SampleSet(np.array([[1]]), np.array([3.5]))
        low = ss.lowest()
        assert len(low) == 1
        assert low.first.energy == 3.5

    # --- concatenation with disagreeing variable orders ---------------- #

    def test_concatenate_permuted_variable_order(self):
        ab = SampleSet(
            np.array([[1, 0]], dtype=np.int8), np.array([1.0]),
            variables=["a", "b"],
        )
        ba = SampleSet(
            np.array([[1, 0]], dtype=np.int8), np.array([0.0]),
            variables=["b", "a"],
        )
        merged = SampleSet.concatenate([ab, ba])
        assert merged.variables == ["a", "b"]
        assert len(merged) == 2
        # The [b=1, a=0] row must have been reordered onto [a, b].
        assert merged.first.assignment == {"a": 0, "b": 1}
        np.testing.assert_array_equal(merged.column("a"), [0, 1])

    def test_concatenate_permuted_order_roundtrips_energies(self):
        xyz = SampleSet(
            np.array([[1, 0, 1]], dtype=np.int8), np.array([2.0]),
            variables=["x", "y", "z"],
        )
        zxy = SampleSet(
            np.array([[0, 1, 1]], dtype=np.int8), np.array([-1.0]),
            variables=["z", "x", "y"],
        )
        merged = SampleSet.concatenate([xyz, zxy])
        assert merged.first.assignment == {"x": 1, "y": 1, "z": 0}
        assert merged.sample(1).assignment == {"x": 1, "y": 0, "z": 1}

    def test_concatenate_still_rejects_different_variable_sets(self):
        ab = SampleSet(np.zeros((1, 2)), np.zeros(1), variables=["a", "b"])
        ac = SampleSet(np.zeros((1, 2)), np.zeros(1), variables=["a", "c"])
        with pytest.raises(ValueError):
            SampleSet.concatenate([ab, ac])
