import numpy as np
import pytest

from repro.anneal.exact import ExactSolver
from repro.anneal.reverse import ReverseAnnealingSampler
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.qubo.model import QuboModel


def _random_model(seed, n=12):
    rng = np.random.default_rng(seed)
    return QuboModel.from_dense(np.triu(rng.normal(size=(n, n))))


class TestReverseAnnealing:
    def test_requires_initial_states(self):
        with pytest.raises(ValueError, match="initial_states"):
            ReverseAnnealingSampler().sample_model(_random_model(0))

    def test_never_worse_than_input(self):
        m = _random_model(1)
        rng = np.random.default_rng(2)
        starts = rng.integers(0, 2, size=(8, 12), dtype=np.int8)
        start_best = m.energies(starts).min()
        out = ReverseAnnealingSampler().sample_model(
            m, initial_states=starts, num_reads=8, num_sweeps=200, seed=3
        )
        assert out.first.energy <= start_best + 1e-9

    def test_refines_short_anneal(self):
        m = _random_model(4)
        _, ground = ExactSolver().ground_state(m)
        rough = SimulatedAnnealingSampler().sample_model(
            m, num_reads=16, num_sweeps=3, seed=5
        )
        refined = ReverseAnnealingSampler().sample_model(
            m,
            initial_states=rough.states,
            num_reads=16,
            num_sweeps=300,
            seed=6,
        )
        assert refined.first.energy <= rough.first.energy + 1e-9
        assert refined.first.energy == pytest.approx(ground, abs=1e-9)

    def test_zero_reheat_acts_locally(self):
        # With no re-melt the sampler effectively descends: starting at the
        # optimum it must stay there.
        m = QuboModel(6, {(i, i): 1.0 for i in range(6)})
        zeros = np.zeros((4, 6), dtype=np.int8)
        out = ReverseAnnealingSampler().sample_model(
            m,
            initial_states=zeros,
            reheat_fraction=0.0,
            num_reads=4,
            num_sweeps=50,
            seed=7,
        )
        assert out.first.energy == pytest.approx(0.0)
        np.testing.assert_array_equal(out.first.state(out.variables), np.zeros(6))

    def test_full_reheat_equivalent_to_forward(self):
        m = _random_model(8)
        _, ground = ExactSolver().ground_state(m)
        out = ReverseAnnealingSampler().sample_model(
            m,
            initial_states=np.zeros((16, 12), dtype=np.int8),
            reheat_fraction=1.0,
            num_reads=16,
            num_sweeps=300,
            seed=9,
        )
        assert out.first.energy == pytest.approx(ground, abs=1e-9)

    def test_vee_schedule_shape(self):
        betas = ReverseAnnealingSampler._vee_schedule(0.1, 10.0, 0.5, 20)
        assert betas.shape == (20,)
        assert betas[0] == pytest.approx(10.0)
        assert betas[-1] == pytest.approx(10.0)
        turn = betas.min()
        assert 0.1 < turn < 10.0
        # monotone down then up
        k = int(np.argmin(betas))
        assert np.all(np.diff(betas[: k + 1]) <= 1e-12)
        assert np.all(np.diff(betas[k:]) >= -1e-12)

    def test_info_metadata(self):
        m = _random_model(10, n=4)
        out = ReverseAnnealingSampler().sample_model(
            m,
            initial_states=np.zeros((2, 4), dtype=np.int8),
            num_reads=2,
            num_sweeps=20,
            seed=0,
        )
        assert out.info["sampler"] == "ReverseAnnealingSampler"
        assert "turning_beta" in out.info

    def test_seed_reproducible(self):
        m = _random_model(12)
        rng = np.random.default_rng(13)
        starts = rng.integers(0, 2, size=(8, 12), dtype=np.int8)
        a = ReverseAnnealingSampler().sample_model(
            m, initial_states=starts, num_reads=8, num_sweeps=100, seed=99
        )
        b = ReverseAnnealingSampler().sample_model(
            m, initial_states=starts, num_reads=8, num_sweeps=100, seed=99
        )
        np.testing.assert_array_equal(a.states, b.states)
        np.testing.assert_array_equal(a.energies, b.energies)

    def test_custom_beta_range_respected(self):
        m = _random_model(14, n=6)
        starts = np.zeros((2, 6), dtype=np.int8)
        out = ReverseAnnealingSampler().sample_model(
            m,
            initial_states=starts,
            beta_range=(0.5, 20.0),
            reheat_fraction=0.5,
            num_reads=2,
            num_sweeps=40,
            seed=0,
        )
        # The vee turns at hot*(cold/hot)^fraction for the given range.
        assert 0.5 < out.info["turning_beta"] < 20.0

    def test_validation(self):
        m = _random_model(11, n=4)
        starts = np.zeros((2, 4), dtype=np.int8)
        with pytest.raises(ValueError):
            ReverseAnnealingSampler().sample_model(
                m, initial_states=starts, reheat_fraction=1.5, num_reads=2
            )
        with pytest.raises(ValueError):
            ReverseAnnealingSampler().sample_model(
                m, initial_states=starts, num_sweeps=1, num_reads=2
            )
        with pytest.raises(TypeError):
            ReverseAnnealingSampler().sample_model(
                m, initial_states=starts, num_reads=2, bogus=1
            )
