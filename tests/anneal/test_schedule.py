import numpy as np
import pytest

from repro.anneal.schedule import (
    default_beta_range,
    geometric_schedule,
    linear_schedule,
    transverse_field_schedule,
)


class TestDefaultBetaRange:
    def test_orders_hot_below_cold(self):
        d = np.array([1.0, -2.0, 0.5])
        w = np.zeros((3, 3))
        hot, cold = default_beta_range(d, w)
        assert 0 < hot < cold

    def test_couplings_extend_reach(self):
        d = np.ones(2)
        w0 = np.zeros((2, 2))
        w1 = np.array([[0.0, 5.0], [5.0, 0.0]])
        hot0, _ = default_beta_range(d, w0)
        hot1, _ = default_beta_range(d, w1)
        assert hot1 < hot0  # larger energy scale -> hotter start

    def test_all_zero_model(self):
        hot, cold = default_beta_range(np.zeros(3), np.zeros((3, 3)))
        assert 0 < hot < cold


class TestSchedules:
    def test_geometric_endpoints(self):
        betas = geometric_schedule(0.1, 10.0, 50)
        assert betas[0] == pytest.approx(0.1)
        assert betas[-1] == pytest.approx(10.0)
        assert betas.shape == (50,)

    def test_geometric_monotone(self):
        betas = geometric_schedule(0.1, 10.0, 20)
        assert np.all(np.diff(betas) > 0)

    def test_geometric_ratio_constant(self):
        betas = geometric_schedule(1.0, 8.0, 4)
        ratios = betas[1:] / betas[:-1]
        np.testing.assert_allclose(ratios, ratios[0])

    def test_linear_spacing_constant(self):
        betas = linear_schedule(1.0, 5.0, 5)
        np.testing.assert_allclose(np.diff(betas), 1.0)

    def test_single_sweep_uses_cold(self):
        assert geometric_schedule(0.1, 7.0, 1)[0] == 7.0
        assert linear_schedule(0.1, 7.0, 1)[0] == 7.0

    def test_invalid_endpoints(self):
        with pytest.raises(ValueError):
            geometric_schedule(-1.0, 1.0, 10)
        with pytest.raises(ValueError):
            geometric_schedule(2.0, 1.0, 10)
        with pytest.raises(ValueError):
            linear_schedule(1.0, 2.0, 0)


class TestTransverseField:
    def test_decreasing(self):
        gammas = transverse_field_schedule(10.0, 0.1, 30)
        assert np.all(np.diff(gammas) < 0)

    def test_zero_final_clamped_positive(self):
        gammas = transverse_field_schedule(1.0, 0.0, 10)
        assert gammas[-1] > 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            transverse_field_schedule(0.0, 0.0, 10)
        with pytest.raises(ValueError):
            transverse_field_schedule(1.0, 2.0, 10)
        with pytest.raises(ValueError):
            transverse_field_schedule(1.0, -1.0, 10)
        with pytest.raises(ValueError):
            transverse_field_schedule(1.0, 0.5, 0)
