import numpy as np
import pytest

from repro.anneal.exact import ExactSolver
from repro.qubo.model import QuboModel


class TestExactSolver:
    def test_enumerates_all_states(self):
        m = QuboModel(4)
        ss = ExactSolver().sample_model(m)
        assert len(ss) == 16
        unique = np.unique(ss.states, axis=0)
        assert unique.shape == (16, 4)

    def test_ground_state_of_known_model(self):
        # E = -x0 + x1 + 2 x0 x1: minimum at x0=1, x1=0 with E=-1.
        m = QuboModel(2, {(0, 0): -1.0, (1, 1): 1.0, (0, 1): 2.0})
        state, energy = ExactSolver().ground_state(m)
        np.testing.assert_array_equal(state, [1, 0])
        assert energy == pytest.approx(-1.0)

    def test_keep_top_k(self):
        rng = np.random.default_rng(0)
        m = QuboModel.from_dense(np.triu(rng.normal(size=(8, 8))))
        full = ExactSolver().sample_model(m)
        top = ExactSolver().sample_model(m, keep=5)
        assert len(top) == 5
        np.testing.assert_allclose(top.energies, full.energies[:5])

    def test_keep_streaming_crosses_blocks(self):
        solver = ExactSolver()
        solver_block = solver.BLOCK
        try:
            # Force multiple blocks with a tiny block size.
            ExactSolver.BLOCK = 8
            rng = np.random.default_rng(1)
            m = QuboModel.from_dense(np.triu(rng.normal(size=(6, 6))))
            top = ExactSolver().sample_model(m, keep=3)
            full = ExactSolver().sample_model(m)
            np.testing.assert_allclose(top.energies, full.energies[:3])
        finally:
            ExactSolver.BLOCK = solver_block

    def test_too_many_variables_rejected(self):
        with pytest.raises(ValueError):
            ExactSolver().sample_model(QuboModel(30))

    def test_bad_keep_rejected(self):
        with pytest.raises(ValueError):
            ExactSolver().sample_model(QuboModel(2), keep=0)
        with pytest.raises(ValueError):
            ExactSolver().sample_model(QuboModel(2), keep="some")

    def test_unknown_param_rejected(self):
        with pytest.raises(TypeError):
            ExactSolver().sample_model(QuboModel(2), bogus=True)

    def test_empty_model(self):
        ss = ExactSolver().sample_model(QuboModel(0, offset=3.0))
        assert len(ss) == 1
        assert ss.first.energy == 3.0

    def test_offset_included(self):
        m = QuboModel(1, {(0, 0): -2.0}, offset=5.0)
        _, energy = ExactSolver().ground_state(m)
        assert energy == pytest.approx(3.0)

    def test_bit_order_convention(self):
        # Variable 0 is bit 0 of the enumeration code.
        m = QuboModel(3, {(0, 0): -10.0})
        state, _ = ExactSolver().ground_state(m)
        assert state[0] == 1
        assert state[1] == 0 and state[2] == 0
