import numpy as np
import pytest

from repro.anneal.exact import ExactSolver
from repro.anneal.population import PopulationAnnealingSampler
from repro.qubo.model import QuboModel


def _random_model(seed, n=12):
    rng = np.random.default_rng(seed)
    return QuboModel.from_dense(np.triu(rng.normal(size=(n, n))))


class TestPopulationAnnealing:
    def test_finds_ground_state(self):
        m = _random_model(0)
        _, ground = ExactSolver().ground_state(m)
        ss = PopulationAnnealingSampler().sample_model(
            m, population=48, num_steps=32, seed=1
        )
        assert ss.first.energy == pytest.approx(ground, abs=1e-9)

    def test_population_size_respected(self):
        ss = PopulationAnnealingSampler().sample_model(
            _random_model(1, 6), population=20, num_steps=8, seed=2
        )
        assert len(ss) == 20

    def test_num_reads_alias(self):
        ss = PopulationAnnealingSampler().sample_model(
            _random_model(2, 6), num_reads=10, num_steps=8, seed=3
        )
        assert len(ss) == 10

    def test_energies_consistent(self):
        m = _random_model(3, 8)
        ss = PopulationAnnealingSampler().sample_model(
            m, population=16, num_steps=16, seed=4
        )
        np.testing.assert_allclose(ss.energies, m.energies(ss.states), atol=1e-9)

    def test_resampling_events_recorded(self):
        ss = PopulationAnnealingSampler().sample_model(
            _random_model(4, 6), population=8, num_steps=10, seed=5
        )
        assert ss.info["resampling_events"] >= 1
        assert ss.info["sampler"] == "PopulationAnnealingSampler"

    def test_population_concentrates_at_low_energy(self):
        # After a full anneal most of the population should sit at (or very
        # near) the minimum — the defining property of resampling.
        m = _random_model(5, 10)
        _, ground = ExactSolver().ground_state(m)
        ss = PopulationAnnealingSampler().sample_model(
            m, population=64, num_steps=32, seed=6
        )
        assert ss.ground_state_probability(ground, atol=1e-9) > 0.3

    def test_reproducible(self):
        m = _random_model(6, 6)
        a = PopulationAnnealingSampler().sample_model(
            m, population=8, num_steps=8, seed=7
        )
        b = PopulationAnnealingSampler().sample_model(
            m, population=8, num_steps=8, seed=7
        )
        np.testing.assert_array_equal(a.states, b.states)

    def test_empty_model(self):
        ss = PopulationAnnealingSampler().sample_model(QuboModel(0), population=4)
        assert len(ss) == 4

    def test_validation(self):
        m = _random_model(7, 4)
        with pytest.raises(ValueError):
            PopulationAnnealingSampler().sample_model(m, population=1)
        with pytest.raises(ValueError):
            PopulationAnnealingSampler().sample_model(m, num_steps=0)
        with pytest.raises(ValueError):
            PopulationAnnealingSampler().sample_model(m, sweeps_per_step=0)
        with pytest.raises(TypeError):
            PopulationAnnealingSampler().sample_model(m, mystery=1)

    def test_explicit_beta_range_recorded(self):
        ss = PopulationAnnealingSampler().sample_model(
            _random_model(8, 6),
            population=8,
            num_steps=6,
            beta_range=(0.25, 8.0),
            seed=9,
        )
        lo, hi = ss.info["beta_range"]
        assert lo == pytest.approx(0.25)
        assert hi == pytest.approx(8.0)

    def test_sweeps_per_step_improves_equilibration(self):
        # More Metropolis sweeps per rung cannot hurt the best energy found
        # at a fixed seed-budget; sanity-check the knob actually threads
        # through to the inner sampler.
        m = _random_model(9, 10)
        lazy = PopulationAnnealingSampler().sample_model(
            m, population=16, num_steps=8, sweeps_per_step=1, seed=10
        )
        diligent = PopulationAnnealingSampler().sample_model(
            m, population=16, num_steps=8, sweeps_per_step=8, seed=10
        )
        assert diligent.first.energy <= lazy.first.energy + 1e-9

    def test_solves_string_formulation(self):
        from repro.core import StringEquality, StringQuboSolver

        solver = StringQuboSolver(
            sampler=PopulationAnnealingSampler(),
            num_reads=48,
            seed=8,
            sampler_params={"num_steps": 24},
        )
        result = solver.solve(StringEquality("pop"))
        assert result.output == "pop"
        assert result.ok
