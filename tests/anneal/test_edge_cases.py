"""Edge-case matrix across all four samplers.

Covers the degenerate inputs that historically broke individual samplers:
``n == 0`` (no variables), ``n == 1`` (the tabu default-tenure crash),
``num_reads == 1``, explicit initial states (including the non-binary
states the greedy sampler silently accepted), and both coupling modes.
"""

import numpy as np
import pytest

from repro.anneal.base import resolve_initial_states
from repro.anneal.greedy import SteepestDescentSampler
from repro.anneal.random_sampler import RandomSampler
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.anneal.tabu import TabuSampler
from repro.qubo.model import QuboModel

ALL_SAMPLERS = [
    SimulatedAnnealingSampler,
    TabuSampler,
    SteepestDescentSampler,
    RandomSampler,
]

#: A 1-variable model whose minimum (-1 at x=1) any sampler must find
#: structure for without crashing.
ONE_VAR = {(0, 0): -1.0}


def fast_params(sampler_cls):
    if sampler_cls is SimulatedAnnealingSampler:
        return {"num_sweeps": 16}
    if sampler_cls is TabuSampler:
        return {"num_steps": 16}
    return {}


@pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
class TestDegenerateSizes:
    def test_empty_model(self, sampler_cls):
        result = sampler_cls().sample_model(
            QuboModel(0, offset=1.5), num_reads=3, seed=1, **fast_params(sampler_cls)
        )
        assert result.states.shape == (3, 0)
        np.testing.assert_allclose(result.energies, np.full(3, 1.5))

    def test_single_variable(self, sampler_cls):
        # Regression: TabuSampler's old default tenure min(20, max(n-1, 1))
        # evaluated to 1 for n == 1 and failed its own `tenure < n` check.
        result = sampler_cls().sample_model(
            QuboModel(1, ONE_VAR), num_reads=4, seed=2, **fast_params(sampler_cls)
        )
        assert result.states.shape == (4, 1)
        assert result.first.energy in (-1.0, 0.0)

    def test_single_read(self, sampler_cls):
        result = sampler_cls().sample_model(
            QuboModel(2, {(0, 1): 1.0, (0, 0): -1.0}),
            num_reads=1,
            seed=3,
            **fast_params(sampler_cls),
        )
        assert result.states.shape == (1, 2)

    def test_zero_reads_rejected(self, sampler_cls):
        with pytest.raises(ValueError, match="num_reads"):
            sampler_cls().sample_model(QuboModel(1, ONE_VAR), num_reads=0)


@pytest.mark.parametrize(
    "sampler_cls", [SimulatedAnnealingSampler, TabuSampler, SteepestDescentSampler]
)
@pytest.mark.parametrize("mode", ["dense", "sparse"])
class TestCouplingModes:
    def test_single_variable_both_modes(self, sampler_cls, mode):
        result = sampler_cls().sample_model(
            QuboModel(1, ONE_VAR),
            num_reads=4,
            coupling_mode=mode,
            seed=4,
            **fast_params(sampler_cls),
        )
        assert result.first.energy == -1.0

    def test_diagonal_only_model(self, sampler_cls, mode):
        # No off-diagonal couplings at all: the field-update fast paths
        # must not assume nnz > 0.
        result = sampler_cls().sample_model(
            QuboModel(3, {(0, 0): -1.0, (1, 1): 2.0, (2, 2): -0.5}),
            num_reads=4,
            coupling_mode=mode,
            seed=5,
            **fast_params(sampler_cls),
        )
        assert result.first.energy == -1.5


class TestInitialStates:
    @pytest.mark.parametrize(
        "sampler_cls", [SimulatedAnnealingSampler, SteepestDescentSampler]
    )
    def test_explicit_initial_states(self, sampler_cls):
        model = QuboModel(2, {(0, 1): 2.0, (0, 0): -1.0, (1, 1): -1.0})
        starts = np.array([[1, 1], [0, 0], [1, 0]], dtype=np.int8)
        result = sampler_cls().sample_model(
            model,
            num_reads=3,
            initial_states=starts,
            seed=6,
            **fast_params(sampler_cls),
        )
        assert result.states.shape == (3, 2)

    @pytest.mark.parametrize(
        "sampler_cls", [SimulatedAnnealingSampler, SteepestDescentSampler]
    )
    def test_one_dimensional_broadcast(self, sampler_cls):
        model = QuboModel(2, {(0, 1): 1.0})
        result = sampler_cls().sample_model(
            model,
            num_reads=3,
            initial_states=np.array([1, 0]),
            seed=7,
            **fast_params(sampler_cls),
        )
        assert result.states.shape == (3, 2)

    @pytest.mark.parametrize(
        "sampler_cls", [SimulatedAnnealingSampler, SteepestDescentSampler]
    )
    def test_non_binary_initial_states_rejected(self, sampler_cls):
        # Regression: SteepestDescentSampler used to accept e.g. 3/-2 here;
        # ^= 1 flips then left the {0,1} domain and the reported energies
        # were garbage (observed: energy 20 on a model whose max is 2).
        model = QuboModel(2, {(0, 1): 1.0, (0, 0): 1.0})
        bad = np.array([[3, -2], [0, 1]], dtype=np.int64)
        with pytest.raises(ValueError, match="0/1"):
            sampler_cls().sample_model(
                model, num_reads=2, initial_states=bad, **fast_params(sampler_cls)
            )

    @pytest.mark.parametrize(
        "sampler_cls", [SimulatedAnnealingSampler, SteepestDescentSampler]
    )
    def test_wrong_shape_rejected(self, sampler_cls):
        model = QuboModel(3, {(0, 1): 1.0})
        with pytest.raises(ValueError):
            sampler_cls().sample_model(
                model,
                num_reads=2,
                initial_states=np.zeros((2, 2), dtype=np.int8),
                **fast_params(sampler_cls),
            )


class TestSharedValidator:
    def test_draws_when_none(self):
        rng = np.random.default_rng(0)
        states = resolve_initial_states(None, 4, 3, rng)
        assert states.shape == (4, 3)
        assert states.dtype == np.int8
        assert np.isin(states, (0, 1)).all()

    def test_validates_before_cast(self):
        # 256 would silently wrap to 0 under a bare int8 cast; the
        # validator must reject it instead.
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="0/1"):
            resolve_initial_states(np.array([[256, 0]]), 1, 2, rng)

    def test_copies_input(self):
        rng = np.random.default_rng(0)
        original = np.array([[1, 0]], dtype=np.int8)
        states = resolve_initial_states(original, 1, 2, rng)
        states[0, 0] = 0
        assert original[0, 0] == 1


class TestTabuTenureRegression:
    def test_default_tenure_single_variable(self):
        # The crash this PR fixes: default tenure for n == 1 must be 0.
        result = TabuSampler().sample_model(
            QuboModel(1, ONE_VAR), num_reads=2, num_steps=8, seed=1
        )
        assert result.info["tenure"] == 0
        assert result.first.energy == -1.0

    def test_default_tenure_small_models(self):
        for n in (2, 3, 21, 25):
            result = TabuSampler().sample_model(
                QuboModel(n, {(0, n - 1): 1.0}), num_reads=1, num_steps=4, seed=1
            )
            assert result.info["tenure"] == min(20, n - 1)

    def test_explicit_tenure_still_validated(self):
        with pytest.raises(ValueError, match="tenure"):
            TabuSampler().sample_model(QuboModel(1, ONE_VAR), tenure=1)
