"""Fused tiled kernels: bit-identity to solo solves, batch invariance.

The tiler's contract (DESIGN.md Appendix G): on integer-coefficient
models at a fixed seed, every block of a fused ``sample_tiled`` call
returns **bit-identical** states and energies to a solo ``sample_model``
call seeded with that block's content-keyed stream
(``tiled.block_rngs(seed)[k]``) — independent of which tile-mates it was
fused with.
"""

import numpy as np
import pytest

from repro.anneal.greedy import SteepestDescentSampler
from repro.anneal.random_sampler import RandomSampler
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.anneal.tabu import TabuSampler
from repro.qubo.model import QuboModel
from repro.qubo.tile import tile_models

SEED = 1234


def mixed_models():
    """Integer-coefficient blocks of assorted shapes (incl. n==0, n==1,
    and a duplicate pair)."""
    rng = np.random.default_rng(99)
    dup = QuboModel(5, {(0, 4): -2.0, (1, 1): 1.0, (2, 3): 3.0}, offset=1.0)
    dense = {
        (i, j): float(rng.integers(-3, 4))
        for i in range(6)
        for j in range(i, 6)
    }
    return [
        dup,
        QuboModel(1, {(0, 0): -1.0}),
        QuboModel(6, dense, offset=-2.0),
        QuboModel(0, offset=4.0),
        QuboModel(3, {(0, 1): 2.0, (1, 2): -1.0, (0, 0): -3.0}),
        dup,
    ]


def solo_kwargs(sampler, tiled, k, seed, **params):
    """The solo call the fused result must reproduce for block k."""
    kwargs = dict(params)
    kwargs["seed"] = tiled.block_rngs(seed)[k]
    return kwargs


def assert_block_identical(fused, solo):
    np.testing.assert_array_equal(fused.states, solo.states)
    np.testing.assert_array_equal(fused.energies, solo.energies)


FUSED_CASES = [
    (
        SimulatedAnnealingSampler,
        {"num_reads": 8, "num_sweeps": 48, "sweep_mode": "colored"},
    ),
    (
        SimulatedAnnealingSampler,
        {"num_reads": 8, "num_sweeps": 48, "sweep_mode": "sequential"},
    ),
    (
        SimulatedAnnealingSampler,
        {"num_reads": 8, "num_sweeps": 48, "sweep_mode": "random"},
    ),
    (TabuSampler, {"num_reads": 6, "num_steps": 40}),
    (SteepestDescentSampler, {"num_reads": 8}),
    (RandomSampler, {"num_reads": 8}),  # base-class per-block fallback
]


@pytest.mark.parametrize("mode", ["dense", "sparse"])
@pytest.mark.parametrize(
    "sampler_cls,params", FUSED_CASES, ids=lambda c: getattr(c, "__name__", None)
)
def test_fused_matches_solo(sampler_cls, params, mode):
    models = mixed_models()
    tiled = tile_models(models)
    sampler = sampler_cls()
    kwargs = dict(params)
    if "coupling_mode" in type(sampler).parameters:
        kwargs["coupling_mode"] = mode
    elif mode == "sparse":
        pytest.skip("sampler has no coupling modes")
    results = sampler.sample_tiled(tiled, seed=SEED, **kwargs)
    assert len(results) == len(models)
    for k, model in enumerate(models):
        solo = sampler.sample_model(
            model, **solo_kwargs(sampler, tiled, k, SEED, **kwargs)
        )
        assert_block_identical(results[k], solo)


@pytest.mark.parametrize(
    "sampler_cls,params", FUSED_CASES, ids=lambda c: getattr(c, "__name__", None)
)
def test_batch_invariance(sampler_cls, params):
    """A block's result must not depend on its tile-mates or position."""
    probe = QuboModel(4, {(0, 3): -2.0, (1, 1): 1.0, (2, 3): 2.0}, offset=0.5)
    mates_a = [probe, QuboModel(2, {(0, 1): 1.0}), QuboModel(7, {(0, 6): -1.0})]
    mates_b = [QuboModel(1, {(0, 0): 5.0}), QuboModel(0), probe]
    sampler = sampler_cls()
    res_a = sampler.sample_tiled(tile_models(mates_a), seed=SEED, **params)[0]
    res_b = sampler.sample_tiled(tile_models(mates_b), seed=SEED, **params)[2]
    solo = sampler.sample_tiled(tile_models([probe]), seed=SEED, **params)[0]
    assert_block_identical(res_a, res_b)
    assert_block_identical(res_a, solo)


class TestTiledEdgeCases:
    @pytest.mark.parametrize(
        "sampler_cls,params", FUSED_CASES, ids=lambda c: getattr(c, "__name__", None)
    )
    def test_empty_tile(self, sampler_cls, params):
        assert sampler_cls().sample_tiled(tile_models([]), seed=1, **params) == []

    @pytest.mark.parametrize(
        "sampler_cls,params", FUSED_CASES, ids=lambda c: getattr(c, "__name__", None)
    )
    def test_all_empty_blocks(self, sampler_cls, params):
        tiled = tile_models([QuboModel(0, offset=1.0), QuboModel(0)])
        results = sampler_cls().sample_tiled(tiled, seed=1, **params)
        assert len(results) == 2
        np.testing.assert_allclose(
            results[0].energies, np.full(len(results[0]), 1.0)
        )

    def test_single_block_num_reads_one(self):
        tiled = tile_models([QuboModel(2, {(0, 1): 1.0, (0, 0): -1.0})])
        sampler = SimulatedAnnealingSampler()
        (result,) = sampler.sample_tiled(
            tiled, num_reads=1, num_sweeps=16, seed=3
        )
        assert result.states.shape == (1, 2)

    def test_sa_tiled_initial_states(self):
        models = [QuboModel(2, {(0, 1): 1.0}), QuboModel(3, {(1, 2): -1.0})]
        tiled = tile_models(models)
        inits = [np.zeros((4, 2), dtype=np.int8), None]
        sampler = SimulatedAnnealingSampler()
        results = sampler.sample_tiled(
            tiled, num_reads=4, num_sweeps=8, initial_states=inits, seed=2
        )
        assert len(results) == 2

    def test_sa_tiled_initial_states_wrong_length(self):
        tiled = tile_models([QuboModel(2, {(0, 1): 1.0})])
        with pytest.raises(ValueError, match="one entry per block"):
            SimulatedAnnealingSampler().sample_tiled(
                tiled, num_reads=2, num_sweeps=4, initial_states=[None, None]
            )

    def test_tabu_tiled_explicit_tenure_must_fit_every_block(self):
        tiled = tile_models(
            [QuboModel(5, {(0, 4): 1.0}), QuboModel(2, {(0, 1): 1.0})]
        )
        with pytest.raises(ValueError, match="every block"):
            TabuSampler().sample_tiled(tiled, tenure=3, seed=1)

    def test_unknown_params_rejected(self):
        tiled = tile_models([QuboModel(1, {(0, 0): 1.0})])
        with pytest.raises(TypeError, match="unknown sampler parameters"):
            SimulatedAnnealingSampler().sample_tiled(tiled, bogus=1)
