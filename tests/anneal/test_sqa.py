import numpy as np
import pytest

from repro.anneal.exact import ExactSolver
from repro.anneal.sqa import PathIntegralAnnealer
from repro.qubo.model import QuboModel


def _random_model(seed, n=10):
    rng = np.random.default_rng(seed)
    return QuboModel.from_dense(np.triu(rng.normal(size=(n, n))))


class TestPathIntegralAnnealer:
    def test_finds_ground_state(self):
        m = _random_model(0, n=10)
        _, ground = ExactSolver().ground_state(m)
        ss = PathIntegralAnnealer().sample_model(
            m, num_reads=8, num_sweeps=128, seed=0
        )
        assert ss.first.energy == pytest.approx(ground, abs=1e-9)

    def test_energies_consistent(self):
        m = _random_model(1, n=8)
        ss = PathIntegralAnnealer().sample_model(m, num_reads=3, num_sweeps=32, seed=1)
        np.testing.assert_allclose(ss.energies, m.energies(ss.states), atol=1e-9)

    def test_diagonal_model(self):
        m = QuboModel(14)
        for i in range(14):
            m.set_linear(i, -1.0 if i % 2 else 1.0)
        ss = PathIntegralAnnealer().sample_model(m, num_reads=4, num_sweeps=64, seed=2)
        assert ss.first.energy == pytest.approx(-7.0)

    def test_reproducible(self):
        m = _random_model(3, n=6)
        a = PathIntegralAnnealer().sample_model(m, num_reads=2, num_sweeps=16, seed=7)
        b = PathIntegralAnnealer().sample_model(m, num_reads=2, num_sweeps=16, seed=7)
        np.testing.assert_array_equal(a.states, b.states)

    def test_info_records_quantum_parameters(self):
        ss = PathIntegralAnnealer().sample_model(
            _random_model(4, 4), num_reads=2, num_sweeps=8, trotter_slices=4, seed=0
        )
        assert ss.info["trotter_slices"] == 4
        assert ss.info["gamma_range"][0] > ss.info["gamma_range"][1]
        assert ss.info["beta"] > 0

    def test_custom_beta_and_gamma(self):
        m = _random_model(5, 6)
        ss = PathIntegralAnnealer().sample_model(
            m, num_reads=2, num_sweeps=16, beta=2.0, gamma_range=(5.0, 0.1), seed=0
        )
        assert ss.info["beta"] == 2.0

    def test_empty_model(self):
        ss = PathIntegralAnnealer().sample_model(QuboModel(0), num_reads=2)
        assert len(ss) == 2

    def test_validation(self):
        m = _random_model(6, 4)
        with pytest.raises(ValueError):
            PathIntegralAnnealer().sample_model(m, num_reads=0)
        with pytest.raises(ValueError):
            PathIntegralAnnealer().sample_model(m, trotter_slices=3)  # odd
        with pytest.raises(ValueError):
            PathIntegralAnnealer().sample_model(m, trotter_slices=0)
        with pytest.raises(ValueError):
            PathIntegralAnnealer().sample_model(m, beta=-1.0)
        with pytest.raises(TypeError):
            PathIntegralAnnealer().sample_model(m, bogus=1)

    def test_more_slices_still_correct(self):
        m = _random_model(7, n=8)
        _, ground = ExactSolver().ground_state(m)
        ss = PathIntegralAnnealer().sample_model(
            m, num_reads=6, num_sweeps=128, trotter_slices=16, seed=3
        )
        assert ss.first.energy == pytest.approx(ground, abs=1e-9)

    def test_seeds_explore_differently(self):
        # Large model, tiny budget: far from equilibrium the trajectories
        # must depend on the seed (at convergence they legitimately agree).
        m = _random_model(8, n=24)
        a = PathIntegralAnnealer().sample_model(m, num_reads=4, num_sweeps=2, seed=1)
        b = PathIntegralAnnealer().sample_model(m, num_reads=4, num_sweeps=2, seed=2)
        assert not np.array_equal(a.states, b.states)

    def test_single_variable_model(self):
        m = QuboModel(1, {(0, 0): -2.5})
        ss = PathIntegralAnnealer().sample_model(m, num_reads=3, num_sweeps=32, seed=0)
        assert ss.first.energy == pytest.approx(-2.5)
        assert ss.first.state(ss.variables)[0] == 1

    def test_minimal_sweep_budget(self):
        # One sweep is a legal (if useless) budget; shapes must still hold.
        m = _random_model(9, n=5)
        ss = PathIntegralAnnealer().sample_model(m, num_reads=2, num_sweeps=1, seed=0)
        assert ss.states.shape == (2, 5)
        np.testing.assert_allclose(ss.energies, m.energies(ss.states), atol=1e-9)
