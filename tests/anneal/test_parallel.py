import numpy as np
import pytest

from repro.anneal.exact import ExactSolver
from repro.anneal.parallel import ParallelSampler, PortfolioSampler, split_evenly
from repro.anneal.random_sampler import RandomSampler
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.anneal.greedy import SteepestDescentSampler
from repro.anneal.tabu import TabuSampler
from repro.anneal.sampleset import SampleSet
from repro.qubo.model import QuboModel


class _EmptySampler:
    """A child that legitimately returns zero reads (e.g. a filtering
    composite that dropped every sample)."""

    def sample_model(self, model, **params):
        return SampleSet.empty(range(model.num_variables))


def _random_model(seed, n=10):
    rng = np.random.default_rng(seed)
    return QuboModel.from_dense(np.triu(rng.normal(size=(n, n))))


class TestParallelSampler:
    def test_serial_mode_correct_read_count(self):
        sampler = ParallelSampler(
            SimulatedAnnealingSampler(), num_workers=3, executor="serial"
        )
        ss = sampler.sample_model(_random_model(0), num_reads=10, num_sweeps=20, seed=0)
        assert len(ss) == 10

    def test_chunking_never_empty(self):
        assert ParallelSampler._split_reads(10, 3) == [4, 3, 3]
        assert ParallelSampler._split_reads(2, 5) == [1, 1]
        assert ParallelSampler._split_reads(1, 1) == [1]

    def test_chunking_fewer_reads_than_workers(self):
        # num_reads < num_workers: one single-read chunk per read, no zeros.
        assert ParallelSampler._split_reads(3, 8) == [1, 1, 1]
        assert ParallelSampler._split_reads(1, 4) == [1]

    def test_chunking_zero_reads_yields_no_chunks(self):
        # Historically raised ZeroDivisionError; now the degenerate batch
        # is simply empty (sample_model still validates num_reads >= 1).
        assert ParallelSampler._split_reads(0, 4) == []
        assert split_evenly(0, 1) == []

    def test_chunking_invariants_exhaustive(self):
        for total in range(0, 40):
            for parts in range(1, 9):
                chunks = split_evenly(total, parts)
                assert sum(chunks) == total
                assert len(chunks) == min(parts, total) if total else not chunks
                assert all(c >= 1 for c in chunks)
                if chunks:
                    assert max(chunks) - min(chunks) <= 1
                    assert chunks == sorted(chunks, reverse=True)

    def test_chunking_validation(self):
        with pytest.raises(ValueError):
            split_evenly(-1, 2)
        with pytest.raises(ValueError):
            split_evenly(4, 0)
        with pytest.raises(ValueError):
            ParallelSampler._split_reads(-2, 2)

    def test_serial_finds_ground_state(self):
        m = _random_model(1, n=10)
        _, ground = ExactSolver().ground_state(m)
        sampler = ParallelSampler(
            SimulatedAnnealingSampler(), num_workers=4, executor="serial"
        )
        ss = sampler.sample_model(m, num_reads=16, num_sweeps=300, seed=1)
        assert ss.first.energy == pytest.approx(ground, abs=1e-9)

    def test_thread_mode_matches_serial(self):
        m = _random_model(2, n=6)
        serial = ParallelSampler(
            SimulatedAnnealingSampler(), num_workers=2, executor="serial"
        ).sample_model(m, num_reads=6, num_sweeps=20, seed=3)
        threaded = ParallelSampler(
            SimulatedAnnealingSampler(), num_workers=2, executor="thread"
        ).sample_model(m, num_reads=6, num_sweeps=20, seed=3)
        np.testing.assert_array_equal(serial.states, threaded.states)

    @pytest.mark.slow
    def test_process_mode_matches_serial(self):
        m = _random_model(4, n=6)
        serial = ParallelSampler(
            SimulatedAnnealingSampler(), num_workers=2, executor="serial"
        ).sample_model(m, num_reads=4, num_sweeps=10, seed=5)
        process = ParallelSampler(
            SimulatedAnnealingSampler(), num_workers=2, executor="process"
        ).sample_model(m, num_reads=4, num_sweeps=10, seed=5)
        np.testing.assert_array_equal(serial.states, process.states)

    def test_info_metadata(self):
        sampler = ParallelSampler(RandomSampler(), num_workers=2, executor="serial")
        ss = sampler.sample_model(_random_model(5), num_reads=4, seed=0)
        assert ss.info["num_workers"] == 2
        assert ss.info["executor"] == "serial"
        assert sum(ss.info["chunk_reads"]) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelSampler(RandomSampler(), num_workers=0)
        with pytest.raises(ValueError):
            ParallelSampler(RandomSampler(), executor="gpu")
        sampler = ParallelSampler(RandomSampler(), executor="serial")
        with pytest.raises(ValueError):
            sampler.sample_model(_random_model(6), num_reads=0)


class TestPortfolioSampler:
    def _portfolio(self, executor="serial"):
        return PortfolioSampler(
            [
                ("sa", SimulatedAnnealingSampler(), {"num_reads": 8, "num_sweeps": 100}),
                ("tabu", TabuSampler(), {"num_reads": 4}),
                ("greedy", SteepestDescentSampler(), {"num_reads": 4}),
                ("random", RandomSampler(), {"num_reads": 8}),
            ],
            executor=executor,
        )

    def test_merges_all_members(self):
        ss = self._portfolio().sample_model(_random_model(0), seed=0)
        assert len(ss) == 24

    def test_best_recorded(self):
        m = _random_model(1, n=10)
        ss = self._portfolio().sample_model(m, seed=1)
        best = ss.info["portfolio_best"]
        assert best in ("sa", "tabu", "greedy", "random")
        assert ss.info["portfolio_energies"][best] == pytest.approx(
            ss.first.energy
        )

    def test_finds_ground_state(self):
        m = _random_model(2, n=10)
        _, ground = ExactSolver().ground_state(m)
        ss = self._portfolio().sample_model(m, seed=2)
        assert ss.first.energy == pytest.approx(ground, abs=1e-9)

    def test_thread_executor(self):
        ss = self._portfolio(executor="thread").sample_model(
            _random_model(3, 6), seed=3
        )
        assert len(ss) == 24

    def test_empty_child_skipped(self):
        # Regression: one empty child used to crash winner selection with
        # "ValueError: sample set is empty" when its set led the merge.
        m = _random_model(7, n=6)
        portfolio = PortfolioSampler(
            [
                ("empty", _EmptySampler(), {}),
                ("random", RandomSampler(), {"num_reads": 8}),
            ]
        )
        ss = portfolio.sample_model(m, seed=7)
        assert len(ss) == 8
        assert ss.info["portfolio_best"] == "random"
        assert list(ss.info["portfolio_energies"]) == ["random"]

    def test_all_children_empty_raises_clear_error(self):
        portfolio = PortfolioSampler(
            [("a", _EmptySampler(), {}), ("b", _EmptySampler(), {})]
        )
        with pytest.raises(ValueError, match="empty sample sets"):
            portfolio.sample_model(_random_model(8, n=4), seed=8)

    def test_validation(self):
        with pytest.raises(ValueError):
            PortfolioSampler([])
        with pytest.raises(ValueError):
            PortfolioSampler(
                [("a", RandomSampler(), {}), ("a", RandomSampler(), {})]
            )
        with pytest.raises(ValueError):
            PortfolioSampler([("a", RandomSampler(), {})], executor="process")
