import numpy as np
import pytest

from repro.anneal.greedy import SteepestDescentSampler
from repro.anneal.exact import ExactSolver
from repro.qubo.model import QuboModel


class TestSteepestDescent:
    def test_reaches_local_minimum(self):
        rng = np.random.default_rng(0)
        m = QuboModel.from_dense(np.triu(rng.normal(size=(12, 12))))
        ss = SteepestDescentSampler().sample_model(m, num_reads=8, seed=0)
        # At a local minimum no single flip improves.
        diag, coupling = m.sampler_form()
        for state in ss.states:
            fields = state @ coupling
            dx = 1.0 - 2.0 * state
            deltas = dx * (diag + fields)
            assert np.all(deltas >= -1e-9)

    def test_diagonal_model_globally_solved(self):
        m = QuboModel(20)
        rng = np.random.default_rng(1)
        diag = rng.choice([-1.0, 2.0], size=20)
        for i, v in enumerate(diag):
            m.set_linear(i, v)
        ss = SteepestDescentSampler().sample_model(m, num_reads=4, seed=1)
        assert ss.first.energy == pytest.approx(np.minimum(diag, 0).sum())

    def test_descent_never_increases_energy(self):
        rng = np.random.default_rng(2)
        m = QuboModel.from_dense(np.triu(rng.normal(size=(10, 10))))
        starts = rng.integers(0, 2, size=(6, 10), dtype=np.int8)
        start_energies = m.energies(starts)
        ss = SteepestDescentSampler().sample_model(
            m, num_reads=6, initial_states=starts, seed=2
        )
        assert ss.energies.max() <= start_energies.max() + 1e-9

    def test_initial_state_already_minimal(self):
        m = QuboModel(3, {(i, i): 1.0 for i in range(3)})
        zeros = np.zeros(3, dtype=np.int8)
        ss = SteepestDescentSampler().sample_model(
            m, num_reads=2, initial_states=zeros
        )
        np.testing.assert_array_equal(ss.states, np.zeros((2, 3)))
        assert ss.info["total_steps"] == 0

    def test_max_steps_caps_work(self):
        rng = np.random.default_rng(3)
        m = QuboModel.from_dense(np.triu(rng.normal(size=(8, 8))))
        ss = SteepestDescentSampler().sample_model(
            m, num_reads=4, max_steps=1, seed=3
        )
        assert ss.info["total_steps"] <= 4  # one outer iteration, <= R flips

    def test_matches_exact_on_easy_landscape(self):
        # Ferromagnetic chain: descent from any state reaches a ground state.
        m = QuboModel(6)
        for i in range(5):
            m.set_quadratic(i, i + 1, -1.0)
        _, ground = ExactSolver().ground_state(m)
        ss = SteepestDescentSampler().sample_model(m, num_reads=16, seed=4)
        assert ss.first.energy == pytest.approx(ground)

    def test_empty_model(self):
        ss = SteepestDescentSampler().sample_model(QuboModel(0), num_reads=2)
        assert len(ss) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SteepestDescentSampler().sample_model(QuboModel(1), num_reads=0)
        with pytest.raises(TypeError):
            SteepestDescentSampler().sample_model(QuboModel(1), nope=1)
        with pytest.raises(ValueError):
            SteepestDescentSampler().sample_model(
                QuboModel(2), num_reads=1, initial_states=np.zeros((2, 2))
            )
