import numpy as np
import pytest

from repro.anneal.random_sampler import RandomSampler
from repro.qubo.model import QuboModel


class TestRandomSampler:
    def test_shape_and_values(self):
        ss = RandomSampler().sample_model(QuboModel(6), num_reads=20, seed=0)
        assert ss.states.shape == (20, 6)
        assert np.isin(ss.states, (0, 1)).all()

    def test_energies_scored(self):
        m = QuboModel(4, {(0, 0): 1.0, (1, 2): -2.0})
        ss = RandomSampler().sample_model(m, num_reads=10, seed=1)
        np.testing.assert_allclose(ss.energies, m.energies(ss.states))

    def test_reproducible(self):
        a = RandomSampler().sample_model(QuboModel(5), num_reads=4, seed=3)
        b = RandomSampler().sample_model(QuboModel(5), num_reads=4, seed=3)
        np.testing.assert_array_equal(a.states, b.states)

    def test_roughly_uniform(self):
        ss = RandomSampler().sample_model(QuboModel(8), num_reads=500, seed=4)
        mean = ss.states.mean()
        assert 0.4 < mean < 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomSampler().sample_model(QuboModel(2), num_reads=0)
        with pytest.raises(TypeError):
            RandomSampler().sample_model(QuboModel(2), whatever=1)
