import numpy as np
import pytest

from repro.anneal.exact import ExactSolver
from repro.anneal.tabu import TabuSampler
from repro.qubo.model import QuboModel


def _random_model(seed, n=10):
    rng = np.random.default_rng(seed)
    return QuboModel.from_dense(np.triu(rng.normal(size=(n, n))))


class TestTabuSampler:
    def test_finds_ground_state(self):
        m = _random_model(0, n=12)
        _, ground = ExactSolver().ground_state(m)
        ss = TabuSampler().sample_model(m, num_reads=16, seed=0)
        assert ss.first.energy == pytest.approx(ground, abs=1e-9)

    def test_energies_consistent(self):
        m = _random_model(1)
        ss = TabuSampler().sample_model(m, num_reads=4, num_steps=30, seed=1)
        np.testing.assert_allclose(ss.energies, m.energies(ss.states), atol=1e-9)

    def test_reported_best_not_final(self):
        # Tabu wanders uphill; the reported states must be the best seen,
        # which can only improve with more steps.
        m = _random_model(2)
        short = TabuSampler().sample_model(m, num_reads=8, num_steps=5, seed=2)
        long = TabuSampler().sample_model(m, num_reads=8, num_steps=200, seed=2)
        assert long.first.energy <= short.first.energy + 1e-9

    def test_reproducible(self):
        m = _random_model(3)
        a = TabuSampler().sample_model(m, num_reads=4, seed=5)
        b = TabuSampler().sample_model(m, num_reads=4, seed=5)
        np.testing.assert_array_equal(a.states, b.states)

    def test_diagonal_model(self):
        m = QuboModel(15)
        for i in range(15):
            m.set_linear(i, -1.0 if i % 3 else 1.0)
        ss = TabuSampler().sample_model(m, num_reads=4, seed=0)
        assert ss.first.energy == pytest.approx(-10.0)

    def test_empty_model(self):
        ss = TabuSampler().sample_model(QuboModel(0), num_reads=3)
        assert len(ss) == 3

    def test_zero_tenure_allowed(self):
        m = _random_model(4, n=6)
        ss = TabuSampler().sample_model(m, num_reads=2, tenure=0, seed=0)
        assert len(ss) == 2

    def test_validation(self):
        m = _random_model(5, n=4)
        with pytest.raises(ValueError):
            TabuSampler().sample_model(m, num_reads=0)
        with pytest.raises(ValueError):
            TabuSampler().sample_model(m, num_steps=0)
        with pytest.raises(ValueError):
            TabuSampler().sample_model(m, tenure=4)  # must be < n
        with pytest.raises(TypeError):
            TabuSampler().sample_model(m, nonsense=1)

    def test_info(self):
        ss = TabuSampler().sample_model(_random_model(6, 4), num_reads=2, seed=0)
        assert ss.info["sampler"] == "TabuSampler"
        assert "tenure" in ss.info
