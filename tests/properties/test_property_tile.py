"""Property: fused tile solves ≡ solo solves, block by block.

For arbitrary lists of random integer-coefficient QUBOs, every block of a
fused ``sample_tiled`` call must return bit-identical states and energies
to solving that block alone with its content-keyed RNG stream — the
tiler's batch-invariance contract, exercised far beyond the hand-built
cases in ``tests/anneal/test_tiled.py``.

Integer coefficients keep the check exact: with them the fused kernels'
cross-block contributions are exact zeros and every energy update is
reproduced bit-for-bit (see DESIGN.md Appendix G for the float caveat).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anneal.greedy import SteepestDescentSampler
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.anneal.tabu import TabuSampler
from repro.qubo.model import QuboModel
from repro.qubo.tile import tile_models


@st.composite
def integer_models(draw, max_n=6):
    n = draw(st.integers(min_value=0, max_value=max_n))
    coeffs = draw(
        st.dictionaries(
            st.tuples(st.integers(0, max(n - 1, 0)), st.integers(0, max(n - 1, 0))),
            st.integers(-4, 4).map(float),
            max_size=10,
        )
        if n
        else st.just({})
    )
    offset = float(draw(st.integers(-3, 3)))
    return QuboModel(n, coeffs, offset=offset)


model_lists = st.lists(integer_models(), min_size=1, max_size=5)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def assert_tile_matches_solo(sampler, models, seed, **params):
    tiled = tile_models(models)
    fused = sampler.sample_tiled(tiled, seed=seed, **params)
    rngs = tiled.block_rngs(seed)
    for k, model in enumerate(models):
        solo = sampler.sample_model(model, seed=rngs[k], **params)
        np.testing.assert_array_equal(fused[k].states, solo.states)
        np.testing.assert_array_equal(fused[k].energies, solo.energies)


# sweep_mode must be pinned: sample_model defaults to "random" while
# sample_tiled defaults to "colored" (the mode where fusion batches
# across block boundaries); equivalence holds per sweep mode.
@settings(max_examples=25, deadline=None)
@given(
    models=model_lists,
    seed=seeds,
    sweep_mode=st.sampled_from(["colored", "sequential", "random"]),
)
def test_sa_fused_equals_solo(models, seed, sweep_mode):
    assert_tile_matches_solo(
        SimulatedAnnealingSampler(),
        models,
        seed,
        num_reads=4,
        num_sweeps=24,
        sweep_mode=sweep_mode,
    )

@settings(max_examples=15, deadline=None)
@given(models=model_lists, seed=seeds)
def test_tabu_fused_equals_solo(models, seed):
    assert_tile_matches_solo(TabuSampler(), models, seed, num_reads=3, num_steps=20)


@settings(max_examples=15, deadline=None)
@given(models=model_lists, seed=seeds)
def test_greedy_fused_equals_solo(models, seed):
    assert_tile_matches_solo(SteepestDescentSampler(), models, seed, num_reads=4)


@settings(max_examples=15, deadline=None)
@given(models=model_lists, seed=seeds, mode=st.sampled_from(["dense", "sparse"]))
def test_sa_fused_equals_solo_explicit_modes(models, seed, mode):
    assert_tile_matches_solo(
        SimulatedAnnealingSampler(),
        models,
        seed,
        num_reads=3,
        num_sweeps=16,
        sweep_mode="colored",
        coupling_mode=mode,
    )
