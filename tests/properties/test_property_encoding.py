"""Property-based tests for the 7-bit encoding layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import char_to_bits, encode_string, state_to_string
from repro.utils.asciitab import CHAR_BITS

ascii7_text = st.text(
    alphabet=st.characters(min_codepoint=0, max_codepoint=127), max_size=24
)
ascii7_char = st.characters(min_codepoint=0, max_codepoint=127)


class TestEncodingProperties:
    @given(ascii7_text)
    def test_round_trip(self, text):
        assert state_to_string(encode_string(text)) == text

    @given(ascii7_text)
    def test_length_is_7n(self, text):
        assert encode_string(text).size == CHAR_BITS * len(text)

    @given(ascii7_text)
    def test_bits_are_binary(self, text):
        bits = encode_string(text)
        assert np.isin(bits, (0, 1)).all()

    @given(ascii7_char)
    def test_char_bits_msb_first(self, char):
        bits = char_to_bits(char)
        code = int("".join(str(int(b)) for b in bits), 2)
        assert code == ord(char)

    @given(ascii7_text, ascii7_text)
    def test_concatenation_homomorphism(self, a, b):
        # f(a || b) = f(a) || f(b) — the paper's definition of f.
        np.testing.assert_array_equal(
            encode_string(a + b),
            np.concatenate([encode_string(a), encode_string(b)]),
        )

    @given(ascii7_text)
    def test_injective_on_distinct_strings(self, text):
        if not text:
            return
        # Flip one bit: decoding must give a different string.
        bits = encode_string(text)
        flipped = bits.copy()
        flipped[0] ^= 1
        assert state_to_string(flipped) != text
