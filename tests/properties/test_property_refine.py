"""The refinement loop's equivalence properties (DESIGN.md Appendix I).

Two contracts, hypothesis-driven over random small conjunctions:

* **Soundness/compatibility** — a ``strategy="refine"`` solve never
  answers *worse* than the direct pipeline: statuses agree except that
  refinement may upgrade ``unknown`` to a verified ``sat`` (the reduced
  subspace is easier to anneal); every ``sat`` model is re-audited here
  under the concrete semantics (:func:`repro.smt.theory.eval_formula`).
* **Bit-identity at ``refine_max_rounds=0``** — with a zero round budget
  the engine must answer exactly what the direct pipeline answers at the
  same seed: same status, same model, same per-variable energies, with
  no rounding. Pinned across the serial, thread-pool and process-pool
  backends (the engine's private RNG stream never advances the solver's
  driver, so the guaranteed fallback *is* the direct solve).
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import ast
from repro.smt.solver import QuantumSMTSolver
from repro.smt.theory import eval_formula

from tests.server.conftest import FAST_SOLVER

pytestmark = [pytest.mark.slow]

#: Fast settings: the suite runs many tiny solves.
PROP_SOLVER = dict(num_reads=16, sampler_params={"num_sweeps": 150}, seed=7)

_WORDS = ("a", "b", "ab", "ba", "abc")

#: Assertion pool biased toward domain-prunable shapes (equalities,
#: prefixes, suffixes) so the refined path actually clamps bits, plus
#: length/contains/disequality for the unprunable and aux-bit regimes.
_assert_terms = st.one_of(
    st.sampled_from(_WORDS).map(
        lambda w: ast.Eq(ast.StrVar("x"), ast.StrLit(w))
    ),
    st.integers(min_value=1, max_value=3).map(
        lambda n: ast.Eq(ast.Length(ast.StrVar("x")), ast.IntLit(n))
    ),
    st.sampled_from(["a", "b", "ab"]).map(
        lambda w: ast.PrefixOf(ast.StrLit(w), ast.StrVar("x"))
    ),
    st.sampled_from(["a", "b", "ba"]).map(
        lambda w: ast.SuffixOf(ast.StrLit(w), ast.StrVar("x"))
    ),
    st.sampled_from(["a", "b"]).map(
        lambda c: ast.Contains(ast.StrVar("x"), ast.StrLit(c))
    ),
    st.sampled_from(_WORDS).map(
        lambda w: ast.Not(ast.Eq(ast.StrVar("x"), ast.StrLit(w)))
    ),
)

_conjunctions = st.lists(_assert_terms, min_size=1, max_size=3)


def _solve(assertions, **kwargs):
    config = dict(PROP_SOLVER)
    config.update(kwargs)
    solver = QuantumSMTSolver(**config)
    solver.declare_const("x")
    for term in assertions:
        solver.add_assertion(term)
    return solver.check_sat()


def fingerprint(result):
    """Status, model and exact per-variable energies — no rounding."""
    return (
        str(result.status),
        dict(result.model),
        {name: r.energy for name, r in result.solve_results.items()},
    )


class TestStatusAndModelSoundness:
    @given(assertions=_conjunctions, seed=st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_refine_never_worse_and_models_audit(self, assertions, seed):
        direct = _solve(assertions, seed=seed, strategy="direct")
        refined = _solve(assertions, seed=seed, strategy="refine")
        # Refinement may only *upgrade* unknown -> verified sat; it can
        # never flip sat/unsat or degrade a direct answer.
        assert str(refined.status) == str(direct.status) or (
            str(refined.status) == "sat" and str(direct.status) == "unknown"
        )
        if str(refined.status) == "sat":
            for term in assertions:
                assert eval_formula(term, refined.model)


class TestSerialBitIdentity:
    @given(assertions=_conjunctions, seed=st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_zero_rounds_equals_direct(self, assertions, seed):
        direct = _solve(assertions, seed=seed, strategy="direct")
        refined = _solve(
            assertions, seed=seed, strategy="refine", refine_max_rounds=0
        )
        assert fingerprint(refined) == fingerprint(direct)


def _pooled_bit_identity(make_pool, max_examples):
    """Refined pool at rounds=0 vs a direct pool, same assertions."""
    direct_pool = make_pool("direct", 4)
    refined_pool = make_pool("refine", 0)
    try:
        loop = asyncio.new_event_loop()
        try:

            @given(assertions=_conjunctions)
            @settings(max_examples=max_examples, deadline=None)
            def inner(assertions):
                direct = loop.run_until_complete(
                    direct_pool.solve(assertions)
                )
                refined = loop.run_until_complete(
                    refined_pool.solve(assertions)
                )
                assert fingerprint(refined.result) == fingerprint(
                    direct.result
                )

            inner()
        finally:
            loop.close()
    finally:
        direct_pool.shutdown()
        refined_pool.shutdown()


class TestThreadBackendBitIdentity:
    def test_refined_pool_rounds0_equals_direct_pool(self):
        from repro.server.workers import SolverWorkerPool

        _pooled_bit_identity(
            lambda strategy, rounds: SolverWorkerPool(
                workers=2,
                strategy=strategy,
                refine_max_rounds=rounds,
                **FAST_SOLVER,
            ),
            max_examples=12,
        )


class TestProcessBackendBitIdentity:
    def test_refined_pool_rounds0_equals_direct_pool(self):
        from repro.server.procpool import ProcessSolverBackend

        _pooled_bit_identity(
            lambda strategy, rounds: ProcessSolverBackend(
                workers=2,
                strategy=strategy,
                refine_max_rounds=rounds,
                **FAST_SOLVER,
            ),
            max_examples=8,
        )
