"""The incremental-≡-from-scratch property (DESIGN.md Appendix H).

For random push/assert/pop/check interleavings, a
:class:`~repro.smt.session.SolverSession` answer at every frame depth
must be **bit-identical** to a fresh solve of the flattened frame stack
at the same seed — same status, same model, same per-variable energies.
Three backends pin the same contract:

* **serial** — fresh :class:`~repro.smt.solver.QuantumSMTSolver` per
  check (120 interleavings, drawn seeds);
* **thread** — a shared :class:`~repro.server.workers.SolverWorkerPool`
  answers the flattened stack (40 interleavings);
* **process** — a shared
  :class:`~repro.server.procpool.ProcessSolverBackend` ditto
  (40 interleavings).

200 interleavings total. The session's memo/compile-cache fast paths are
exercised *by construction*: pops followed by checks revisit earlier
states, so a fraction of the compared answers come from the memo — and
must still equal the from-scratch solve exactly.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import ast
from repro.smt.session import SessionError, SolverSession
from repro.smt.solver import QuantumSMTSolver

from tests.server.conftest import FAST_SOLVER

pytestmark = [pytest.mark.slow]

#: Faster than FAST_SOLVER: the suite runs hundreds of tiny solves.
PROP_SOLVER = dict(num_reads=16, sampler_params={"num_sweeps": 150}, seed=7)

_WORDS = ("a", "b", "ab", "ba", "abc")

_assert_terms = st.one_of(
    st.sampled_from(_WORDS).map(
        lambda w: ast.Eq(ast.StrVar("x"), ast.StrLit(w))
    ),
    st.integers(min_value=1, max_value=3).map(
        lambda n: ast.Eq(ast.Length(ast.StrVar("x")), ast.IntLit(n))
    ),
    st.sampled_from(["a", "b"]).map(
        lambda c: ast.Contains(ast.StrVar("x"), ast.StrLit(c))
    ),
    st.sampled_from(_WORDS).map(
        lambda w: ast.Not(ast.Eq(ast.StrVar("x"), ast.StrLit(w)))
    ),
)

#: One random session interleaving; a trailing check is always appended
#: by the driver so every example compares at least one answer.
_interleavings = st.lists(
    st.one_of(
        st.just(("push", None)),
        st.just(("pop", None)),
        st.just(("check", None)),
        _assert_terms.map(lambda term: ("assert", term)),
    ),
    min_size=3,
    max_size=9,
)


def fingerprint(result):
    """Everything the bit-identity contract pins — no rounding.

    ``reason`` is deliberately excluded: it is human-facing prose and the
    worker pools phrase compile failures differently from the session.
    """
    return (
        str(result.status),
        dict(result.model),
        {name: r.energy for name, r in result.solve_results.items()},
    )


def drive(session: SolverSession, interleaving, on_check) -> int:
    """Apply one interleaving; calls *on_check* with each session answer.

    Pops at depth 0 are asserted to raise (the contract's error path) and
    then skipped, so every generated sequence is exercised in full.
    """
    session.declare_const("x")
    # A base-frame fact keeps the flattened conjunction non-empty at
    # every depth (pops cannot empty frame 0).
    session.assert_term(
        ast.Eq(ast.Length(ast.StrVar("x")), ast.IntLit(2))
    )
    checks = 0
    for op, payload in list(interleaving) + [("check", None)]:
        if op == "push":
            session.push()
        elif op == "pop":
            if session.depth == 0:
                with pytest.raises(SessionError):
                    session.pop()
            else:
                session.pop()
        elif op == "assert":
            session.assert_term(payload)
        else:
            on_check(session.check_sat(), list(session.flattened()))
            checks += 1
    return checks


class TestSerialEquivalence:
    @given(interleaving=_interleavings, seed=st.integers(0, 2**20))
    @settings(max_examples=120, deadline=None)
    def test_session_equals_fresh_solver_at_every_depth(
        self, interleaving, seed
    ):
        config = dict(PROP_SOLVER, seed=seed)
        session = SolverSession(**config)

        def compare(result, flattened):
            solver = QuantumSMTSolver(**config)
            solver.declarations = dict(session.declarations)
            solver.assertions = flattened
            assert fingerprint(result) == fingerprint(solver.check_sat())

        assert drive(session, interleaving, compare) >= 1


def _pooled_equivalence(make_pool, max_examples):
    """Shared driver: session answers vs one long-lived worker pool."""
    pool = make_pool()
    try:
        loop = asyncio.new_event_loop()
        try:

            @given(interleaving=_interleavings)
            @settings(max_examples=max_examples, deadline=None)
            def inner(interleaving):
                session = SolverSession(**FAST_SOLVER)

                def compare(result, flattened):
                    outcome = loop.run_until_complete(pool.solve(flattened))
                    assert fingerprint(result) == fingerprint(outcome.result)

                assert drive(session, interleaving, compare) >= 1

            inner()
        finally:
            loop.close()
    finally:
        pool.shutdown()


class TestThreadBackendEquivalence:
    def test_session_equals_thread_pool_answers(self):
        from repro.server.workers import SolverWorkerPool

        _pooled_equivalence(
            lambda: SolverWorkerPool(workers=2, **FAST_SOLVER),
            max_examples=40,
        )


class TestProcessBackendEquivalence:
    def test_session_equals_process_pool_answers(self):
        from repro.server.procpool import ProcessSolverBackend

        _pooled_equivalence(
            lambda: ProcessSolverBackend(workers=2, **FAST_SOLVER),
            max_examples=40,
        )
