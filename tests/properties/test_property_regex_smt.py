"""Property tests: the regex matcher against Python's re, and classical
solver models against the theory evaluator."""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regex import expand_to_length, parse_pattern, regex_matches
from repro.smt import ast
from repro.smt.classical import ClassicalStringSolver
from repro.smt.theory import eval_formula, eval_term

letters = st.text(alphabet="abc", min_size=0, max_size=8)


@st.composite
def subset_patterns(draw):
    """Random patterns in the supported subset over {a, b, c}."""
    tokens = draw(
        st.lists(
            st.tuples(
                st.sets(st.sampled_from("abc"), min_size=1, max_size=3),
                st.booleans(),
            ),
            min_size=1,
            max_size=4,
        )
    )
    parts = []
    for chars, plus in tokens:
        body = next(iter(chars)) if len(chars) == 1 else "[" + "".join(sorted(chars)) + "]"
        parts.append(body + ("+" if plus else ""))
    return "".join(parts)


class TestRegexAgainstPythonRe:
    @given(subset_patterns(), letters)
    @settings(max_examples=200, deadline=None)
    def test_matches_agree_with_re_fullmatch(self, pattern, text):
        ours = regex_matches(pattern, text)
        theirs = re.fullmatch(pattern, text) is not None
        assert ours == theirs, f"pattern={pattern!r} text={text!r}"

    @given(subset_patterns(), st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_expansions_actually_match(self, pattern, length):
        tokens = parse_pattern(pattern)
        try:
            positions = expand_to_length(tokens, length)
        except Exception:
            return
        witness = "".join(sorted(chars)[0] for chars in positions)
        assert regex_matches(tokens, witness)
        assert re.fullmatch(pattern, witness) is not None


class TestClassicalSolverSoundness:
    @given(letters.filter(bool))
    @settings(max_examples=30, deadline=None)
    def test_equality_model_checks(self, value):
        assertions = [ast.Eq(ast.StrVar("x"), ast.StrLit(value))]
        result = ClassicalStringSolver().solve(assertions)
        assert result.status == "sat"
        assert eval_formula(assertions[0], result.model)

    @given(letters.filter(lambda s: len(s) >= 1), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_contains_with_padding(self, needle, pad):
        length = len(needle) + pad
        assertions = [
            ast.Eq(ast.Length(ast.StrVar("x")), ast.IntLit(length)),
            ast.Contains(ast.StrVar("x"), ast.StrLit(needle)),
        ]
        result = ClassicalStringSolver().solve(assertions)
        assert result.status == "sat"
        for a in assertions:
            assert eval_formula(a, result.model)

    @given(letters, letters)
    @settings(max_examples=50, deadline=None)
    def test_theory_concat_matches_python(self, a, b):
        term = ast.Concat((ast.StrLit(a), ast.StrLit(b)))
        assert eval_term(term, {}) == a + b

    @given(letters, st.sampled_from("abc"), st.sampled_from("abc"))
    @settings(max_examples=50, deadline=None)
    def test_theory_replace_matches_python(self, text, old, new):
        first = ast.Replace(ast.StrLit(text), ast.StrLit(old), ast.StrLit(new))
        every = ast.Replace(
            ast.StrLit(text), ast.StrLit(old), ast.StrLit(new), replace_all=True
        )
        assert eval_term(first, {}) == text.replace(old, new, 1)
        assert eval_term(every, {}) == text.replace(old, new)
