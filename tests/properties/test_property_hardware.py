"""Property-based tests for the hardware layer: any embedding the
heuristic returns must be a valid minor embedding, and unembedding must
invert embedding on chain-consistent states."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.chains import majority_vote
from repro.hardware.chimera import chimera_graph
from repro.hardware.embedding import EmbeddingError, find_embedding, verify_embedding


@st.composite
def small_graphs(draw):
    n = draw(st.integers(2, 8))
    p = draw(st.floats(0.2, 0.9))
    seed = draw(st.integers(0, 2**31 - 1))
    g = nx.gnp_random_graph(n, p, seed=seed)
    return g


class TestEmbeddingProperties:
    @given(small_graphs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_returned_embeddings_always_verify(self, source, seed):
        target = chimera_graph(4)
        try:
            embedding = find_embedding(source, target, seed=seed, tries=8)
        except EmbeddingError:
            return  # failing to embed is allowed; returning junk is not
        verify_embedding(embedding, source, target)

    @given(small_graphs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_chains_cover_exactly_the_source(self, source, seed):
        target = chimera_graph(4)
        try:
            embedding = find_embedding(source, target, seed=seed, tries=8)
        except EmbeddingError:
            return
        assert set(embedding) == set(source.nodes())
        used = [q for chain in embedding.values() for q in chain]
        assert len(used) == len(set(used))  # disjoint

    @given(
        st.integers(1, 5),
        st.integers(1, 4),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_unembed_inverts_embed_on_consistent_states(
        self, num_logical, chain_len, seed
    ):
        rng = np.random.default_rng(seed)
        # Build a synthetic embedding over distinct labelled qubits.
        embedding = {}
        qubit = 0
        for v in range(num_logical):
            embedding[v] = [f"q{qubit + k}" for k in range(chain_len)]
            qubit += chain_len
        variables = [q for chain in embedding.values() for q in chain]
        logical_truth = rng.integers(0, 2, size=num_logical)
        physical = np.concatenate(
            [np.full(chain_len, bit, dtype=np.int8) for bit in logical_truth]
        )[None, :]
        decoded, order = majority_vote(physical, embedding, variables)
        recovered = [decoded[0][order.index(v)] for v in range(num_logical)]
        np.testing.assert_array_equal(recovered, logical_truth)
