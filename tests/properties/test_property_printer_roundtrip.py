"""Property tests: the SMT-LIB printer/parser round trip.

The printer docstring promises ``parse_script(render_script(assertions))
.assertions == assertions`` for every term the AST can represent. Frozen
dataclass equality makes that directly checkable, so we fuzz random ASTs
over every node type (plus the instance generator's own output) and pin
the two syntactic subtleties explicitly: ``""`` quote doubling in string
literals and each regex constructor's concrete syntax.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import ast
from repro.smt.generator import InstanceGenerator
from repro.smt.parser import parse_script
from repro.smt.printer import (
    quote_string,
    render_assertion,
    render_full_script,
    render_script,
    render_term,
)

# --------------------------------------------------------------------- #
# strategies — one per AST family, covering every constructor
# --------------------------------------------------------------------- #

#: Literal alphabet includes the double quote (the only escaped character
#: in the fragment) and the space (the tokenizer's separator).
_LIT_ALPHABET = 'ab "z'

_string_literals = st.text(alphabet=_LIT_ALPHABET, min_size=0, max_size=6)
_var_names = st.sampled_from(["x", "y", "z"])

_str_leaves = st.one_of(
    _var_names.map(ast.StrVar),
    _string_literals.map(ast.StrLit),
)

_int_leaves = st.integers(min_value=0, max_value=20).map(ast.IntLit)


def _extend_string(children):
    """String-sorted combinators over string-sorted children."""
    pairs = st.tuples(children, children)
    return st.one_of(
        st.lists(children, min_size=2, max_size=3).map(
            lambda parts: ast.Concat(tuple(parts))
        ),
        st.tuples(children, _string_literals, _string_literals, st.booleans()).map(
            lambda t: ast.Replace(
                t[0], ast.StrLit(t[1]), ast.StrLit(t[2]), replace_all=t[3]
            )
        ),
        children.map(ast.Reverse),
        st.tuples(children, _int_leaves).map(lambda t: ast.At(*t)),
        st.tuples(children, _int_leaves, _int_leaves).map(
            lambda t: ast.Substr(*t)
        ),
    )


_string_terms = st.recursive(_str_leaves, _extend_string, max_leaves=6)

_regex_leaves = st.one_of(
    _string_literals.map(ast.ReLit),
    st.tuples(
        st.sampled_from("abcd"), st.sampled_from("wxyz")
    ).map(lambda t: ast.ReRange(min(t), max(t))),
)


def _extend_regex(children):
    return st.one_of(
        st.lists(children, min_size=2, max_size=3).map(
            lambda parts: ast.ReUnion(tuple(parts))
        ),
        st.lists(children, min_size=2, max_size=3).map(
            lambda parts: ast.ReConcat(tuple(parts))
        ),
        children.map(ast.RePlus),
    )


_regex_terms = st.recursive(_regex_leaves, _extend_regex, max_leaves=6)

_int_terms = st.one_of(
    _int_leaves,
    _string_terms.map(ast.Length),
    st.tuples(_string_terms, _string_literals, _int_leaves).map(
        lambda t: ast.IndexOf(t[0], ast.StrLit(t[1]), t[2])
    ),
)

_atoms = st.one_of(
    st.tuples(_string_terms, _string_terms).map(lambda t: ast.Eq(*t)),
    st.tuples(_int_terms, _int_terms).map(lambda t: ast.Eq(*t)),
    st.tuples(_string_terms, _string_terms).map(lambda t: ast.Contains(*t)),
    st.tuples(_string_terms, _string_terms).map(lambda t: ast.PrefixOf(*t)),
    st.tuples(_string_terms, _string_terms).map(lambda t: ast.SuffixOf(*t)),
    st.tuples(_string_terms, _regex_terms).map(lambda t: ast.InRe(*t)),
)

_assertions = st.one_of(_atoms, _atoms.map(ast.Not))


# --------------------------------------------------------------------- #
# the round-trip property
# --------------------------------------------------------------------- #


class TestPrinterRoundTrip:
    @given(st.lists(_assertions, min_size=1, max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_random_ast_round_trips(self, assertions):
        script = render_script(assertions)
        assert parse_script(script).assertions == list(assertions)

    @given(st.lists(_assertions, min_size=1, max_size=2))
    @settings(max_examples=50, deadline=None)
    def test_render_is_idempotent_through_parse(self, assertions):
        # print -> parse -> print is a fixed point: the second render is
        # byte-identical to the first (the printer is canonical).
        once = render_script(assertions)
        again = render_script(parse_script(once).assertions)
        assert once == again

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_generated_instances_round_trip(self, seed):
        gen = InstanceGenerator(seed=seed, max_length=6, max_constraints=3,
                                ops="all")
        inst = gen.generate()
        script = render_script(inst.assertions)
        assert parse_script(script).assertions == list(inst.assertions)

    @given(_string_literals)
    @settings(max_examples=100, deadline=None)
    def test_quote_doubling_round_trips(self, value):
        term = ast.Eq(ast.StrVar("x"), ast.StrLit(value))
        parsed = parse_script(render_script([term])).assertions[0]
        assert parsed.rhs.value == value


# --------------------------------------------------------------------- #
# full scripts: push/pop, multiple check-sats, get-model
# --------------------------------------------------------------------- #


@st.composite
def _session_script_texts(draw) -> str:
    """A random multi-query script over one declared variable.

    Stack validity is *not* required — ``(pop 3)`` at depth 0 is a legal
    thing to print and parse; only execution rejects it — so pops are
    drawn freely.
    """
    lines = []
    if draw(st.booleans()):
        lines.append("(set-logic QF_S)")
    # The shared _assertions strategy draws variables from {x, y, z}.
    lines.extend(f"(declare-const {name} String)" for name in "xyz")
    for _ in range(draw(st.integers(min_value=2, max_value=8))):
        kind = draw(
            st.sampled_from(
                ["assert", "push", "pop", "check-sat", "get-model"]
            )
        )
        if kind == "assert":
            lines.append(render_assertion(draw(_assertions)))
        elif kind in ("push", "pop"):
            lines.append(f"({kind} {draw(st.integers(1, 3))})")
        else:
            lines.append(f"({kind})")
    lines.append("(check-sat)")
    if draw(st.booleans()):
        lines.append("(exit)")
    return "\n".join(lines) + "\n"


class TestFullScriptRoundTrip:
    @given(_session_script_texts())
    @settings(max_examples=150, deadline=None)
    def test_parse_render_parse_is_identity(self, text):
        script = parse_script(text)
        assert parse_script(render_full_script(script)) == script

    @given(_session_script_texts())
    @settings(max_examples=50, deadline=None)
    def test_render_full_script_is_canonical(self, text):
        once = render_full_script(parse_script(text))
        again = render_full_script(parse_script(once))
        assert once == again

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_generated_session_scripts_round_trip(self, seed):
        gen = InstanceGenerator(
            seed=seed, max_length=4, max_constraints=2, sessions=4
        )
        inst = gen.generate()
        script = parse_script(inst.script)
        assert parse_script(render_full_script(script)) == script

    def test_bare_push_renders_with_explicit_level(self):
        # (push) parses as level 1 and must render back with the numeral
        # so the reparse compares equal.
        script = parse_script("(declare-const x String)(push)(pop)")
        rendered = render_full_script(script)
        assert "(push 1)" in rendered and "(pop 1)" in rendered
        assert parse_script(rendered) == script


class TestQuoteDoublingPins:
    """The explicit examples behind the fuzzed quote property."""

    def test_quote_string_doubles_quotes(self):
        assert quote_string('say "hi"') == '"say ""hi"""'
        assert quote_string('"') == '""""'
        assert quote_string("") == '""'

    def test_literal_with_quotes_round_trips(self):
        lit = ast.StrLit('a"b""c')
        parsed = parse_script(
            render_script([ast.Eq(ast.StrVar("x"), lit)])
        ).assertions[0]
        assert parsed.rhs == lit


class TestRegexConstructorPins:
    """One concrete-syntax pin per regex constructor."""

    def test_re_lit(self):
        assert render_term(ast.ReLit("ab")) == '(str.to_re "ab")'

    def test_re_union(self):
        term = ast.ReUnion((ast.ReLit("a"), ast.ReLit("b")))
        assert render_term(term) == '(re.union (str.to_re "a") (str.to_re "b"))'

    def test_re_plus(self):
        assert render_term(ast.RePlus(ast.ReLit("a"))) == '(re.+ (str.to_re "a"))'

    def test_re_concat(self):
        term = ast.ReConcat((ast.ReLit("a"), ast.RePlus(ast.ReLit("b"))))
        assert (
            render_term(term)
            == '(re.++ (str.to_re "a") (re.+ (str.to_re "b")))'
        )

    def test_re_range(self):
        assert render_term(ast.ReRange("a", "f")) == '(re.range "a" "f")'

    def test_every_regex_constructor_round_trips(self):
        regex = ast.ReConcat(
            (
                ast.ReLit("a"),
                ast.RePlus(ast.ReUnion((ast.ReLit("b"), ast.ReRange("c", "e")))),
            )
        )
        term = ast.InRe(ast.StrVar("x"), regex)
        assert parse_script(render_script([term])).assertions == [term]
