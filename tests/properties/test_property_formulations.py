"""Property-based tests of the string formulations' ground-state semantics.

The key invariant for every generation formulation: the *intended* output's
encoding achieves the formulation's ground energy, and verification accepts
exactly the intended semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anneal.greedy import SteepestDescentSampler
from repro.core.encoding import encode_string
from repro.core.equality import StringEquality
from repro.core.palindrome import PalindromeGeneration
from repro.core.replace import StringReplace, StringReplaceAll
from repro.core.reverse import StringReversal
from repro.core.substring import SubstringMatching

printable = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
    min_size=1,
    max_size=8,
)
printable_char = st.characters(min_codepoint=0x20, max_codepoint=0x7E)


class TestGroundStateProperties:
    @given(printable)
    def test_equality_target_achieves_ground(self, text):
        f = StringEquality(text)
        assert f.build_model().energy(encode_string(text)) == f.ground_energy()
        assert f.verify(text)

    @given(printable)
    def test_reversal_semantics(self, text):
        f = StringReversal(text)
        assert f.verify(text[::-1])
        assert f.build_model().energy(
            encode_string(text[::-1])
        ) == f.ground_energy()

    @given(printable, printable_char, printable_char)
    def test_replace_all_postcondition(self, text, old, new):
        f = StringReplaceAll(text, old, new)
        expected = text.replace(old, new)
        if old != new:
            assert old not in expected or not f.verify(expected)
        model_energy = f.build_model().energy(encode_string(expected))
        assert model_energy == f.ground_energy()

    @given(printable, printable_char, printable_char)
    def test_replace_first_semantics(self, text, old, new):
        f = StringReplace(text, old, new)
        expected = text.replace(old, new, 1)
        assert f.verify(expected)
        assert f.build_model().energy(encode_string(expected)) == f.ground_energy()

    @given(st.integers(1, 6), printable)
    def test_substring_prefix_achieves_ground(self, extra, sub):
        total = len(sub) + extra
        f = SubstringMatching(total, sub)
        prefix = f.expected_prefix()
        assert len(prefix) == total
        assert sub in prefix
        assert f.build_model().energy(encode_string(prefix)) == f.ground_energy()

    @given(st.integers(1, 6))
    def test_palindrome_ground_set(self, length):
        f = PalindromeGeneration(length)
        model = f.build_model()
        # Any mirrored string hits energy 0.
        half = "ab" * length
        text = (half[: (length + 1) // 2] + half[: length // 2][::-1])[:length]
        mirrored = text[: (length + 1) // 2]
        candidate = mirrored + mirrored[: length // 2][::-1]
        assert candidate == candidate[::-1]
        assert model.energy(encode_string(candidate)) == 0.0


class TestDescentSolvesDiagonalFormulations:
    """Steepest descent is exact on diagonal QUBOs — a deterministic check
    that every equality-family formulation's QUBO really encodes its target."""

    @given(printable)
    @settings(max_examples=20, deadline=None)
    def test_equality_descent(self, text):
        f = StringEquality(text)
        ss = SteepestDescentSampler().sample_model(
            f.build_model(), num_reads=1, seed=0
        )
        state = ss.first.state(ss.variables)
        assert f.decode(state) == text

    @given(printable, printable_char, printable_char)
    @settings(max_examples=20, deadline=None)
    def test_replace_all_descent(self, text, old, new):
        f = StringReplaceAll(text, old, new)
        ss = SteepestDescentSampler().sample_model(
            f.build_model(), num_reads=1, seed=0
        )
        assert f.decode(ss.first.state(ss.variables)) == text.replace(old, new)
