"""Properties of the sparse (CSR) kernel path.

Two layers of guarantees:

* **energies** — ``qubo_energies_csr`` agrees with the dense kernel to
  1e-9 on arbitrary random models (floating-point associativity is the
  only difference), and *exactly* on integer-coefficient string models;
* **sampling** — at a fixed seed, the sparse incremental-field kernels
  return sample sets **bit-identical** to the dense ones, across all three
  sweep modes and across the tabu / greedy samplers, on the paper's string
  QUBOs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anneal.greedy import SteepestDescentSampler
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.anneal.tabu import TabuSampler
from repro.core import PalindromeGeneration, StringEquality
from repro.qubo.energy import qubo_energies
from repro.qubo.model import QuboModel
from repro.qubo.sparse import qubo_energies_csr, sparse_sampler_form


@st.composite
def coefficient_dicts(draw, max_n=8):
    n = draw(st.integers(min_value=1, max_value=max_n))
    entries = draw(
        st.dictionaries(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            st.floats(-5, 5, allow_nan=False, allow_infinity=False),
            max_size=16,
        )
    )
    offset = draw(st.floats(-3, 3, allow_nan=False))
    return n, entries, offset


class TestEnergyEquivalence:
    @given(coefficient_dicts(), st.integers(0, 2**31 - 1))
    def test_sparse_matches_dense_energies(self, problem, state_seed):
        n, entries, offset = problem
        model = QuboModel(n, entries, offset=offset)
        diag, csr = sparse_sampler_form(model.to_dict(), n)
        states = np.random.default_rng(state_seed).integers(0, 2, size=(16, n))
        dense = qubo_energies(states, model.to_dense(), offset)
        sparse = qubo_energies_csr(states, diag, csr, offset)
        np.testing.assert_allclose(sparse, dense, atol=1e-9)

    @given(st.integers(2, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=25)
    def test_exact_on_integer_palindrome_models(self, length, state_seed):
        model = PalindromeGeneration(length).build_model()
        diag, csr = sparse_sampler_form(model.to_dict(), model.num_variables)
        states = np.random.default_rng(state_seed).integers(
            0, 2, size=(8, model.num_variables)
        )
        dense = qubo_energies(states, model.to_dense(), model.offset)
        sparse = qubo_energies_csr(states, diag, csr, model.offset)
        np.testing.assert_array_equal(sparse, dense)


def _assert_identical(dense_set, sparse_set):
    np.testing.assert_array_equal(dense_set.states, sparse_set.states)
    np.testing.assert_array_equal(dense_set.energies, sparse_set.energies)
    np.testing.assert_array_equal(
        dense_set.num_occurrences, sparse_set.num_occurrences
    )


def _string_models():
    return [
        PalindromeGeneration(8).build_model(),
        StringEquality("bit-identical").build_model(),
    ]


class TestKernelBitIdentity:
    @pytest.mark.parametrize("sweep_mode", ["random", "sequential", "colored"])
    def test_sa_sparse_identical_to_dense(self, sweep_mode):
        for model in _string_models():
            runs = {}
            for mode in ("dense", "sparse"):
                runs[mode] = SimulatedAnnealingSampler().sample_model(
                    model,
                    num_reads=12,
                    num_sweeps=80,
                    sweep_mode=sweep_mode,
                    coupling_mode=mode,
                    seed=42,
                )
                assert runs[mode].info["coupling_form"] == mode
            _assert_identical(runs["dense"], runs["sparse"])

    def test_tabu_sparse_identical_to_dense(self):
        model = PalindromeGeneration(6).build_model()
        dense = TabuSampler().sample_model(
            model, num_reads=6, seed=11, coupling_mode="dense"
        )
        sparse = TabuSampler().sample_model(
            model, num_reads=6, seed=11, coupling_mode="sparse"
        )
        _assert_identical(dense, sparse)

    def test_greedy_sparse_identical_to_dense(self):
        model = PalindromeGeneration(6).build_model()
        dense = SteepestDescentSampler().sample_model(
            model, num_reads=6, seed=12, coupling_mode="dense"
        )
        sparse = SteepestDescentSampler().sample_model(
            model, num_reads=6, seed=12, coupling_mode="sparse"
        )
        _assert_identical(dense, sparse)

    def test_auto_mode_picks_sparse_and_stays_identical(self):
        # 64 characters -> 448 variables: firmly in the auto-sparse regime.
        model = PalindromeGeneration(64).build_model()
        auto = SimulatedAnnealingSampler().sample_model(
            model, num_reads=4, num_sweeps=30, seed=21
        )
        assert auto.info["coupling_form"] == "sparse"
        dense = SimulatedAnnealingSampler().sample_model(
            model, num_reads=4, num_sweeps=30, seed=21, coupling_mode="dense"
        )
        _assert_identical(dense, auto)


class TestColoredVsSequential:
    def test_colored_solves_palindrome_like_sequential(self):
        # The two sweep orders draw different RNG streams, so the sample
        # sets differ — but both must land valid palindromes at the ground
        # energy of the mirrored-pair model.
        formulation = PalindromeGeneration(6)
        model = formulation.build_model()
        outcomes = {}
        for sweep_mode in ("sequential", "colored"):
            ss = SimulatedAnnealingSampler().sample_model(
                model,
                num_reads=32,
                num_sweeps=300,
                sweep_mode=sweep_mode,
                seed=33,
            )
            decoded = formulation.decode(ss.first.state(ss.variables))
            assert decoded == decoded[::-1], sweep_mode
            outcomes[sweep_mode] = ss.first.energy
        assert outcomes["colored"] == pytest.approx(
            outcomes["sequential"], abs=1e-9
        )
