"""Property-based tests on sampler invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anneal.exact import ExactSolver
from repro.anneal.greedy import SteepestDescentSampler
from repro.anneal.sampleset import SampleSet
from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.qubo.model import QuboModel


@st.composite
def small_models(draw, max_n=8):
    n = draw(st.integers(2, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    q = np.triu(rng.normal(size=(n, n)))
    return QuboModel.from_dense(q)


class TestSamplerInvariants:
    @given(small_models(), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_sa_energies_match_states(self, model, seed):
        ss = SimulatedAnnealingSampler().sample_model(
            model, num_reads=4, num_sweeps=20, seed=seed
        )
        np.testing.assert_allclose(
            ss.energies, model.energies(ss.states), atol=1e-9
        )

    @given(small_models(), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_sa_never_beats_exact(self, model, seed):
        _, ground = ExactSolver().ground_state(model)
        ss = SimulatedAnnealingSampler().sample_model(
            model, num_reads=4, num_sweeps=30, seed=seed
        )
        assert ss.first.energy >= ground - 1e-9

    @given(small_models(max_n=6), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_greedy_monotone_improvement(self, model, seed):
        rng = np.random.default_rng(seed)
        starts = rng.integers(0, 2, size=(4, model.num_variables), dtype=np.int8)
        start_energy = model.energies(starts)
        ss = SteepestDescentSampler().sample_model(
            model, num_reads=4, initial_states=starts
        )
        # Descent from each start can only go down; compare sorted multisets.
        assert np.sort(ss.energies)[0] <= np.sort(start_energy)[0] + 1e-9

    @given(small_models(max_n=6))
    @settings(max_examples=15, deadline=None)
    def test_exact_min_is_true_min(self, model):
        ss = ExactSolver().sample_model(model)
        states = ss.states
        assert ss.first.energy == model.energies(states).min()


class TestSampleSetInvariants:
    @given(
        st.integers(1, 20),
        st.integers(1, 6),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_aggregate_preserves_total_occurrences(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        states = rng.integers(0, 2, size=(rows, cols), dtype=np.int8)
        energies = rng.normal(size=rows)
        occurrences = rng.integers(1, 5, size=rows)
        ss = SampleSet(states, energies, num_occurrences=occurrences)
        agg = ss.aggregate()
        assert agg.num_occurrences.sum() == occurrences.sum()
        assert len(agg) <= len(ss)

    @given(st.integers(1, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_sorted_invariant(self, rows, seed):
        rng = np.random.default_rng(seed)
        ss = SampleSet(
            rng.integers(0, 2, size=(rows, 3), dtype=np.int8),
            rng.normal(size=rows),
        )
        assert np.all(np.diff(ss.energies) >= 0)

    @given(st.integers(1, 10), st.integers(0, 5), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_truncate_bounds(self, rows, k, seed):
        rng = np.random.default_rng(seed)
        ss = SampleSet(
            rng.integers(0, 2, size=(rows, 2), dtype=np.int8),
            rng.normal(size=rows),
        )
        assert len(ss.truncate(k)) == min(k, rows)
