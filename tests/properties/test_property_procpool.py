"""Properties of the scale-out layer: backend equivalence and stable keys.

1. **Backend bit-identity** — ``backend="process"`` must answer exactly
   what ``backend="thread"`` and a direct in-process ``check_sat`` answer
   at the same seed: same status, same model, same per-variable energies.
   Worker processes, pipes and per-worker caches are transport, not
   semantics (same contract the batch-≡-sequential property pins one
   layer down).

2. **Routing-key stability** — :func:`repro.server.router.shard_key` is a
   content hash (sha256 over the parsed assertion conjunction), so it
   must be identical across processes, runs and ``PYTHONHASHSEED``
   values. If it ever picked up ``hash()`` randomization, a router
   restart would silently re-shard every key and cold every cache; the
   pinned digests below make that a loud failure.
"""

from __future__ import annotations

import asyncio
import subprocess
import sys

import pytest

from repro.server.procpool import ProcessSolverBackend
from repro.server.router import shard_index, shard_key
from repro.server.workers import SolverWorkerPool
from repro.smt.parser import parse_script
from repro.smt.solver import QuantumSMTSolver

from tests.server.conftest import FAST_SOLVER

pytestmark = [pytest.mark.server, pytest.mark.slow]

SCRIPTS = [
    '(declare-const x String)(assert (= x "hi"))(check-sat)',
    '(declare-const y String)'
    '(assert (= y "abc"))(assert (= (str.len y) 3))(check-sat)',
    '(declare-const a String)(declare-const b String)'
    '(assert (= a "q"))(assert (= b "zz"))(check-sat)',
]


def solve_direct(assertions):
    solver = QuantumSMTSolver(**FAST_SOLVER)
    solver.assertions = list(assertions)
    return solver.check_sat()


def fingerprint(result):
    """Everything the determinism contract pins: status, model, energies."""
    return (
        str(result.status),
        dict(result.model),
        {name: r.energy for name, r in result.solve_results.items()},
        {name: r.ground_energy for name, r in result.solve_results.items()},
    )


class TestBackendBitIdentity:
    def test_process_thread_and_direct_agree_exactly(self):
        # One pool per backend, shared across scripts — per-worker caches
        # and worker reuse must not perturb answers.
        async def run_all():
            thread_pool = SolverWorkerPool(workers=2, **FAST_SOLVER)
            process_pool = ProcessSolverBackend(workers=2, **FAST_SOLVER)
            try:
                outcomes = []
                for script in SCRIPTS:
                    assertions = parse_script(script).assertions
                    via_thread = await thread_pool.solve(assertions)
                    via_process = await process_pool.solve(assertions)
                    outcomes.append((assertions, via_thread, via_process))
                return outcomes
            finally:
                thread_pool.shutdown()
                process_pool.shutdown()

        for assertions, via_thread, via_process in asyncio.run(run_all()):
            direct = fingerprint(solve_direct(assertions))
            assert fingerprint(via_thread.result) == direct
            assert fingerprint(via_process.result) == direct

    def test_process_backend_unaffected_by_cache_state(self):
        # A repeat of the same formula is a per-worker cache hit on
        # whichever worker gets it — the answer must not change.
        async def run():
            pool = ProcessSolverBackend(workers=1, **FAST_SOLVER)
            try:
                assertions = parse_script(SCRIPTS[0]).assertions
                first = await pool.solve(assertions)
                second = await pool.solve(assertions)
                return first, second
            finally:
                pool.shutdown()

        first, second = asyncio.run(run())
        assert second.cache_hit  # workers=1 ⇒ the repeat is a local hit
        assert fingerprint(first.result) == fingerprint(second.result)


#: shard_key must never drift: these digests were computed once and are
#: load-bearing — cached placements and warm shards depend on them.
PINNED_KEYS = {
    '(declare-const x String)(assert (= x "hi"))(check-sat)':
        "841e80b8d5af1f2524b03a128e5437989dc0931c9123ea499ebd1ec8a7a6a448",
    # Unparseable input takes the raw-text fallback path; still pinned.
    '(assert (= x "unterminated':
        "67b21f0818d25f480330179f4fa147b0d7be4f44be339368c484e11c03aa7b07",
}

_SUBPROCESS_PROG = (
    "from repro.server.router import shard_key; import sys; "
    "print(shard_key(sys.argv[1]))"
)


class TestShardKeyStability:
    def test_pinned_digests(self):
        for script, expected in PINNED_KEYS.items():
            assert shard_key(script) == expected

    def test_whitespace_and_comments_do_not_move_keys(self):
        # The key hashes the *parsed* conjunction: formatting noise must
        # not re-shard a formula (that is what keeps caches warm).
        compact = '(declare-const x String)(assert (= x "hi"))(check-sat)'
        spaced = (
            "; a comment\n(declare-const x String)\n"
            '(assert (= x "hi"))\n(check-sat)\n'
        )
        assert shard_key(compact) == shard_key(spaced)

    def test_stable_across_processes_and_hash_seeds(self):
        # hash() randomization is the classic way this breaks: prove the
        # key survives fresh interpreters with different PYTHONHASHSEEDs.
        script = '(declare-const x String)(assert (= x "hi"))(check-sat)'
        import os

        for hashseed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env.setdefault("PYTHONPATH", "src")
            out = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_PROG, script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            assert out.stdout.strip() == PINNED_KEYS[script], (
                f"shard_key drifted under PYTHONHASHSEED={hashseed}"
            )

    def test_index_partition_is_total_and_deterministic(self):
        key = shard_key(SCRIPTS[1])
        for n in (1, 2, 3, 8):
            index = shard_index(key, n)
            assert 0 <= index < n
            assert shard_index(key, n) == index  # pure function of (key, n)
