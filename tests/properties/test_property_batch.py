"""Property: batch solving ≡ sequential solving, element-wise, at fixed seed.

For random constraint sets, :class:`BatchSolver` must return exactly the
result the sequential :class:`QuantumSMTSolver` produces for each item with
the same seed — regardless of worker count, executor choice, duplicate
items, or compile-cache state.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.batch import BatchSolver
from repro.smt import ast
from repro.smt.solver import QuantumSMTSolver

SEED = 11
FAST = {"num_reads": 32, "sampler_params": {"num_sweeps": 300}}

words = st.text(
    alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E),
    min_size=1,
    max_size=4,
)


@st.composite
def constraint_sets(draw):
    """A small single-variable conjunction inside the QUBO fragment."""
    word = draw(words)
    x = ast.StrVar("x")
    kind = draw(st.sampled_from(["eq", "eq+len", "contains+len", "prefix+len"]))
    if kind == "eq":
        return [ast.Eq(x, ast.StrLit(word))]
    if kind == "eq+len":
        return [
            ast.Eq(x, ast.StrLit(word)),
            ast.Eq(ast.Length(x), ast.IntLit(len(word))),
        ]
    extra = draw(st.integers(min_value=0, max_value=2))
    length_fact = ast.Eq(ast.Length(x), ast.IntLit(len(word) + extra))
    if kind == "contains+len":
        return [ast.Contains(x, ast.StrLit(word)), length_fact]
    return [ast.PrefixOf(ast.StrLit(word), x), length_fact]


def solve_sequentially(conjunctions):
    outcomes = []
    for assertions in conjunctions:
        solver = QuantumSMTSolver(seed=SEED, **FAST)
        for assertion in assertions:
            solver.add_assertion(assertion)
        outcomes.append(solver.check_sat())
    return outcomes


class TestBatchEqualsSequential:
    @settings(max_examples=10, deadline=None)
    @given(
        conjunctions=st.lists(constraint_sets(), min_size=1, max_size=4),
        num_workers=st.sampled_from([1, 3]),
    )
    def test_elementwise_equal_to_sequential(self, conjunctions, num_workers):
        reference = solve_sequentially(conjunctions)
        batch = BatchSolver(
            seed=SEED, executor="thread", num_workers=num_workers, **FAST
        )
        report = batch.solve_batch(conjunctions)
        assert report.statuses == [r.status for r in reference]
        assert report.models == [r.model for r in reference]

    @settings(max_examples=8, deadline=None)
    @given(conjunction=constraint_sets(), repeats=st.integers(2, 5))
    def test_duplicates_hit_cache_without_changing_results(
        self, conjunction, repeats
    ):
        items = [conjunction] * repeats
        report = BatchSolver(seed=SEED, executor="serial", **FAST).solve_batch(items)
        (reference,) = solve_sequentially([conjunction])
        for item in report:
            assert item.status == reference.status
            assert item.model == reference.model
        # One compile, repeats - 1 hits.
        assert report.cache_stats.misses == 1
        assert report.cache_stats.hits == repeats - 1
