"""Property-based tests for the QUBO data model and transforms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.qubo.algebra import add_models, fix_variables, scale_model
from repro.qubo.ising import ising_to_qubo, qubo_to_ising
from repro.qubo.energy import qubo_energies_dict
from repro.qubo.model import QuboModel


@st.composite
def qubo_models(draw, max_n=6):
    n = draw(st.integers(min_value=1, max_value=max_n))
    entries = draw(
        st.dictionaries(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            st.floats(-5, 5, allow_nan=False, allow_infinity=False),
            max_size=12,
        )
    )
    offset = draw(st.floats(-3, 3, allow_nan=False))
    return QuboModel(n, entries, offset=offset)


def _all_states(n):
    codes = np.arange(1 << n, dtype=np.uint64)
    return ((codes[:, None] >> np.arange(n, dtype=np.uint64)[None, :]) & 1).astype(
        np.int8
    )


class TestModelProperties:
    @given(qubo_models())
    def test_dense_and_dict_energies_agree(self, model):
        states = _all_states(model.num_variables)
        dense = model.energies(states)
        sparse = qubo_energies_dict(states, model.to_dict(), model.offset)
        np.testing.assert_allclose(dense, sparse, atol=1e-9)

    @given(qubo_models())
    def test_copy_equal_and_independent(self, model):
        clone = model.copy()
        assert clone == model
        clone.add_linear(0, 1.0)
        assert clone != model or model.get(0) == clone.get(0) - 1.0

    @given(qubo_models(), qubo_models())
    def test_addition_commutes(self, a, b):
        if a.num_variables != b.num_variables:
            return
        states = _all_states(a.num_variables)
        ab = add_models(a, b).energies(states)
        ba = add_models(b, a).energies(states)
        np.testing.assert_allclose(ab, ba, atol=1e-9)

    @given(qubo_models(), st.floats(0.01, 10, allow_nan=False))
    def test_scaling_preserves_minimizer(self, model, factor):
        states = _all_states(model.num_variables)
        original = model.energies(states)
        scaled = scale_model(model, factor).energies(states)
        # The original minimizer stays a minimizer of the scaled model
        # (up to floating-point rounding of the scaled energies).
        best = int(np.argmin(original))
        assert scaled[best] <= scaled.min() + 1e-9 * max(1.0, factor)
        np.testing.assert_allclose(scaled, factor * original, rtol=1e-9, atol=1e-12)

    @given(qubo_models())
    def test_ising_round_trip_preserves_energy(self, model):
        h, j, off = qubo_to_ising(model.to_dict(), model.offset)
        back, off2 = ising_to_qubo(h, j, off)
        states = _all_states(model.num_variables)
        np.testing.assert_allclose(
            model.energies(states),
            qubo_energies_dict(states, back, off2),
            atol=1e-9,
        )

    @given(qubo_models(max_n=5), st.data())
    def test_fix_variables_consistent(self, model, data):
        n = model.num_variables
        fixed_var = data.draw(st.integers(0, n - 1))
        fixed_val = data.draw(st.integers(0, 1))
        reduced, new_index = fix_variables(model, {fixed_var: fixed_val})
        free = [v for v in range(n) if v != fixed_var]
        for state in _all_states(len(free)):
            full = np.zeros(n, dtype=np.int8)
            full[fixed_var] = fixed_val
            for v in free:
                full[v] = state[new_index[v]]
            assert abs(model.energy(full) - reduced.energy(state)) < 1e-9
