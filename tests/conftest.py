"""Shared fixtures.

Deterministic seeds everywhere: annealing is stochastic, so every test that
samples pins its seed, and the fixtures hand out fresh-but-reproducible
generators.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.anneal import SimulatedAnnealingSampler
from repro.core import StringQuboSolver


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def sampler() -> SimulatedAnnealingSampler:
    return SimulatedAnnealingSampler()


@pytest.fixture
def solver() -> StringQuboSolver:
    """A solver configured for fast, reliable test runs."""
    return StringQuboSolver(
        num_reads=32, seed=7, sampler_params={"num_sweeps": 300}
    )


def random_qubo(rng: np.random.Generator, n: int):
    """A dense random QUBO for sampler tests."""
    from repro.qubo import QuboModel

    q = np.triu(rng.normal(size=(n, n)))
    return QuboModel.from_dense(q)
