"""Weighted scripts through the server: /solve optimization routing."""

from __future__ import annotations

import pytest

from repro.server.client import SolverClient

from .conftest import SAT_SCRIPT

pytestmark = [pytest.mark.server, pytest.mark.opt]

WEIGHTED_SCRIPT = (
    "(declare-const x String)"
    "(assert (= (str.len x) 1))"
    '(assert-soft (= x "a") :weight 1)'
    '(assert-soft (= x "b") :weight 3)'
    "(check-sat)"
)
WEIGHTED_INFEASIBLE = (
    '(assert (= "a" "b"))'
    "(declare-const x String)"
    '(assert-soft (= x "a") :weight 5)'
    "(check-sat)"
)


def test_weighted_script_returns_opt_envelope(server):
    client = SolverClient(server.host, server.port)
    reply = client.solve(WEIGHTED_SCRIPT)
    assert reply.http_status == 200
    assert reply.ok
    assert reply.status == "sat"
    assert reply.model == {"x": "b"}
    envelope = reply.envelope
    assert envelope.opt_status == "optimal"
    assert envelope.objective == 1.0
    assert envelope.lower_bound == 1.0
    assert envelope.upper_bound == 1.0


def test_weighted_infeasible_projects_to_unsat(server):
    client = SolverClient(server.host, server.port)
    reply = client.solve(WEIGHTED_INFEASIBLE)
    assert reply.ok
    assert reply.status == "unsat"
    assert reply.envelope.opt_status == "infeasible"
    assert reply.envelope.objective is None


def test_plain_script_keeps_null_opt_fields(server):
    client = SolverClient(server.host, server.port)
    reply = client.solve(SAT_SCRIPT)
    assert reply.ok
    envelope = reply.envelope
    assert envelope.opt_status == ""
    assert envelope.objective is None
    assert envelope.lower_bound is None
    assert envelope.upper_bound is None


def test_opt_metrics_counted(server):
    client = SolverClient(server.host, server.port)
    client.solve(WEIGHTED_SCRIPT)
    metrics = client.metrics()
    counters = metrics.get("counters", {})
    assert counters.get("server.opt.optimal", 0) >= 1
