"""Lifecycle edges, fault-injection style (mirrors ``tests/service/``):

* a full admission queue **rejects** with ``overloaded`` instead of
  blocking, and the server stays responsive throughout;
* deadline-exceeded requests are cancelled and reported as ``timeout``
  (never ``unknown``);
* graceful drain completes in-flight solves;
* an exhausted drain timeout cancels the stragglers with typed
  ``cancelled`` accounting.

The injection point is ``SlowSampler`` (a sampler that sleeps), wired in
through ``ServerConfig.sampler_factory``.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.server.app import BackgroundServer
from repro.server.client import AsyncSolverClient, ServerConnectionError, SolverClient

from tests.server.conftest import SAT_SCRIPT, SlowSampler, fast_config

pytestmark = pytest.mark.server


def slow_config(delay: float, **overrides):
    return fast_config(sampler_factory=lambda: SlowSampler(delay), **overrides)


class TestBackpressure:
    def test_full_queue_rejects_rather_than_blocks(self):
        # One worker, one queue slot, a 0.5 s solve: a burst of 6 must see
        # immediate 'overloaded' rejections for the overflow — the reject
        # path must return in far less time than any solve takes.
        config = slow_config(0.5, workers=1, queue_limit=1)
        with BackgroundServer(config) as server:
            client = AsyncSolverClient(server.host, server.port, timeout=30.0)

            async def burst():
                started = time.monotonic()
                replies = await asyncio.gather(
                    *(client.solve(SAT_SCRIPT) for _ in range(6))
                )
                return replies, time.monotonic() - started

            replies, elapsed = asyncio.run(burst())
            by_kind = {}
            for reply in replies:
                key = reply.status if reply.ok else reply.error_type
                by_kind[key] = by_kind.get(key, 0) + 1

            assert by_kind.get("overloaded", 0) >= 3, by_kind
            assert by_kind.get("sat", 0) >= 1, by_kind
            # Blocking behaviour would take ~6 × 0.5 s; rejection keeps the
            # burst bounded by the two admitted solves.
            assert elapsed < 2.5

            # The server stayed responsive: healthz answers while solving.
            with SolverClient(server.host, server.port) as sync_client:
                assert sync_client.healthz()["http_status"] == 200

            metrics = asyncio.run(client.metrics())
            counters = metrics["counters"]
            assert counters["server.rejected.overloaded"] >= 3
            # Accounting identity over the full burst.
            rejected = sum(
                v for k, v in counters.items() if k.startswith("server.rejected.")
            )
            assert counters["server.requests"] == (
                counters.get("server.completed", 0)
                + rejected
                + counters.get("server.timeout", 0)
                + counters.get("server.cancelled", 0)
                + counters.get("server.internal", 0)
            )

    def test_zero_queue_limit_still_serves_idle_server(self):
        # queue_limit bounds *waiting* requests only: with no waiting room
        # an idle server must still serve up to `workers` requests.
        config = fast_config(queue_limit=0, workers=1)
        with BackgroundServer(config) as server:
            with SolverClient(server.host, server.port) as client:
                reply = client.solve(SAT_SCRIPT)
        assert reply.ok and reply.status == "sat"

    def test_healthz_reports_load_during_solve(self):
        config = slow_config(0.6, workers=1, queue_limit=4)
        with BackgroundServer(config) as server:
            client = AsyncSolverClient(server.host, server.port, timeout=30.0)

            async def scenario():
                solve = asyncio.create_task(client.solve(SAT_SCRIPT))
                await asyncio.sleep(0.2)
                health = await client.healthz()
                reply = await solve
                return health, reply

            health, reply = asyncio.run(scenario())
            assert health["in_flight"] == 1
            assert reply.ok


class TestDeadlines:
    def test_deadline_exceeded_mid_solve_is_timeout_not_unknown(self):
        config = slow_config(2.0, workers=1, queue_limit=4)
        with BackgroundServer(config) as server:
            with SolverClient(server.host, server.port) as client:
                started = time.monotonic()
                reply = client.solve(SAT_SCRIPT, deadline_ms=300)
                elapsed = time.monotonic() - started
        assert not reply.ok
        assert reply.error_type == "timeout"
        assert reply.status == "timeout"          # never 'unknown'
        assert reply.status != "unknown"
        assert reply.http_status == 504
        assert "solving" in reply.error.message
        assert elapsed < 1.5  # answered at the deadline, not after the solve

    def test_deadline_exceeded_while_queued_is_timeout(self):
        config = slow_config(1.0, workers=1, queue_limit=4)
        with BackgroundServer(config) as server:
            client = AsyncSolverClient(server.host, server.port, timeout=30.0)

            async def scenario():
                blocker = asyncio.create_task(client.solve(SAT_SCRIPT))
                await asyncio.sleep(0.15)  # let it occupy the worker
                queued = await client.solve(SAT_SCRIPT, deadline_ms=250)
                await blocker
                return queued

            queued = asyncio.run(scenario())
        assert not queued.ok
        assert queued.error_type == "timeout"
        assert "queued" in queued.error.message

    def test_timeouts_counted_in_metrics(self):
        config = slow_config(1.0, workers=1, queue_limit=4)
        with BackgroundServer(config) as server:
            with SolverClient(server.host, server.port) as client:
                client.solve(SAT_SCRIPT, deadline_ms=200)
                counters = client.metrics()["counters"]
        assert counters["server.timeout"] == 1
        assert counters["server.timeout.solving"] == 1


class TestIdleConnections:
    def test_shutdown_completes_with_idle_keepalive_connection(self):
        # Regression: a client that finished its request but keeps its
        # keep-alive socket open (SolverClient's default) must not pin
        # graceful shutdown — idle connections are closed once the drain
        # wait ends, busy ones get the grace period.
        config = fast_config(drain_timeout=5.0)
        server = BackgroundServer(config).start()
        client = SolverClient(server.host, server.port, timeout=30.0)
        try:
            reply = client.solve(SAT_SCRIPT)
            assert reply.ok and reply.status == "sat"
            started = time.monotonic()
            server.stop(timeout=30.0)  # idle keep-alive connection is open
            elapsed = time.monotonic() - started
            assert elapsed < 5.0, f"shutdown took {elapsed:.1f}s with idle conn"
        finally:
            client.close()
            server.stop()

    def test_shutdown_completes_with_connected_but_silent_client(self):
        # A socket that connected and never sent a byte must not block
        # shutdown either (the pre-request flavour of the same hang).
        config = fast_config(drain_timeout=5.0)
        server = BackgroundServer(config).start()
        try:

            async def scenario():
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                try:
                    started = time.monotonic()
                    await asyncio.get_running_loop().run_in_executor(
                        None, lambda: server.stop(timeout=30.0)
                    )
                    return time.monotonic() - started
                finally:
                    writer.close()

            elapsed = asyncio.run(scenario())
            assert elapsed < 10.0
        finally:
            server.stop()

    def test_silent_connection_closed_after_idle_timeout(self):
        # A silent client cannot hold a connection task forever: the
        # keep-alive read is bounded by idle_timeout.
        config = fast_config(idle_timeout=0.3)
        with BackgroundServer(config) as server:

            async def scenario():
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                try:
                    # Send nothing; the server should hang up (clean EOF)
                    # within ~idle_timeout rather than waiting forever.
                    return await asyncio.wait_for(reader.read(), timeout=5.0)
                finally:
                    writer.close()

            assert asyncio.run(scenario()) == b""


class TestGracefulDrain:
    def test_drain_completes_in_flight_solves(self):
        config = slow_config(0.8, workers=1, queue_limit=4, drain_timeout=10.0)
        server = BackgroundServer(config).start()
        try:
            results = {}

            def submit():
                with SolverClient(server.host, server.port, timeout=30.0) as client:
                    results["reply"] = client.solve(SAT_SCRIPT)

            thread = threading.Thread(target=submit)
            thread.start()
            time.sleep(0.3)  # the solve is now in flight
            server.stop(timeout=30.0)  # graceful drain
            thread.join(timeout=30.0)
        finally:
            server.stop()

        reply = results["reply"]
        assert reply.ok and reply.status == "sat"
        assert reply.model == {"x": "hi"}

    def test_draining_server_rejects_new_work_then_stops(self):
        config = slow_config(1.2, workers=1, queue_limit=4, drain_timeout=10.0)
        server = BackgroundServer(config).start()
        try:
            replies = {}

            def submit():
                with SolverClient(server.host, server.port, timeout=30.0) as client:
                    replies["first"] = client.solve(SAT_SCRIPT)

            thread = threading.Thread(target=submit)
            thread.start()
            time.sleep(0.3)

            stopper = threading.Thread(target=lambda: server.stop(timeout=30.0))
            stopper.start()
            time.sleep(0.2)  # drain has begun; listener is closed
            with pytest.raises(ServerConnectionError):
                SolverClient(server.host, server.port, timeout=2.0).solve(SAT_SCRIPT)
            stopper.join(timeout=30.0)
            thread.join(timeout=30.0)
        finally:
            server.stop()
        assert replies["first"].ok

    def test_exhausted_drain_timeout_cancels_with_typed_accounting(self):
        config = slow_config(3.0, workers=1, queue_limit=4, drain_timeout=0.2)
        server = BackgroundServer(config).start()
        metrics = None
        try:
            outcome = {}

            def submit():
                client = SolverClient(server.host, server.port, timeout=30.0)
                try:
                    outcome["reply"] = client.solve(SAT_SCRIPT)
                except ServerConnectionError as exc:
                    outcome["error"] = exc
                finally:
                    client.close()

            thread = threading.Thread(target=submit)
            thread.start()
            time.sleep(0.4)  # in flight
            started = time.monotonic()
            server.stop(timeout=30.0)
            stop_elapsed = time.monotonic() - started
            thread.join(timeout=30.0)
            metrics = server.metrics
        finally:
            server.stop()

        # Drain gave up after ~0.2 s instead of waiting out the 3 s solve.
        assert stop_elapsed < 2.0
        assert metrics.counter("server.cancelled").value == 1
        # The client saw a typed cancelled envelope (best-effort write) or,
        # at worst, a clean transport error — never a hang.
        if "reply" in outcome:
            assert outcome["reply"].error_type == "cancelled"
            assert outcome["reply"].http_status == 503
