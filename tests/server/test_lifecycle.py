"""Lifecycle edges, fault-injection style (mirrors ``tests/service/``):

* a full admission queue **rejects** with ``overloaded`` instead of
  blocking, and the server stays responsive throughout;
* deadline-exceeded requests are cancelled and reported as ``timeout``
  (never ``unknown``);
* graceful drain completes in-flight solves;
* an exhausted drain timeout cancels the stragglers with typed
  ``cancelled`` accounting;
* ``SolverClient`` reconnects exactly once when the server idle-closes
  its keep-alive socket — and **never** resubmits a request that may
  already be executing (mid-request failures raise instead).

The injection point is ``SlowSampler`` (a sampler that sleeps), wired in
through ``ServerConfig.sampler_factory``.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import pytest

from repro.server.app import BackgroundServer
from repro.server.client import AsyncSolverClient, ServerConnectionError, SolverClient

from tests.server.conftest import SAT_SCRIPT, SlowSampler, fast_config

pytestmark = pytest.mark.server


def slow_config(delay: float, **overrides):
    return fast_config(sampler_factory=lambda: SlowSampler(delay), **overrides)


class TestBackpressure:
    def test_full_queue_rejects_rather_than_blocks(self):
        # One worker, one queue slot, a 0.5 s solve: a burst of 6 must see
        # immediate 'overloaded' rejections for the overflow — the reject
        # path must return in far less time than any solve takes.
        config = slow_config(0.5, workers=1, queue_limit=1)
        with BackgroundServer(config) as server:
            client = AsyncSolverClient(server.host, server.port, timeout=30.0)

            async def burst():
                started = time.monotonic()
                replies = await asyncio.gather(
                    *(client.solve(SAT_SCRIPT) for _ in range(6))
                )
                return replies, time.monotonic() - started

            replies, elapsed = asyncio.run(burst())
            by_kind = {}
            for reply in replies:
                key = reply.status if reply.ok else reply.error_type
                by_kind[key] = by_kind.get(key, 0) + 1

            assert by_kind.get("overloaded", 0) >= 3, by_kind
            assert by_kind.get("sat", 0) >= 1, by_kind
            # Blocking behaviour would take ~6 × 0.5 s; rejection keeps the
            # burst bounded by the two admitted solves.
            assert elapsed < 2.5

            # The server stayed responsive: healthz answers while solving.
            with SolverClient(server.host, server.port) as sync_client:
                assert sync_client.healthz()["http_status"] == 200

            metrics = asyncio.run(client.metrics())
            counters = metrics["counters"]
            assert counters["server.rejected.overloaded"] >= 3
            # Accounting identity over the full burst.
            rejected = sum(
                v for k, v in counters.items() if k.startswith("server.rejected.")
            )
            assert counters["server.requests"] == (
                counters.get("server.completed", 0)
                + rejected
                + counters.get("server.timeout", 0)
                + counters.get("server.cancelled", 0)
                + counters.get("server.internal", 0)
            )

    def test_zero_queue_limit_still_serves_idle_server(self):
        # queue_limit bounds *waiting* requests only: with no waiting room
        # an idle server must still serve up to `workers` requests.
        config = fast_config(queue_limit=0, workers=1)
        with BackgroundServer(config) as server:
            with SolverClient(server.host, server.port) as client:
                reply = client.solve(SAT_SCRIPT)
        assert reply.ok and reply.status == "sat"

    def test_healthz_reports_load_during_solve(self):
        config = slow_config(0.6, workers=1, queue_limit=4)
        with BackgroundServer(config) as server:
            client = AsyncSolverClient(server.host, server.port, timeout=30.0)

            async def scenario():
                solve = asyncio.create_task(client.solve(SAT_SCRIPT))
                await asyncio.sleep(0.2)
                health = await client.healthz()
                reply = await solve
                return health, reply

            health, reply = asyncio.run(scenario())
            assert health["in_flight"] == 1
            assert reply.ok


class TestDeadlines:
    def test_deadline_exceeded_mid_solve_is_timeout_not_unknown(self):
        config = slow_config(2.0, workers=1, queue_limit=4)
        with BackgroundServer(config) as server:
            with SolverClient(server.host, server.port) as client:
                started = time.monotonic()
                reply = client.solve(SAT_SCRIPT, deadline_ms=300)
                elapsed = time.monotonic() - started
        assert not reply.ok
        assert reply.error_type == "timeout"
        assert reply.status == "timeout"          # never 'unknown'
        assert reply.status != "unknown"
        assert reply.http_status == 504
        assert "solving" in reply.error.message
        assert elapsed < 1.5  # answered at the deadline, not after the solve

    def test_deadline_exceeded_while_queued_is_timeout(self):
        config = slow_config(1.0, workers=1, queue_limit=4)
        with BackgroundServer(config) as server:
            client = AsyncSolverClient(server.host, server.port, timeout=30.0)

            async def scenario():
                blocker = asyncio.create_task(client.solve(SAT_SCRIPT))
                await asyncio.sleep(0.15)  # let it occupy the worker
                queued = await client.solve(SAT_SCRIPT, deadline_ms=250)
                await blocker
                return queued

            queued = asyncio.run(scenario())
        assert not queued.ok
        assert queued.error_type == "timeout"
        assert "queued" in queued.error.message

    def test_timeouts_counted_in_metrics(self):
        config = slow_config(1.0, workers=1, queue_limit=4)
        with BackgroundServer(config) as server:
            with SolverClient(server.host, server.port) as client:
                client.solve(SAT_SCRIPT, deadline_ms=200)
                counters = client.metrics()["counters"]
        assert counters["server.timeout"] == 1
        assert counters["server.timeout.solving"] == 1


class TestIdleConnections:
    def test_shutdown_completes_with_idle_keepalive_connection(self):
        # Regression: a client that finished its request but keeps its
        # keep-alive socket open (SolverClient's default) must not pin
        # graceful shutdown — idle connections are closed once the drain
        # wait ends, busy ones get the grace period.
        config = fast_config(drain_timeout=5.0)
        server = BackgroundServer(config).start()
        client = SolverClient(server.host, server.port, timeout=30.0)
        try:
            reply = client.solve(SAT_SCRIPT)
            assert reply.ok and reply.status == "sat"
            started = time.monotonic()
            server.stop(timeout=30.0)  # idle keep-alive connection is open
            elapsed = time.monotonic() - started
            assert elapsed < 5.0, f"shutdown took {elapsed:.1f}s with idle conn"
        finally:
            client.close()
            server.stop()

    def test_shutdown_completes_with_connected_but_silent_client(self):
        # A socket that connected and never sent a byte must not block
        # shutdown either (the pre-request flavour of the same hang).
        config = fast_config(drain_timeout=5.0)
        server = BackgroundServer(config).start()
        try:

            async def scenario():
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                try:
                    started = time.monotonic()
                    await asyncio.get_running_loop().run_in_executor(
                        None, lambda: server.stop(timeout=30.0)
                    )
                    return time.monotonic() - started
                finally:
                    writer.close()

            elapsed = asyncio.run(scenario())
            assert elapsed < 10.0
        finally:
            server.stop()

    def test_silent_connection_closed_after_idle_timeout(self):
        # A silent client cannot hold a connection task forever: the
        # keep-alive read is bounded by idle_timeout.
        config = fast_config(idle_timeout=0.3)
        with BackgroundServer(config) as server:

            async def scenario():
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                try:
                    # Send nothing; the server should hang up (clean EOF)
                    # within ~idle_timeout rather than waiting forever.
                    return await asyncio.wait_for(reader.read(), timeout=5.0)
                finally:
                    writer.close()

            assert asyncio.run(scenario()) == b""


class _ScriptedHttpServer:
    """A raw-socket HTTP stand-in that counts the requests it receives.

    Serves ``ok_responses`` complete answers on one keep-alive
    connection, then closes the socket the instant the *next* request
    arrives — before writing a byte if ``truncate_at`` is 0, or after
    ``truncate_at`` bytes of a declared-longer response (the mid-response
    flavour). Whatever the client does next lands on ``self.requests``,
    which is how the no-resubmission tests observe double-submits.
    """

    _RESPONSE = (
        b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
        b"Content-Length: 2\r\nConnection: keep-alive\r\n\r\n{}"
    )

    def __init__(self, ok_responses: int, truncate_at: int = 0) -> None:
        self.ok_responses = ok_responses
        self.truncate_at = truncate_at
        self.requests = 0
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _read_request(self, conn: socket.socket) -> bool:
        """One full request off the socket; False on client EOF."""
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(4096)
            if not chunk:
                return False
            data += chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        while len(rest) < length:
            chunk = conn.recv(4096)
            if not chunk:
                return False
            rest += chunk
        return True

    def _serve(self) -> None:
        try:
            conn, _addr = self._listener.accept()
        except OSError:
            return
        with conn:
            for _ in range(self.ok_responses):
                if not self._read_request(conn):
                    return
                self.requests += 1
                conn.sendall(self._RESPONSE)
            if not self._read_request(conn):
                return
            self.requests += 1
            if self.truncate_at:
                truncated = (
                    b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
                    b"Content-Length: 4096\r\nConnection: keep-alive\r\n\r\n"
                )
                conn.sendall(truncated + b"x" * self.truncate_at)
            # close mid-request / mid-response; then keep counting any
            # resubmission attempts on fresh connections.
        while True:
            try:
                self._listener.settimeout(1.0)
                conn, _addr = self._listener.accept()
            except (OSError, socket.timeout):
                return
            with conn:
                if self._read_request(conn):
                    self.requests += 1
                    conn.sendall(self._RESPONSE)

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass
        self._thread.join(timeout=5.0)


class TestClientReconnect:
    def test_idle_closed_socket_reconnects_transparently_once(self):
        # The server idle-closes keep-alive sockets after 0.3 s. A client
        # that pauses past that must not surface a transport error on its
        # next call: the request never reached the server, so exactly one
        # reconnect is safe — and the answer must be a normal solve.
        config = fast_config(idle_timeout=0.3)
        with BackgroundServer(config) as server:
            with SolverClient(server.host, server.port, timeout=10.0) as client:
                assert client.solve(SAT_SCRIPT).ok
                time.sleep(0.8)  # idle timeout fires; server closes socket
                reply = client.solve(SAT_SCRIPT)  # must not raise
                assert reply.ok and reply.status == "sat"

    def test_fresh_connection_failure_raises_without_retry(self):
        # A connect failure on a *fresh* connection is a real transport
        # error: no silent retry, a clean ServerConnectionError instead.
        with socket.create_server(("127.0.0.1", 0)) as listener:
            dead_port = listener.getsockname()[1]
        client = SolverClient("127.0.0.1", dead_port, timeout=2.0)
        with pytest.raises(ServerConnectionError):
            client.solve(SAT_SCRIPT)

    def test_idle_close_reconnect_never_resubmits_mid_request(self):
        # The reconnect must be driven by the idle-close signature only.
        # Here the scripted server completes one request (the connection
        # is now "reused"), then kills the socket *mid-response* on the
        # second — Content-Length promises 4096 bytes, 32 arrive. The
        # solve may already be executing server-side, so the client must
        # raise, not resubmit: the request counter stays at 2.
        scripted = _ScriptedHttpServer(ok_responses=1, truncate_at=32)
        try:
            client = SolverClient("127.0.0.1", scripted.port, timeout=5.0)
            assert client.solve(SAT_SCRIPT).http_status == 200
            with pytest.raises(ServerConnectionError):
                client.solve(SAT_SCRIPT)
            time.sleep(0.3)  # any illegal retry would land by now
            assert scripted.requests == 2, (
                f"client resubmitted a mid-request failure "
                f"({scripted.requests} requests seen)"
            )
            client.close()
        finally:
            scripted.close()

    def test_clean_idle_close_retries_exactly_once(self):
        # The legal flavour: one completed request, then the server closes
        # the socket cleanly *before* reading the next request. The client
        # reconnects once and the scripted server answers the retry — so
        # the total request count is 3 (ok, closed-on, retried).
        scripted = _ScriptedHttpServer(ok_responses=1, truncate_at=0)
        try:
            client = SolverClient("127.0.0.1", scripted.port, timeout=5.0)
            assert client.solve(SAT_SCRIPT).http_status == 200
            reply = client.solve(SAT_SCRIPT)  # close → one reconnect
            assert reply.http_status == 200
            assert scripted.requests == 3
            client.close()
        finally:
            scripted.close()


class TestGracefulDrain:
    def test_drain_completes_in_flight_solves(self):
        config = slow_config(0.8, workers=1, queue_limit=4, drain_timeout=10.0)
        server = BackgroundServer(config).start()
        try:
            results = {}

            def submit():
                with SolverClient(server.host, server.port, timeout=30.0) as client:
                    results["reply"] = client.solve(SAT_SCRIPT)

            thread = threading.Thread(target=submit)
            thread.start()
            time.sleep(0.3)  # the solve is now in flight
            server.stop(timeout=30.0)  # graceful drain
            thread.join(timeout=30.0)
        finally:
            server.stop()

        reply = results["reply"]
        assert reply.ok and reply.status == "sat"
        assert reply.model == {"x": "hi"}

    def test_draining_server_rejects_new_work_then_stops(self):
        config = slow_config(1.2, workers=1, queue_limit=4, drain_timeout=10.0)
        server = BackgroundServer(config).start()
        try:
            replies = {}

            def submit():
                with SolverClient(server.host, server.port, timeout=30.0) as client:
                    replies["first"] = client.solve(SAT_SCRIPT)

            thread = threading.Thread(target=submit)
            thread.start()
            time.sleep(0.3)

            stopper = threading.Thread(target=lambda: server.stop(timeout=30.0))
            stopper.start()
            time.sleep(0.2)  # drain has begun; listener is closed
            with pytest.raises(ServerConnectionError):
                SolverClient(server.host, server.port, timeout=2.0).solve(SAT_SCRIPT)
            stopper.join(timeout=30.0)
            thread.join(timeout=30.0)
        finally:
            server.stop()
        assert replies["first"].ok

    def test_exhausted_drain_timeout_cancels_with_typed_accounting(self):
        config = slow_config(3.0, workers=1, queue_limit=4, drain_timeout=0.2)
        server = BackgroundServer(config).start()
        metrics = None
        try:
            outcome = {}

            def submit():
                client = SolverClient(server.host, server.port, timeout=30.0)
                try:
                    outcome["reply"] = client.solve(SAT_SCRIPT)
                except ServerConnectionError as exc:
                    outcome["error"] = exc
                finally:
                    client.close()

            thread = threading.Thread(target=submit)
            thread.start()
            time.sleep(0.4)  # in flight
            started = time.monotonic()
            server.stop(timeout=30.0)
            stop_elapsed = time.monotonic() - started
            thread.join(timeout=30.0)
            metrics = server.metrics
        finally:
            server.stop()

        # Drain gave up after ~0.2 s instead of waiting out the 3 s solve.
        assert stop_elapsed < 2.0
        assert metrics.counter("server.cancelled").value == 1
        # The client saw a typed cancelled envelope (best-effort write) or,
        # at worst, a clean transport error — never a hang.
        if "reply" in outcome:
            assert outcome["reply"].error_type == "cancelled"
            assert outcome["reply"].http_status == 503
