"""Client-library tests: blocking + async flavours against a live server."""

from __future__ import annotations

import asyncio

import pytest

from repro.server.client import (
    AsyncSolverClient,
    ServerConnectionError,
    SolveReply,
    SolverClient,
)

from tests.server.conftest import PARSE_ERROR_SCRIPT, SAT_SCRIPT, UNSAT_SCRIPT

pytestmark = pytest.mark.server


class TestBlockingClient:
    def test_keep_alive_reuse(self, server):
        with SolverClient(server.host, server.port) as client:
            first = client.solve(SAT_SCRIPT)
            second = client.solve(SAT_SCRIPT)
            health = client.healthz()
        assert first.ok and second.ok
        assert health["http_status"] == 200

    def test_connection_error_is_typed(self):
        client = SolverClient("127.0.0.1", 1)  # nothing listens on port 1
        with pytest.raises(ServerConnectionError):
            client.solve(SAT_SCRIPT)

    def test_protocol_failures_are_data_not_exceptions(self, server):
        with SolverClient(server.host, server.port) as client:
            reply = client.solve(PARSE_ERROR_SCRIPT)
        assert isinstance(reply, SolveReply)
        assert not reply.ok and reply.error_type == "parse"

    def test_repr_forms(self, server):
        with SolverClient(server.host, server.port) as client:
            good = client.solve(SAT_SCRIPT)
            bad = client.solve(PARSE_ERROR_SCRIPT)
        assert "sat" in repr(good)
        assert "parse" in repr(bad)


class TestAsyncClient:
    def test_single_solve(self, server):
        client = AsyncSolverClient(server.host, server.port, timeout=30.0)
        reply = asyncio.run(client.solve(SAT_SCRIPT))
        assert reply.ok and reply.status == "sat"

    def test_concurrent_burst_all_answered(self, server):
        client = AsyncSolverClient(server.host, server.port, timeout=60.0)
        scripts = [SAT_SCRIPT, UNSAT_SCRIPT, PARSE_ERROR_SCRIPT] * 3

        async def burst():
            return await asyncio.gather(*(client.solve(s) for s in scripts))

        replies = asyncio.run(burst())
        assert len(replies) == 9
        statuses = [r.status if r.ok else r.error_type for r in replies]
        assert statuses.count("sat") == 3
        assert statuses.count("unsat") == 3
        assert statuses.count("parse") == 3

    def test_healthz_and_metrics(self, server):
        client = AsyncSolverClient(server.host, server.port, timeout=30.0)

        async def probe():
            return await client.healthz(), await client.metrics()

        health, metrics = asyncio.run(probe())
        assert health["status"] == "ok"
        assert "counters" in metrics and "server" in metrics

    def test_connection_error_is_typed(self):
        client = AsyncSolverClient("127.0.0.1", 1, timeout=2.0)
        with pytest.raises(ServerConnectionError):
            asyncio.run(client.solve(SAT_SCRIPT))
