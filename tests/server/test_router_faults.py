"""Router-tier fault injection (mirrors ``test_lifecycle.py`` one tier up):

* a shard killed mid-burst: every client gets either a served answer
  (fail-over) or a **typed** error envelope — never a hung client, never
  an untyped 500;
* the router drained under load: the per-shard accounting identity
  survives :func:`~repro.server.router.aggregate_metrics` summation;
* one shard wedged on a slow solve must not stall requests that hash to
  the healthy shards (shard isolation is the point of sharding).

Fault injectors: :class:`SlowSamplerFactory` (picklable sleep-before-
sample) and plain ``BackgroundServer.stop()`` as the shard killer.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.server.app import BackgroundServer
from repro.server.client import AsyncSolverClient, ServerConnectionError, SolverClient
from repro.server.protocol import http_status_for
from repro.server.router import (
    BackgroundRouter,
    RouterConfig,
    ShardSpec,
    aggregate_metrics,
    shard_index,
    shard_key,
)

from tests.server.conftest import SlowSamplerFactory, fast_config

pytestmark = pytest.mark.server

#: Error types a client may legitimately see through the router. Anything
#: outside this set (or a missing type on a failure) is an untyped error —
#: the failure mode these tests exist to rule out.
TYPED_ERRORS = {
    "parse",
    "bad_request",
    "too_large",
    "overloaded",
    "timeout",
    "draining",
    "cancelled",
    "internal",
    "upstream",
}


def script_for_shard(target: int, num_shards: int, tag: str = "s") -> str:
    """A sat script whose content hash routes to shard ``target``."""
    for i in range(512):
        script = (
            f'(declare-const {tag}{i} String)'
            f'(assert (= {tag}{i} "v{i}"))(check-sat)'
        )
        if shard_index(shard_key(script), num_shards) == target:
            return script
    raise AssertionError(f"no script found for shard {target}/{num_shards}")


def start_fleet(configs):
    """Background shard servers + a router over them (ephemeral ports)."""
    servers = [BackgroundServer(config).start() for config in configs]
    specs = [ShardSpec("127.0.0.1", server.port) for server in servers]
    router = BackgroundRouter(
        RouterConfig(port=0, shards=specs, health_interval=0.15)
    ).start()
    return servers, router


def assert_reply_is_typed(reply) -> None:
    if reply.ok:
        return
    assert reply.error is not None, f"untyped failure: {reply}"
    assert reply.error.type in TYPED_ERRORS, reply.error.type
    # The HTTP status must be the taxonomy's mapping, not a bare 500.
    assert reply.http_status == http_status_for(reply.error.type), reply


class TestShardKillMidBurst:
    def test_killed_shard_fails_over_or_types_the_error(self):
        # Two slow-ish shards; kill shard 0 while a burst is in flight.
        configs = [
            fast_config(workers=1, queue_limit=32,
                        sampler_factory=SlowSamplerFactory(0.15))
            for _ in range(2)
        ]
        servers, router = start_fleet(configs)
        try:
            victim_script = script_for_shard(0, 2, tag="a")
            client = AsyncSolverClient(router.host, router.port, timeout=30.0)

            async def burst():
                tasks = [
                    asyncio.create_task(client.solve(victim_script))
                    for _ in range(8)
                ]
                await asyncio.sleep(0.2)  # burst is in flight on shard 0
                await asyncio.get_running_loop().run_in_executor(
                    None, servers[0].stop
                )
                return await asyncio.gather(*tasks)

            started = time.monotonic()
            replies = asyncio.run(burst())
            elapsed = time.monotonic() - started

            # Nobody hung: the whole burst resolved promptly.
            assert elapsed < 20.0
            assert len(replies) == 8
            for reply in replies:
                assert_reply_is_typed(reply)

            # The surviving shard keeps serving the dead shard's keys.
            with SolverClient(router.host, router.port, timeout=30.0) as sync:
                after = sync.solve(victim_script)
            assert after.ok and after.status == "sat"
        finally:
            router.stop()
            for server in servers:
                server.stop()

    def test_dead_fleet_is_typed_upstream_not_a_hang(self):
        servers, router = start_fleet([fast_config(workers=1) for _ in range(2)])
        try:
            for server in servers:
                server.stop()
            time.sleep(0.4)  # let the prober notice
            with SolverClient(router.host, router.port, timeout=10.0) as client:
                started = time.monotonic()
                reply = client.solve(script_for_shard(0, 2))
                elapsed = time.monotonic() - started
            assert not reply.ok
            assert reply.error_type == "upstream"
            assert reply.http_status == 502
            assert elapsed < 8.0
        finally:
            router.stop()
            for server in servers:
                server.stop()


class TestRouterDrainUnderLoad:
    def test_drain_under_load_keeps_the_accounting_identity(self):
        configs = [
            fast_config(workers=1, queue_limit=32,
                        sampler_factory=SlowSamplerFactory(0.1))
            for _ in range(2)
        ]
        servers, router = start_fleet(configs)
        try:
            scripts = [script_for_shard(i % 2, 2, tag=f"d{i}x") for i in range(10)]
            outcomes = []

            def burst():
                async def run():
                    client = AsyncSolverClient(router.host, router.port, timeout=30.0)

                    async def one(script):
                        try:
                            return await client.solve(script)
                        except ServerConnectionError as exc:
                            return exc  # clean transport error, not a hang

                    return await asyncio.gather(*(one(s) for s in scripts))

                outcomes.extend(asyncio.run(run()))

            thread = threading.Thread(target=burst)
            thread.start()
            time.sleep(0.25)  # several solves in flight through the router
            router.stop(timeout=30.0)
            thread.join(timeout=30.0)
            assert not thread.is_alive(), "burst hung through router drain"
            assert len(outcomes) == len(scripts)
            for outcome in outcomes:
                if not isinstance(outcome, ServerConnectionError):
                    assert_reply_is_typed(outcome)

            # The shards survive the router; their summed metrics must
            # still satisfy the per-shard identity exactly.
            payloads = []
            for server in servers:
                with SolverClient(server.host, server.port, timeout=10.0) as c:
                    payloads.append(c.metrics())
            rollup = aggregate_metrics(payloads)
            counters = rollup["counters"]
            rejected = sum(
                v for k, v in counters.items() if k.startswith("server.rejected.")
            )
            assert counters.get("server.requests", 0) >= 1
            assert counters["server.requests"] == (
                counters.get("server.completed", 0)
                + rejected
                + counters.get("server.timeout", 0)
                + counters.get("server.cancelled", 0)
                + counters.get("server.internal", 0)
            ), counters
        finally:
            router.stop()
            for server in servers:
                server.stop()

    def test_draining_router_rejects_with_typed_draining(self):
        servers, router = start_fleet([fast_config(workers=1)])
        try:
            # Force the state check without racing the listener close: the
            # router object is reachable through the background wrapper.
            assert router.router is not None
            with SolverClient(router.host, router.port, timeout=10.0) as client:
                assert client.solve(script_for_shard(0, 1)).ok
            router.stop(timeout=30.0)
            with pytest.raises(ServerConnectionError):
                SolverClient(router.host, router.port, timeout=2.0).solve(
                    script_for_shard(0, 1)
                )
        finally:
            router.stop()
            for server in servers:
                server.stop()


class TestWedgedShardIsolation:
    def test_wedged_shard_does_not_stall_healthy_shards(self):
        # Shard 0 wedges on a 2.5 s solve (one worker, so it is fully
        # occupied); requests hashing to shard 1 must keep completing in
        # ordinary time while shard 0 is stuck.
        wedge_delay = 2.5
        configs = [
            fast_config(workers=1, queue_limit=8,
                        sampler_factory=SlowSamplerFactory(wedge_delay)),
            fast_config(workers=1, queue_limit=8),
        ]
        servers, router = start_fleet(configs)
        try:
            wedge_script = script_for_shard(0, 2, tag="w")
            healthy_script = script_for_shard(1, 2, tag="h")

            wedge_result = {}

            def wedge():
                with SolverClient(router.host, router.port, timeout=60.0) as c:
                    wedge_result["reply"] = c.solve(wedge_script)

            wedger = threading.Thread(target=wedge)
            wedger.start()
            time.sleep(0.3)  # shard 0 is now wedged mid-solve

            with SolverClient(router.host, router.port, timeout=30.0) as client:
                started = time.monotonic()
                replies = [client.solve(healthy_script) for _ in range(3)]
                elapsed = time.monotonic() - started

            assert all(r.ok and r.status == "sat" for r in replies), replies
            # The healthy shard answered all three well inside the wedge
            # window — it never waited behind shard 0's solve.
            assert elapsed < wedge_delay, (
                f"healthy shard stalled {elapsed:.2f}s behind the wedged one"
            )

            wedger.join(timeout=30.0)
            assert wedge_result["reply"].ok  # the wedge itself completes
        finally:
            router.stop()
            for server in servers:
                server.stop()
