"""Shared fixtures for the serving-layer tests.

Mirrors the ``tests/service/`` fault-injection style: deterministic fast
solver settings, a ``SlowSampler`` whose delay is the injection point for
queue/deadline/drain edge cases, and small helper scripts.

The ``backend="process"`` tests need **picklable** fault injectors: the
spawn start method pickles every Process argument, so the lambda-wired
``SlowSampler`` factories the thread-backend tests use cannot cross the
process boundary. :class:`SlowSamplerFactory` and
:class:`CrashingSamplerFactory` are their module-level, picklable
counterparts.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.server.app import BackgroundServer, ServerConfig

#: Deterministic, fast solver settings shared by every server test.
FAST_SOLVER = dict(num_reads=24, sampler_params={"num_sweeps": 200}, seed=7)

SAT_SCRIPT = '(declare-const x String)(assert (= x "hi"))(check-sat)'
UNSAT_SCRIPT = '(assert (= "a" "b"))(check-sat)'
PARSE_ERROR_SCRIPT = '(assert (= x "unterminated'


class SlowSampler(SimulatedAnnealingSampler):
    """A sampler that sleeps before sampling — the lifecycle fault injector."""

    def __init__(self, delay: float, **kwargs) -> None:
        super().__init__(**kwargs)
        self.delay = delay

    def sample_model(self, model, **params):
        time.sleep(self.delay)
        return super().sample_model(model, **params)


class SlowSamplerFactory:
    """Picklable ``sampler_factory`` building :class:`SlowSampler` — the
    process-backend (and router fault-test) flavour of the lambda wiring."""

    def __init__(self, delay: float) -> None:
        self.delay = delay

    def __call__(self) -> SlowSampler:
        return SlowSampler(self.delay)


class _CrashingSampler(SimulatedAnnealingSampler):
    """Kills its own process on first sample — simulates a native-code
    crash (segfault) inside a solver worker, unreachable via exceptions."""

    def sample_model(self, model, **params):
        os._exit(139)


class CrashingSamplerFactory:
    """Picklable factory for :class:`_CrashingSampler`."""

    def __call__(self) -> _CrashingSampler:
        return _CrashingSampler()


def fast_config(**overrides) -> ServerConfig:
    """A deterministic ephemeral-port config; overrides win."""
    settings = dict(
        port=0,
        workers=2,
        queue_limit=16,
        deadline_ms=30000.0,
        drain_timeout=10.0,
        **FAST_SOLVER,
    )
    settings.update(overrides)
    return ServerConfig(**settings)


@pytest.fixture
def server():
    """A running background server with the fast deterministic config."""
    with BackgroundServer(fast_config()) as handle:
        yield handle
