"""HTTP framing tests: size gate at the socket layer, malformed framing."""

from __future__ import annotations

import asyncio

import pytest

from repro.server.httpio import (
    HttpRequest,
    ProtocolError,
    RequestTooLarge,
    read_request,
    read_response,
    render_request,
    render_response,
)

pytestmark = pytest.mark.server


def _read(raw: bytes, max_request_bytes: int = 1024):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_request_bytes)

    return asyncio.run(run())


class TestReadRequest:
    def test_post_with_content_length(self):
        raw = render_request("POST", "/solve", b"(check-sat)")
        request = _read(raw)
        assert isinstance(request, HttpRequest)
        assert request.method == "POST"
        assert request.path == "/solve"
        assert request.body == b"(check-sat)"
        assert request.keep_alive

    def test_get_without_body(self):
        request = _read(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.body == b""

    def test_query_string_stripped_from_path(self):
        request = _read(b"GET /metrics?pretty=1 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.path == "/metrics"

    def test_clean_eof_returns_none(self):
        assert _read(b"") is None

    def test_declared_oversize_rejected_before_body_read(self):
        head = (
            b"POST /solve HTTP/1.1\r\nHost: x\r\nContent-Length: 5000\r\n\r\n"
        )
        # Only the head is fed: the reject must not wait for body bytes.
        with pytest.raises(RequestTooLarge) as info:
            _read(head, max_request_bytes=100)
        assert info.value.declared == 5000
        assert info.value.limit == 100

    def test_undeclared_oversize_rejected_at_cap(self):
        body = b"x" * 300
        raw = b"POST /solve HTTP/1.1\r\nHost: x\r\n\r\n" + body
        with pytest.raises(RequestTooLarge):
            _read(raw, max_request_bytes=100)

    def test_bad_content_length_rejected(self):
        raw = b"POST /solve HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
        with pytest.raises(ProtocolError):
            _read(raw)

    def test_malformed_request_line_rejected(self):
        with pytest.raises(ProtocolError):
            _read(b"NOT-HTTP\r\n\r\n")

    def test_chunked_rejected(self):
        raw = b"POST /solve HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(ProtocolError):
            _read(raw)

    def test_connection_close_header(self):
        raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        assert _read(raw).keep_alive is False

    def test_http10_defaults_to_close(self):
        # HTTP/1.0's default is close; only an explicit opt-in keeps the
        # connection open.
        raw = b"GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n"
        request = _read(raw)
        assert request.version == "HTTP/1.0"
        assert request.keep_alive is False

    def test_http10_explicit_keep_alive_honoured(self):
        raw = b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        assert _read(raw).keep_alive is True

    def test_http11_defaults_to_keep_alive(self):
        request = _read(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.version == "HTTP/1.1"
        assert request.keep_alive is True


class TestResponses:
    def test_render_and_read_round_trip(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(render_response(200, b'{"ok":true}'))
            reader.feed_eof()
            return await read_response(reader)

        status, headers, body = asyncio.run(run())
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert body == b'{"ok":true}'

    def test_read_response_eof_raises(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            return await read_response(reader)

        with pytest.raises(ProtocolError):
            asyncio.run(run())
