"""Unit tests for the bounded admission queue (no sockets involved)."""

from __future__ import annotations

import asyncio

import pytest

from repro.server.admission import (
    AdmissionQueue,
    DeadlineExceededError,
    DrainingError,
    OverloadedError,
)
from repro.service.metrics import MetricsRegistry

pytestmark = pytest.mark.server


def run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_admit_within_limit(self):
        async def scenario():
            queue = AdmissionQueue(queue_limit=2, workers=1)
            queue.try_admit()
            queue.try_admit()
            assert queue.depth == 2

        run(scenario())

    def test_full_queue_rejects_immediately(self):
        async def scenario():
            metrics = MetricsRegistry()
            queue = AdmissionQueue(queue_limit=1, workers=1, metrics=metrics)
            queue.try_admit()
            await queue.acquire_slot(1.0)  # occupy the only worker
            queue.try_admit()  # fills the single queue slot
            with pytest.raises(OverloadedError) as info:
                queue.try_admit()
            assert info.value.depth == 1 and info.value.limit == 1
            assert metrics.counter("server.rejected.overloaded").value == 1
            assert metrics.counter("server.admitted").value == 2
            queue.release_slot()

        run(scenario())

    def test_combined_bound_caps_total_admissions(self):
        # workers + queue_limit = 3 is the hard cap on concurrently
        # admitted requests, regardless of how they split between the
        # slot and the wait queue.
        async def scenario():
            queue = AdmissionQueue(queue_limit=2, workers=1)
            queue.try_admit()
            queue.try_admit()
            queue.try_admit()
            with pytest.raises(OverloadedError):
                queue.try_admit()

        run(scenario())

    def test_zero_limit_admits_free_workers_rejects_waiters(self):
        # queue_limit=0 means "no waiting room", not "no service": an idle
        # server still serves up to `workers` concurrent requests.
        async def scenario():
            queue = AdmissionQueue(queue_limit=0, workers=1)
            queue.try_admit()  # idle server: admitted straight to the slot
            await queue.acquire_slot(1.0)
            with pytest.raises(OverloadedError):
                queue.try_admit()  # worker busy, nowhere to wait
            queue.release_slot()
            queue.try_admit()  # capacity freed: admitted again

        run(scenario())

    def test_draining_rejects_with_typed_error(self):
        async def scenario():
            metrics = MetricsRegistry()
            queue = AdmissionQueue(queue_limit=4, workers=1, metrics=metrics)
            queue.begin_drain()
            with pytest.raises(DrainingError):
                queue.try_admit()
            assert metrics.counter("server.rejected.draining").value == 1

        run(scenario())

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AdmissionQueue(queue_limit=-1, workers=1)
        with pytest.raises(ValueError):
            AdmissionQueue(queue_limit=1, workers=0)


class TestSlots:
    def test_acquire_transitions_waiting_to_in_flight(self):
        async def scenario():
            queue = AdmissionQueue(queue_limit=4, workers=2)
            queue.try_admit()
            await queue.acquire_slot(1.0)
            assert (queue.depth, queue.in_flight) == (0, 1)
            queue.release_slot()
            assert (queue.depth, queue.in_flight) == (0, 0)

        run(scenario())

    def test_expired_deadline_while_queued_raises_timeout(self):
        async def scenario():
            metrics = MetricsRegistry()
            queue = AdmissionQueue(queue_limit=4, workers=1, metrics=metrics)
            queue.try_admit()
            await queue.acquire_slot(1.0)  # occupy the only worker
            queue.try_admit()
            with pytest.raises(DeadlineExceededError) as info:
                await queue.acquire_slot(0.02)
            assert info.value.phase == "queued"
            # The timed-out request left the queue; the slot holder remains.
            assert (queue.depth, queue.in_flight) == (0, 1)
            assert metrics.counter("server.timeout").value == 1
            assert metrics.counter("server.timeout.queued").value == 1
            queue.release_slot()

        run(scenario())

    def test_already_expired_deadline_fails_fast(self):
        async def scenario():
            queue = AdmissionQueue(queue_limit=4, workers=1)
            queue.try_admit()
            with pytest.raises(DeadlineExceededError):
                await queue.acquire_slot(-0.5)

        run(scenario())

    def test_released_slot_unblocks_waiter(self):
        async def scenario():
            queue = AdmissionQueue(queue_limit=4, workers=1)
            queue.try_admit()
            await queue.acquire_slot(1.0)
            queue.try_admit()
            waiter = asyncio.create_task(queue.acquire_slot(5.0))
            await asyncio.sleep(0.01)
            assert not waiter.done()
            queue.release_slot()
            await waiter
            assert queue.in_flight == 1
            queue.release_slot()

        run(scenario())


class TestDrain:
    def test_wait_idle_immediate_when_empty(self):
        async def scenario():
            queue = AdmissionQueue(queue_limit=4, workers=1)
            assert await queue.wait_idle(timeout=0.05) is True

        run(scenario())

    def test_wait_idle_times_out_with_in_flight_work(self):
        async def scenario():
            queue = AdmissionQueue(queue_limit=4, workers=1)
            queue.try_admit()
            await queue.acquire_slot(1.0)
            assert await queue.wait_idle(timeout=0.05) is False
            queue.release_slot()
            assert await queue.wait_idle(timeout=0.5) is True

        run(scenario())

    def test_drain_lets_queued_work_finish(self):
        async def scenario():
            queue = AdmissionQueue(queue_limit=4, workers=1)
            queue.try_admit()
            await queue.acquire_slot(1.0)
            queue.begin_drain()
            # Existing work continues; only new admissions are refused.
            assert queue.in_flight == 1
            with pytest.raises(DrainingError):
                queue.try_admit()
            queue.release_slot()
            assert await queue.wait_idle(timeout=0.5) is True

        run(scenario())
