"""Server micro-batching: config gating, fused solves, counters."""

import threading

import pytest

from repro.server.app import BackgroundServer, ServerConfig
from repro.server.client import SolverClient
from repro.server.workers import SolverWorkerPool

from .conftest import FAST_SOLVER, SAT_SCRIPT, UNSAT_SCRIPT


class TestConfigValidation:
    def test_batching_requires_thread_backend(self):
        with pytest.raises(ValueError, match="thread"):
            ServerConfig(backend="process", batch_window_ms=5.0)

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError, match="batch_window_ms"):
            ServerConfig(batch_window_ms=-1.0)

    def test_batch_max_validated(self):
        with pytest.raises(ValueError, match="batch_max"):
            ServerConfig(batch_window_ms=5.0, batch_max=0)
        with pytest.raises(ValueError, match="batch_max"):
            SolverWorkerPool(batch_max=0)

    def test_zero_window_means_disabled(self):
        config = ServerConfig(batch_window_ms=0.0)
        assert config.batch_window_ms == 0.0


class TestMicroBatching:
    def test_concurrent_requests_batched(self):
        config = ServerConfig(
            port=0,
            workers=8,
            queue_limit=16,
            batch_window_ms=60.0,
            batch_max=8,
            **FAST_SOLVER,
        )
        scripts = [
            f'(declare-const x String)(assert (= x "b{i}"))(check-sat)'
            for i in range(6)
        ]
        replies = [None] * len(scripts)
        with BackgroundServer(config) as server:
            def hit(i):
                with SolverClient(server.host, server.port) as client:
                    replies[i] = client.solve(scripts[i])

            threads = [
                threading.Thread(target=hit, args=(i,)) for i in range(len(scripts))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with SolverClient(server.host, server.port) as client:
                metrics = client.metrics()

        for i, reply in enumerate(replies):
            assert reply.status == "sat"
            assert reply.model == {"x": f"b{i}"}
        counters = metrics["counters"]
        assert counters["server.batches"] >= 1
        assert counters["server.batched_solves"] == len(scripts)
        # Fewer fused kernel dispatches than requests: batching engaged.
        assert counters["server.batches"] < len(scripts)

    def test_unsat_and_sat_share_a_batch(self):
        config = ServerConfig(
            port=0, workers=4, batch_window_ms=40.0, batch_max=4, **FAST_SOLVER
        )
        replies = {}
        with BackgroundServer(config) as server:
            def hit(name, script):
                with SolverClient(server.host, server.port) as client:
                    replies[name] = client.solve(script)

            threads = [
                threading.Thread(target=hit, args=("sat", SAT_SCRIPT)),
                threading.Thread(target=hit, args=("unsat", UNSAT_SCRIPT)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert replies["sat"].status == "sat"
        assert replies["unsat"].status == "unsat"

    def test_single_request_still_served(self):
        # A lone request pays at most one window of extra latency and is
        # solved as a batch of one.
        config = ServerConfig(
            port=0, workers=2, batch_window_ms=10.0, batch_max=4, **FAST_SOLVER
        )
        with BackgroundServer(config) as server:
            with SolverClient(server.host, server.port) as client:
                reply = client.solve(SAT_SCRIPT)
                metrics = client.metrics()
        assert reply.status == "sat"
        assert metrics["counters"]["server.batched_solves"] == 1

    def test_batching_disabled_by_default(self):
        config = ServerConfig(port=0, workers=2, **FAST_SOLVER)
        with BackgroundServer(config) as server:
            with SolverClient(server.host, server.port) as client:
                reply = client.solve(SAT_SCRIPT)
                metrics = client.metrics()
        assert reply.status == "sat"
        assert "server.batches" not in metrics["counters"]

    def test_shutdown_with_batching_enabled_is_clean(self):
        config = ServerConfig(
            port=0, workers=2, batch_window_ms=25.0, batch_max=4, **FAST_SOLVER
        )
        server = BackgroundServer(config).start()
        try:
            with SolverClient(server.host, server.port) as client:
                assert client.solve(SAT_SCRIPT).status == "sat"
        finally:
            server.stop()
