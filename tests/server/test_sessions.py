"""Fault-path tests for the sticky ``/session/*`` endpoints.

Mirrors ``test_lifecycle.py`` for the session tier: every failure mode a
client can hit — over-pop, unknown/expired/duplicate ids, the session
limit, deadline-exceeded checks, drain-window ops — must come back as a
**typed** error envelope, and the ``server.requests`` accounting
identity must hold across the whole mix. Expiry is additionally pinned
solve-safe: a sweep can never reap a session whose check is running on
the executor.

The router tier rides along: sessions are server-side state, so the
session id must pin its shard (no fail-over — an op re-routed elsewhere
would silently run against a fresh empty session).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.server.app import BackgroundServer
from repro.server.client import SolverClient
from repro.server.router import (
    BackgroundRouter,
    RouterConfig,
    ShardSpec,
    session_shard_key,
    shard_index,
)

from tests.server.conftest import SlowSamplerFactory, fast_config

pytestmark = pytest.mark.server

LEN2 = '(declare-const x String)(assert (= (str.len x) 2))'


def open_session(client, session_id=None) -> str:
    reply = client.session_open(session_id=session_id)
    assert reply.ok, reply
    return reply.envelope.request_id


class TestHappyPath:
    def test_full_session_conversation(self, server):
        with SolverClient(server.host, server.port) as client:
            sid = open_session(client)
            assert client.session_assert(sid, LEN2).ok
            assert client.session_check(sid).status == "sat"
            assert client.session_push(sid).ok
            assert client.session_assert(
                sid, '(assert (= x "aa"))(assert (= x "bb"))'
            ).ok
            assert client.session_check(sid).status != "sat"
            assert client.session_pop(sid).ok
            # Re-checking the base frame is a memo hit server-side.
            recheck = client.session_check(sid)
            assert recheck.status == "sat"
            assert recheck.cache_hit
            closed = client.session_close(sid)
            assert closed.ok
            assert "depth=0" in closed.envelope.reason


class TestTypedRejections:
    def test_pop_past_base_frame_is_bad_request(self, server):
        with SolverClient(server.host, server.port) as client:
            sid = open_session(client)
            assert client.session_push(sid).ok
            reply = client.session_pop(sid, levels=2)
            assert reply.error_type == "bad_request"
            assert "assertion-stack" in reply.error.message
            # The failed pop consumed nothing: one pop still works.
            assert client.session_pop(sid).ok

    def test_unknown_session_is_bad_request(self, server):
        with SolverClient(server.host, server.port) as client:
            reply = client.session_check("never-opened")
            assert reply.error_type == "bad_request"
            assert "unknown session" in reply.error.message

    def test_missing_session_id_is_bad_request(self, server):
        with SolverClient(server.host, server.port) as client:
            reply = client.session_check("")
            assert reply.error_type == "bad_request"

    def test_duplicate_open_id_is_bad_request(self, server):
        with SolverClient(server.host, server.port) as client:
            open_session(client, session_id="dup")
            reply = client.session_open(session_id="dup")
            assert reply.error_type == "bad_request"
            assert "already open" in reply.error.message

    def test_closed_session_reports_closed_not_unknown(self, server):
        with SolverClient(server.host, server.port) as client:
            sid = open_session(client)
            client.session_close(sid)
            reply = client.session_push(sid)
            assert reply.error_type == "bad_request"
            assert "closed" in reply.error.message

    def test_session_limit_is_overloaded(self):
        with BackgroundServer(fast_config(max_sessions=1)) as server:
            with SolverClient(server.host, server.port) as client:
                open_session(client, session_id="only")
                reply = client.session_open(session_id="second")
                assert reply.error_type == "overloaded"
                assert "session limit" in reply.error.message
                # Closing frees the slot.
                client.session_close("only")
                assert client.session_open(session_id="second").ok

    def test_bad_assert_fragment_is_parse_error(self, server):
        with SolverClient(server.host, server.port) as client:
            sid = open_session(client)
            reply = client.session_assert(sid, '(assert (= x "unterminated')
            assert reply.error_type == "parse"


class TestExpiry:
    def test_idle_session_expires_with_precise_error(self):
        config = fast_config(session_idle_timeout=0.2)
        with BackgroundServer(config) as server:
            with SolverClient(server.host, server.port) as client:
                sid = open_session(client)
                time.sleep(0.45)
                reply = client.session_push(sid)  # get() sweeps first
                assert reply.error_type == "bad_request"
                assert "expired" in reply.error.message
                metrics = client.metrics()
                assert metrics["sessions"]["expired"] == 1
                assert metrics["sessions"]["active"] == 0
                assert metrics["counters"]["server.sessions.expired"] == 1

    def test_sweep_never_reaps_a_session_mid_solve(self):
        # The check outlives the idle timeout; concurrent traffic keeps
        # sweeping the whole time — the locked session must survive.
        config = fast_config(
            session_idle_timeout=0.3,
            sampler_factory=SlowSamplerFactory(1.2),
        )
        with BackgroundServer(config) as server:
            with SolverClient(server.host, server.port) as client:
                sid = open_session(client)
                assert client.session_assert(sid, LEN2).ok
                outcome = {}

                def check():
                    with SolverClient(server.host, server.port, timeout=30.0) as c:
                        outcome["reply"] = c.session_check(sid)

                thread = threading.Thread(target=check)
                thread.start()
                time.sleep(0.8)  # idle_for > timeout, but the lock is held
                # Any manager touch-point sweeps; open() is one.
                open_session(client, session_id="sweeper")
                assert client.metrics()["sessions"]["expired"] == 0
                thread.join(timeout=30.0)
                assert outcome["reply"].status == "sat"
                # The finished check touched the clock: still usable.
                assert client.session_push(sid).ok


class TestDeadlines:
    def test_check_deadline_exceeded_mid_solve_is_timeout(self):
        config = fast_config(sampler_factory=SlowSamplerFactory(1.5))
        with BackgroundServer(config) as server:
            with SolverClient(server.host, server.port, timeout=30.0) as client:
                sid = open_session(client)
                assert client.session_assert(sid, LEN2).ok
                reply = client.session_check(sid, deadline_ms=300.0)
                assert reply.error_type == "timeout"
                assert reply.envelope.status == "timeout"
                counters = client.metrics()["counters"]
                assert counters["server.timeout"] == 1
                assert counters["server.timeout.solving"] == 1


class TestDrain:
    def test_close_allowed_but_mutations_rejected_during_drain(self):
        config = fast_config(
            sampler_factory=SlowSamplerFactory(1.0), drain_timeout=30.0
        )
        server = BackgroundServer(config).start()
        stopper = None
        try:
            client = SolverClient(server.host, server.port, timeout=30.0)
            client.healthz()  # establish the keep-alive connection now:
            # the listener closes at drain start, so every drain-window
            # request below must ride this socket.
            sid = open_session(client, session_id="drainee")
            assert client.session_assert(sid, LEN2).ok

            checked = {}

            def slow_check():
                with SolverClient(server.host, server.port, timeout=30.0) as c:
                    checked["reply"] = c.session_check(sid)

            busy = threading.Thread(target=slow_check)
            busy.start()
            time.sleep(0.3)  # the check is on the executor; drain now
            stopper = threading.Thread(target=lambda: server.stop(timeout=30.0))
            stopper.start()
            time.sleep(0.3)

            assert client.session_open(session_id="latecomer").error_type == (
                "draining"
            )
            assert client.session_push(sid).error_type == "draining"
            closed = client.session_close(sid)
            assert closed.ok, closed
            busy.join(timeout=30.0)
            assert checked["reply"].status == "sat"
            client.close()
        finally:
            if stopper is not None:
                stopper.join(timeout=30.0)
            server.stop()


class TestAccounting:
    def test_session_traffic_keeps_the_accounting_identity(self, server):
        with SolverClient(server.host, server.port) as client:
            sid = open_session(client)                 # completed
            client.session_assert(sid, LEN2)           # completed
            client.session_check(sid)                  # completed
            client.session_pop(sid)                    # rejected.bad_request
            client.session_open(session_id=sid)        # rejected.bad_request
            client.session_check("ghost")              # rejected.bad_request
            client.session_assert(sid, "(oops")        # rejected.parse
            client.session_close(sid)                  # completed
            counters = client.metrics()["counters"]
            rejected = sum(
                v for k, v in counters.items()
                if k.startswith("server.rejected.")
            )
            assert counters["server.requests"] == 8
            assert counters["server.requests"] == (
                counters.get("server.completed", 0)
                + rejected
                + counters.get("server.timeout", 0)
                + counters.get("server.cancelled", 0)
                + counters.get("server.internal", 0)
            )

    def test_sessions_snapshot_counts_lifecycle(self, server):
        with SolverClient(server.host, server.port) as client:
            first = open_session(client)
            open_session(client)
            client.session_close(first)
            snapshot = client.metrics()["sessions"]
            assert snapshot["opened"] == 2
            assert snapshot["closed"] == 1
            assert snapshot["active"] == 1
            assert snapshot["busy"] == 0


class TestRouterStickiness:
    def test_session_pins_its_shard_and_never_fails_over(self):
        servers = [BackgroundServer(fast_config()).start() for _ in range(2)]
        router = BackgroundRouter(
            RouterConfig(
                port=0,
                shards=[ShardSpec("127.0.0.1", s.port) for s in servers],
                health_interval=0.15,
            )
        ).start()
        try:
            # An id that hashes to shard 0 keeps the test deterministic.
            sid = next(
                f"pin{i}" for i in range(512)
                if shard_index(session_shard_key(f"pin{i}"), 2) == 0
            )
            with SolverClient(router.host, router.port, timeout=30.0) as client:
                assert client.session_open(session_id=sid).ok
                assert client.session_assert(sid, LEN2).ok
                assert client.session_check(sid).status == "sat"

                # Only the owning shard holds the session state.
                actives = []
                for server in servers:
                    with SolverClient(server.host, server.port) as direct:
                        actives.append(direct.metrics()["sessions"]["active"])
                assert actives == [1, 0]

                # Owning shard down: typed upstream error, no fail-over
                # (shard 1 must never grow a ghost session).
                servers[0].stop()
                reply = client.session_check(sid)
                assert reply.error_type == "upstream"
                with SolverClient(servers[1].host, servers[1].port) as direct:
                    assert direct.metrics()["sessions"]["active"] == 0
        finally:
            router.stop()
            for server in servers:
                server.stop()

    def test_session_shard_key_is_stable(self):
        import hashlib

        assert session_shard_key("abc") == hashlib.sha256(b"abc").hexdigest()
        assert session_shard_key("abc") == session_shard_key("abc")
