"""End-to-end server tests over real sockets (ephemeral ports).

The headline contract: an answer served over the wire is **identical** to
a direct ``QuantumSMTSolver.check_sat()`` at the same seed, and every
submitted request is accounted for in ``/metrics``.
"""

from __future__ import annotations

import json

import pytest

from repro.server.app import BackgroundServer
from repro.server.client import SolverClient
from repro.smt.generator import InstanceGenerator
from repro.smt.solver import QuantumSMTSolver

from tests.server.conftest import (
    FAST_SOLVER,
    PARSE_ERROR_SCRIPT,
    SAT_SCRIPT,
    UNSAT_SCRIPT,
    fast_config,
)

pytestmark = pytest.mark.server


class TestSolveEndpoint:
    def test_sat_solve_over_the_wire(self, server):
        with SolverClient(server.host, server.port) as client:
            reply = client.solve(SAT_SCRIPT)
        assert reply.ok
        assert reply.status == "sat"
        assert reply.model == {"x": "hi"}
        assert reply.http_status == 200
        assert reply.envelope.solve_ms > 0.0

    def test_unsat_solve_over_the_wire(self, server):
        with SolverClient(server.host, server.port) as client:
            reply = client.solve(UNSAT_SCRIPT)
        assert reply.ok
        assert reply.status == "unsat"
        assert reply.model == {}
        assert "ground assertion false" in reply.envelope.reason

    def test_server_matches_direct_check_sat_at_same_seed(self, server):
        # A §4 constraint whose witness is *not* pinned by the assertions:
        # agreement of the filler characters proves the served solve runs
        # the identical seeded pipeline, not just the same formula.
        generator = InstanceGenerator(seed=3, ops="all")
        scripts = [generator.generate().script for _ in range(3)]

        direct_solver_kwargs = dict(FAST_SOLVER)
        with SolverClient(server.host, server.port) as client:
            for script in scripts:
                reply = client.solve(script)
                direct = QuantumSMTSolver.from_script_text(
                    script, **direct_solver_kwargs
                ).check_sat()
                assert reply.status == str(direct.status)
                assert reply.model == direct.model

    def test_repeat_solve_hits_compile_cache(self, server):
        with SolverClient(server.host, server.port) as client:
            first = client.solve(SAT_SCRIPT)
            second = client.solve(SAT_SCRIPT)
        assert first.cache_hit is False
        assert second.cache_hit is True
        assert first.model == second.model

    def test_request_id_echoed(self, server):
        with SolverClient(server.host, server.port) as client:
            reply = client.solve(SAT_SCRIPT, request_id="req-42")
        assert reply.envelope.request_id == "req-42"

    def test_per_request_deadline_accepted(self, server):
        with SolverClient(server.host, server.port) as client:
            reply = client.solve(SAT_SCRIPT, deadline_ms=20000)
        assert reply.ok


class TestErrorEnvelopes:
    def test_parse_error_envelope_with_location(self, server):
        with SolverClient(server.host, server.port) as client:
            reply = client.solve(PARSE_ERROR_SCRIPT)
        assert not reply.ok
        assert reply.error_type == "parse"
        assert reply.http_status == 400
        assert reply.error.line == 1
        assert reply.error.column == 14
        assert "unterminated" in reply.error.message
        # The server survived: next request on the same client works.
        with SolverClient(server.host, server.port) as client:
            assert client.solve(SAT_SCRIPT).ok

    def test_garbage_script_is_parse_not_crash(self, server):
        with SolverClient(server.host, server.port) as client:
            reply = client.solve(")))) garbage ((((")
        assert not reply.ok
        assert reply.error_type == "parse"

    def test_bad_json_body_is_bad_request(self, server):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        conn.request(
            "POST", "/solve", body=b"{broken",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert payload["error"]["type"] == "bad_request"

    def test_unknown_route_404(self, server):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        conn.request("GET", "/nope")
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 404
        assert payload["error"]["type"] == "not_found"

    def test_get_on_solve_is_405(self, server):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        conn.request("GET", "/solve")
        response = conn.getresponse()
        response.read()
        conn.close()
        assert response.status == 405


class TestRequestSizeLimit:
    def test_oversized_payload_rejected_with_typed_envelope(self):
        with BackgroundServer(fast_config(max_request_bytes=256)) as server:
            with SolverClient(server.host, server.port) as client:
                reply = client.solve("(check-sat)" + "; pad\n" * 200)
                assert not reply.ok
                assert reply.error_type == "too_large"
                assert reply.http_status == 413
            # Server is still healthy and solving afterwards.
            with SolverClient(server.host, server.port) as client:
                assert client.healthz()["http_status"] == 200
                assert client.solve(SAT_SCRIPT).ok

    def test_size_rejection_counted_in_metrics(self):
        with BackgroundServer(fast_config(max_request_bytes=64)) as server:
            with SolverClient(server.host, server.port) as client:
                client.solve("x" * 1000)
                metrics = client.metrics()
        counters = metrics["counters"]
        assert counters["server.rejected.too_large"] == 1
        assert counters["server.requests"] == 1


def _assert_recursively_sorted(payload, path="$"):
    if isinstance(payload, dict):
        keys = list(payload)
        assert keys == sorted(keys), f"unsorted keys at {path}: {keys}"
        for key, value in payload.items():
            _assert_recursively_sorted(value, f"{path}.{key}")
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            _assert_recursively_sorted(value, f"{path}[{index}]")


class TestObservability:
    def test_healthz_green_while_serving(self, server):
        with SolverClient(server.host, server.port) as client:
            health = client.healthz()
        assert health["http_status"] == 200
        assert health["status"] == "ok"
        assert health["state"] == "serving"
        assert health["queue_depth"] == 0
        assert health["in_flight"] == 0

    def test_metrics_output_is_deterministic_sorted_json(self, server):
        with SolverClient(server.host, server.port) as client:
            client.solve(SAT_SCRIPT)
            text = client.metrics_text()
        payload = json.loads(text)
        _assert_recursively_sorted(payload)
        # Deterministic keying: re-serializing with sorted keys is identity.
        assert text == json.dumps(payload, sort_keys=True)

    def test_metrics_account_for_every_request(self):
        with BackgroundServer(fast_config()) as server:
            with SolverClient(server.host, server.port) as client:
                client.solve(SAT_SCRIPT)
                client.solve(UNSAT_SCRIPT)
                client.solve(PARSE_ERROR_SCRIPT)
                client.solve(SAT_SCRIPT)  # cache hit
                metrics = client.metrics()
        counters = metrics["counters"]
        submitted = counters["server.requests"]
        completed = counters.get("server.completed", 0)
        rejected = sum(
            value
            for name, value in counters.items()
            if name.startswith("server.rejected.")
        )
        timeouts = counters.get("server.timeout", 0)
        cancelled = counters.get("server.cancelled", 0)
        internal = counters.get("server.internal", 0)
        assert submitted == 4
        assert completed == 3
        assert rejected == 1
        assert submitted == completed + rejected + timeouts + cancelled + internal

    def test_metrics_include_queue_gauges_and_cache(self, server):
        with SolverClient(server.host, server.port) as client:
            client.solve(SAT_SCRIPT)
            metrics = client.metrics()
        assert metrics["server"]["queue_limit"] == 16
        assert metrics["server"]["workers"] == 2
        assert metrics["server"]["state"] == "serving"
        assert metrics["cache"]["misses"] >= 1
        assert "server.solve_wall" in metrics["histograms"]
