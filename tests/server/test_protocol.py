"""Envelope schema, error taxonomy and parse-error location tests."""

from __future__ import annotations

import json

import pytest

from repro.server.protocol import (
    ERROR_OVERLOADED,
    ERROR_PARSE,
    ERROR_TIMEOUT,
    ERROR_TOO_LARGE,
    ErrorInfo,
    ResponseEnvelope,
    SolveRequest,
    http_status_for,
    locate_parse_error,
    offset_to_line_col,
)
from repro.smt.parser import ParseError, parse_script
from repro.smt.sexpr import SExprError

pytestmark = pytest.mark.server


class TestSolveRequest:
    def test_plain_text_body(self):
        request = SolveRequest.from_body(b"(check-sat)", "text/plain")
        assert request.script == "(check-sat)"
        assert request.deadline_ms is None
        assert request.request_id is None

    def test_json_body_full(self):
        body = json.dumps(
            {"script": "(check-sat)", "deadline_ms": 250, "id": "r-1"}
        ).encode()
        request = SolveRequest.from_body(body, "application/json")
        assert request.script == "(check-sat)"
        assert request.deadline_ms == 250.0
        assert request.request_id == "r-1"

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            SolveRequest.from_body(b"   ", "text/plain")

    def test_bad_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            SolveRequest.from_body(b"{nope", "application/json")

    def test_json_without_script_rejected(self):
        with pytest.raises(ValueError, match="script"):
            SolveRequest.from_body(b'{"deadline_ms": 10}', "application/json")

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            SolveRequest.from_body(
                b'{"script": "(check-sat)", "deadline_ms": 0}', "application/json"
            )


class TestEnvelope:
    def test_success_round_trip(self):
        envelope = ResponseEnvelope.success(
            "sat", {"x": "hi"}, cache_hit=True, queue_ms=1.5, solve_ms=20.25,
            request_id="r-9",
        )
        parsed = ResponseEnvelope.from_json(envelope.to_json())
        assert parsed.ok and parsed.status == "sat"
        assert parsed.model == {"x": "hi"}
        assert parsed.cache_hit is True
        assert parsed.request_id == "r-9"
        assert parsed.error is None
        assert parsed.http_status == 200

    def test_failure_round_trip(self):
        envelope = ResponseEnvelope.failure(
            ErrorInfo(type=ERROR_PARSE, message="boom", line=2, column=7,
                      context="(assert"),
            status="",
        )
        parsed = ResponseEnvelope.from_json(envelope.to_json())
        assert not parsed.ok
        assert parsed.error is not None
        assert (parsed.error.type, parsed.error.line, parsed.error.column) == (
            ERROR_PARSE, 2, 7,
        )
        assert parsed.http_status == 400

    def test_serialization_is_deterministic_and_sorted(self):
        envelope = ResponseEnvelope.success("sat", {"b": "2", "a": "1"})
        text = envelope.to_json()
        assert text == ResponseEnvelope.success("sat", {"a": "1", "b": "2"}).to_json()
        payload = json.loads(text)
        assert list(payload) == sorted(payload)
        # Key set is the envelope contract — a change here is a wire break.
        assert list(payload) == [
            "cache_hit", "error", "id", "lower_bound", "model", "objective",
            "ok", "opt_status", "queue_ms", "reason", "solve_ms", "status",
            "upper_bound",
        ]

    def test_http_status_mapping(self):
        assert http_status_for(None) == 200
        assert http_status_for(ERROR_PARSE) == 400
        assert http_status_for(ERROR_TOO_LARGE) == 413
        assert http_status_for(ERROR_OVERLOADED) == 429
        assert http_status_for(ERROR_TIMEOUT) == 504
        assert http_status_for("something-new") == 500


class TestOffsetToLineCol:
    def test_first_char(self):
        assert offset_to_line_col("abc", 0) == (1, 1)

    def test_multiline(self):
        text = "(set-logic QF_S)\n(assert x)\n"
        offset = text.index("x")
        assert offset_to_line_col(text, offset) == (2, 9)

    def test_offset_clamped(self):
        assert offset_to_line_col("ab", 99) == (1, 3)


class TestLocateParseError:
    def _error_for(self, script: str):
        with pytest.raises((ParseError, SExprError)) as info:
            parse_script(script)
        return locate_parse_error(script, info.value)

    def test_unterminated_string_locates_quote(self):
        script = '(declare-const x String)\n(assert (= x "trunc'
        error = self._error_for(script)
        assert error.type == ERROR_PARSE
        assert (error.line, error.column) == (2, 14)
        assert error.context == '(assert (= x "trunc'

    def test_unbalanced_close_locates_extra_paren(self):
        script = "(check-sat))"
        error = self._error_for(script)
        assert (error.line, error.column) == (1, 12)

    def test_unbalanced_open_locates_unclosed_paren(self):
        script = "(set-logic QF_S)\n(assert (= x"
        error = self._error_for(script)
        assert error.line == 2
        assert error.column in (1, 9)  # outermost unclosed open

    def test_undeclared_symbol_located_by_fragment(self):
        script = '(declare-const x String)\n(assert (= y "a"))'
        error = self._error_for(script)
        assert error.line == 2
        assert "undeclared" in error.message

    def test_garbage_still_produces_location(self):
        error = self._error_for("\x00\x01 not smtlib at all (((")
        assert error.type == ERROR_PARSE
        assert error.line is not None and error.column is not None

    def test_parens_inside_strings_and_comments_ignored(self):
        script = '; comment with (((\n(assert (= x "(((")'
        # x is undeclared → ParseError; the paren scan must not be confused
        # by parens inside the comment or the literal.
        error = self._error_for(script)
        assert error.type == ERROR_PARSE
