import pytest

from repro.smt import ast


class TestSorts:
    def test_sort_of_string_terms(self):
        assert ast.sort_of(ast.StrVar("x")) is ast.StringSort
        assert ast.sort_of(ast.StrLit("a")) is ast.StringSort
        assert (
            ast.sort_of(ast.Concat((ast.StrLit("a"), ast.StrLit("b"))))
            is ast.StringSort
        )
        assert (
            ast.sort_of(ast.Reverse(ast.StrLit("a"))) is ast.StringSort
        )

    def test_sort_of_int_terms(self):
        assert ast.sort_of(ast.IntLit(3)) is ast.IntSort
        assert ast.sort_of(ast.Length(ast.StrVar("x"))) is ast.IntSort
        assert (
            ast.sort_of(ast.IndexOf(ast.StrVar("x"), ast.StrLit("a")))
            is ast.IntSort
        )

    def test_sort_of_bool_terms(self):
        assert (
            ast.sort_of(ast.Contains(ast.StrVar("x"), ast.StrLit("a")))
            is ast.BoolSort
        )
        assert (
            ast.sort_of(ast.Eq(ast.StrVar("x"), ast.StrLit("a"))) is ast.BoolSort
        )
        assert ast.sort_of(ast.Not(ast.Eq(ast.StrLit("a"), ast.StrLit("b")))) is ast.BoolSort

    def test_sort_of_regex_terms(self):
        assert ast.sort_of(ast.ReLit("a")) is ast.RegLanSort
        assert ast.sort_of(ast.RePlus(ast.ReLit("a"))) is ast.RegLanSort

    def test_sort_of_non_term(self):
        with pytest.raises(TypeError):
            ast.sort_of("just a string")


class TestConstructorValidation:
    def test_concat_needs_two_parts(self):
        with pytest.raises(ValueError):
            ast.Concat((ast.StrLit("a"),))

    def test_reunion_needs_two_parts(self):
        with pytest.raises(ValueError):
            ast.ReUnion((ast.ReLit("a"),))

    def test_rerange_validation(self):
        with pytest.raises(ValueError):
            ast.ReRange("ab", "c")
        with pytest.raises(ValueError):
            ast.ReRange("z", "a")

    def test_indexof_default_start(self):
        term = ast.IndexOf(ast.StrVar("x"), ast.StrLit("a"))
        assert term.start == ast.IntLit(0)

    def test_terms_hashable_and_equal(self):
        a = ast.Eq(ast.StrVar("x"), ast.StrLit("v"))
        b = ast.Eq(ast.StrVar("x"), ast.StrLit("v"))
        assert a == b
        assert hash(a) == hash(b)


class TestFreeVariables:
    def test_var(self):
        assert ast.free_string_variables(ast.StrVar("x")) == {"x"}

    def test_literal(self):
        assert ast.free_string_variables(ast.StrLit("abc")) == set()

    def test_nested(self):
        term = ast.Eq(
            ast.StrVar("x"),
            ast.Concat((ast.StrVar("y"), ast.StrLit("z"))),
        )
        assert ast.free_string_variables(term) == {"x", "y"}

    def test_replace(self):
        term = ast.Replace(ast.StrVar("a"), ast.StrVar("b"), ast.StrLit("c"))
        assert ast.free_string_variables(term) == {"a", "b"}

    def test_inre(self):
        term = ast.InRe(ast.StrVar("s"), ast.RePlus(ast.ReLit("a")))
        assert ast.free_string_variables(term) == {"s"}

    def test_not(self):
        term = ast.Not(ast.Contains(ast.StrVar("h"), ast.StrLit("n")))
        assert ast.free_string_variables(term) == {"h"}

    def test_indexof_start(self):
        term = ast.IndexOf(ast.StrLit("t"), ast.StrLit("s"), ast.IntLit(1))
        assert ast.free_string_variables(term) == set()
