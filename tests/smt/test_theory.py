import pytest

from repro.smt import ast
from repro.smt.theory import (
    TheoryError,
    eval_formula,
    eval_term,
    regex_term_to_tokens,
)


def V(name):
    return ast.StrVar(name)


def L(value):
    return ast.StrLit(value)


class TestEvalTerm:
    def test_variable_lookup(self):
        assert eval_term(V("x"), {"x": "hi"}) == "hi"

    def test_unbound_variable(self):
        with pytest.raises(TheoryError):
            eval_term(V("x"), {})

    def test_concat(self):
        term = ast.Concat((L("a"), V("x"), L("c")))
        assert eval_term(term, {"x": "b"}) == "abc"

    def test_length(self):
        assert eval_term(ast.Length(L("hello")), {}) == 5

    def test_reverse(self):
        assert eval_term(ast.Reverse(L("abc")), {}) == "cba"

    def test_contains(self):
        assert eval_term(ast.Contains(L("the cat"), L("cat")), {}) is True
        assert eval_term(ast.Contains(L("the cat"), L("dog")), {}) is False

    def test_indexof_found(self):
        assert eval_term(ast.IndexOf(L("abcabc"), L("bc")), {}) == 1

    def test_indexof_absent_is_minus_one(self):
        assert eval_term(ast.IndexOf(L("abc"), L("z")), {}) == -1

    def test_indexof_with_start(self):
        term = ast.IndexOf(L("abcabc"), L("bc"), ast.IntLit(2))
        assert eval_term(term, {}) == 4

    def test_indexof_invalid_start(self):
        term = ast.IndexOf(L("abc"), L("a"), ast.IntLit(-1))
        assert eval_term(term, {}) == -1
        term = ast.IndexOf(L("abc"), L("a"), ast.IntLit(10))
        assert eval_term(term, {}) == -1

    def test_replace_first_only(self):
        term = ast.Replace(L("ll"), L("l"), L("x"))
        assert eval_term(term, {}) == "xl"

    def test_replace_all(self):
        term = ast.Replace(L("ll"), L("l"), L("x"), replace_all=True)
        assert eval_term(term, {}) == "xx"

    def test_replace_absent(self):
        term = ast.Replace(L("abc"), L("z"), L("x"))
        assert eval_term(term, {}) == "abc"

    def test_replace_empty_pattern_smtlib_semantics(self):
        # str.replace with empty old prepends; replace_all is identity.
        assert eval_term(ast.Replace(L("abc"), L(""), L("X")), {}) == "Xabc"
        assert (
            eval_term(ast.Replace(L("abc"), L(""), L("X"), replace_all=True), {})
            == "abc"
        )

    def test_equality_polymorphic(self):
        assert eval_term(ast.Eq(ast.Length(L("ab")), ast.IntLit(2)), {}) is True
        assert eval_term(ast.Eq(L("a"), L("b")), {}) is False

    def test_not(self):
        assert eval_term(ast.Not(ast.Eq(L("a"), L("b"))), {}) is True

    def test_in_re(self):
        regex = ast.ReConcat(
            (ast.ReLit("a"), ast.RePlus(ast.ReUnion((ast.ReLit("b"), ast.ReLit("c")))))
        )
        assert eval_term(ast.InRe(L("abcb"), regex), {}) is True
        assert eval_term(ast.InRe(L("a"), regex), {}) is False


class TestEvalFormula:
    def test_requires_boolean(self):
        with pytest.raises(TheoryError):
            eval_formula(L("not a bool"), {})

    def test_true_formula(self):
        assert eval_formula(ast.Contains(L("ab"), L("a")), {}) is True


class TestRegexLowering:
    def test_literal_run(self):
        tokens = regex_term_to_tokens(ast.ReLit("abc"))
        assert [next(iter(t.chars)) for t in tokens] == ["a", "b", "c"]

    def test_range(self):
        (token,) = regex_term_to_tokens(ast.ReRange("a", "c"))
        assert token.chars == frozenset("abc")

    def test_union_of_chars(self):
        (token,) = regex_term_to_tokens(
            ast.ReUnion((ast.ReLit("x"), ast.ReRange("a", "b")))
        )
        assert token.chars == frozenset("xab")

    def test_plus(self):
        (token,) = regex_term_to_tokens(ast.RePlus(ast.ReLit("z")))
        assert token.plus

    def test_concat(self):
        tokens = regex_term_to_tokens(
            ast.ReConcat((ast.ReLit("ab"), ast.RePlus(ast.ReLit("c"))))
        )
        assert len(tokens) == 3
        assert tokens[2].plus

    def test_union_of_multichar_rejected(self):
        with pytest.raises(TheoryError):
            regex_term_to_tokens(ast.ReUnion((ast.ReLit("ab"), ast.ReLit("c"))))

    def test_nested_plus_rejected(self):
        with pytest.raises(TheoryError):
            regex_term_to_tokens(ast.RePlus(ast.RePlus(ast.ReLit("a"))))

    def test_empty_literal_rejected(self):
        with pytest.raises(TheoryError):
            regex_term_to_tokens(ast.ReLit(""))
