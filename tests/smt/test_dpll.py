import itertools

import pytest

from repro.smt.dpll import CdclSolver, _luby


def _check_model(clauses, assignment):
    for clause in clauses:
        assert any(
            assignment[abs(l)] == (l > 0) for l in clause
        ), f"clause {clause} unsatisfied"


class TestBasicSat:
    def test_single_unit(self):
        result = CdclSolver(1, [[1]]).solve()
        assert result.satisfiable
        assert result.assignment[1] is True

    def test_negative_unit(self):
        result = CdclSolver(1, [[-1]]).solve()
        assert result.satisfiable
        assert result.assignment[1] is False

    def test_contradiction(self):
        assert not CdclSolver(1, [[1], [-1]]).solve().satisfiable

    def test_empty_clause_unsat(self):
        assert not CdclSolver(2, [[1], []]).solve().satisfiable

    def test_no_clauses_sat(self):
        assert CdclSolver(3, []).solve().satisfiable

    def test_tautology_ignored(self):
        result = CdclSolver(2, [[1, -1], [2]]).solve()
        assert result.satisfiable
        assert result.assignment[2] is True

    def test_implication_chain(self):
        # 1 -> 2 -> 3 -> 4, with 1 asserted.
        clauses = [[1], [-1, 2], [-2, 3], [-3, 4]]
        result = CdclSolver(4, clauses).solve()
        assert result.satisfiable
        assert all(result.assignment[v] for v in range(1, 5))

    def test_model_satisfies_clauses(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        result = CdclSolver(3, clauses).solve()
        assert result.satisfiable
        _check_model(clauses, result.assignment)


class TestHarderInstances:
    def test_pigeonhole_3_into_2_unsat(self):
        # Variables p_{i,j}: pigeon i in hole j; i in 0..2, j in 0..1.
        def var(i, j):
            return i * 2 + j + 1

        clauses = [[var(i, 0), var(i, 1)] for i in range(3)]
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    clauses.append([-var(i1, j), -var(i2, j)])
        result = CdclSolver(6, clauses).solve()
        assert not result.satisfiable
        assert result.conflicts >= 1

    def test_pigeonhole_4_into_3_unsat(self):
        def var(i, j):
            return i * 3 + j + 1

        clauses = [[var(i, j) for j in range(3)] for i in range(4)]
        for j in range(3):
            for i1 in range(4):
                for i2 in range(i1 + 1, 4):
                    clauses.append([-var(i1, j), -var(i2, j)])
        assert not CdclSolver(12, clauses).solve().satisfiable

    def test_random_3sat_agrees_with_brute_force(self):
        import numpy as np

        rng = np.random.default_rng(0)
        n = 8
        for trial in range(10):
            clauses = []
            for _ in range(30):
                vs = rng.choice(n, size=3, replace=False) + 1
                signs = rng.choice([-1, 1], size=3)
                clauses.append([int(v * s) for v, s in zip(vs, signs)])
            brute = any(
                all(
                    any((assignment[abs(l) - 1] == 1) == (l > 0) for l in clause)
                    for clause in clauses
                )
                for assignment in itertools.product((0, 1), repeat=n)
            )
            result = CdclSolver(n, clauses).solve()
            assert result.satisfiable == brute, f"trial {trial}"
            if result.satisfiable:
                _check_model(clauses, result.assignment)

    def test_all_solutions_blockable(self):
        # Enumerate models of a small formula by adding blocking clauses.
        clauses = [[1, 2]]
        models = set()
        for _ in range(10):
            result = CdclSolver(2, clauses).solve()
            if not result.satisfiable:
                break
            model = (result.assignment[1], result.assignment[2])
            assert model not in models
            models.add(model)
            clauses.append(
                [-(v) if result.assignment[v] else v for v in (1, 2)]
            )
        assert len(models) == 3  # TT, TF, FT


class TestValidation:
    def test_out_of_range_literal(self):
        with pytest.raises(ValueError):
            CdclSolver(1, [[2]])

    def test_zero_literal(self):
        with pytest.raises(ValueError):
            CdclSolver(1, [[0]])

    def test_negative_num_vars(self):
        with pytest.raises(ValueError):
            CdclSolver(-1, [])


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]
