import pytest

from repro.smt import ast
from repro.smt.classical import ClassicalStringSolver
from repro.smt.parser import parse_script
from repro.smt.theory import eval_formula


def _assertions(body, decls="(declare-const x String)"):
    return parse_script(decls + body).assertions


def _check_model(result, assertions):
    assert result.status == "sat"
    for assertion in assertions:
        assert eval_formula(assertion, result.model)


class TestSatCases:
    def test_equality(self):
        assertions = _assertions('(assert (= x "hello"))')
        result = ClassicalStringSolver().solve(assertions)
        _check_model(result, assertions)
        assert result.model["x"] == "hello"

    def test_length_and_contains(self):
        assertions = _assertions(
            '(assert (= (str.len x) 4))(assert (str.contains x "cat"))'
        )
        result = ClassicalStringSolver().solve(assertions)
        _check_model(result, assertions)
        assert len(result.model["x"]) == 4
        assert "cat" in result.model["x"]

    def test_indexof(self):
        assertions = _assertions(
            '(assert (= (str.len x) 5))(assert (= (str.indexof x "ab") 2))'
        )
        result = ClassicalStringSolver().solve(assertions)
        _check_model(result, assertions)

    def test_regex(self):
        assertions = _assertions(
            "(assert (= (str.len x) 4))"
            '(assert (str.in_re x (re.++ (str.to_re "a") (re.+ (re.range "b" "c")))))'
        )
        result = ClassicalStringSolver().solve(assertions)
        _check_model(result, assertions)

    def test_regex_multiple_plus_distributions(self):
        # Needs a slack distribution other than all-to-one-token.
        assertions = _assertions(
            "(assert (= (str.len x) 6))"
            '(assert (str.in_re x (re.++ (re.+ (str.to_re "a")) (re.+ (str.to_re "b")))))'
            '(assert (= (str.indexof x "b") 2))'
        )
        result = ClassicalStringSolver().solve(assertions)
        _check_model(result, assertions)
        assert result.model["x"] == "aabbbb"

    def test_negative_constraint(self):
        assertions = _assertions(
            '(assert (= (str.len x) 1))(assert (not (= x "a")))'
        )
        result = ClassicalStringSolver().solve(assertions)
        _check_model(result, assertions)
        assert result.model["x"] != "a"

    def test_length_scan_without_exact_length(self):
        assertions = _assertions('(assert (str.contains x "zz"))')
        result = ClassicalStringSolver().solve(assertions)
        _check_model(result, assertions)

    def test_multiple_variables(self):
        assertions = _assertions(
            '(assert (= x "a"))(assert (= y "b"))',
            decls="(declare-const x String)(declare-const y String)",
        )
        result = ClassicalStringSolver().solve(assertions)
        assert result.model == {"x": "a", "y": "b"}

    def test_ground_true_assertions_ignored(self):
        assertions = _assertions(
            '(assert (str.contains "abc" "b"))(assert (= x "q"))'
        )
        result = ClassicalStringSolver().solve(assertions)
        _check_model(result, assertions)


class TestUnsatCases:
    def test_ground_false(self):
        result = ClassicalStringSolver().solve(
            _assertions('(assert (= "a" "b"))', decls="")
        )
        assert result.status == "unsat"

    def test_conflicting_equalities(self):
        result = ClassicalStringSolver().solve(
            _assertions('(assert (= x "a"))(assert (= x "b"))')
        )
        assert result.status == "unsat"

    def test_length_conflict(self):
        result = ClassicalStringSolver().solve(
            _assertions('(assert (= x "abc"))(assert (= (str.len x) 2))')
        )
        assert result.status == "unsat"

    def test_contains_does_not_fit(self):
        result = ClassicalStringSolver().solve(
            _assertions(
                '(assert (= (str.len x) 2))(assert (str.contains x "abc"))'
            )
        )
        assert result.status == "unsat"

    def test_regex_length_mismatch(self):
        result = ClassicalStringSolver().solve(
            _assertions(
                '(assert (= (str.len x) 2))'
                '(assert (str.in_re x (str.to_re "abc")))'
            )
        )
        assert result.status == "unsat"


class TestLimits:
    def test_multi_variable_assertion_unknown(self):
        result = ClassicalStringSolver().solve(
            _assertions(
                "(assert (= x y))",
                decls="(declare-const x String)(declare-const y String)",
            )
        )
        assert result.status == "unknown"

    def test_node_budget(self):
        solver = ClassicalStringSolver(node_budget=3, max_length=4)
        result = solver.solve(_assertions('(assert (not (= x "aaaa")))'))
        # With a 3-node budget the scan may or may not finish; it must not
        # return a wrong answer.
        if result.status == "sat":
            assert result.model["x"] != "aaaa"

    def test_validation(self):
        with pytest.raises(ValueError):
            ClassicalStringSolver(max_length=-1)
        with pytest.raises(ValueError):
            ClassicalStringSolver(node_budget=0)

    def test_nodes_reported(self):
        result = ClassicalStringSolver().solve(_assertions('(assert (= x "ab"))'))
        assert result.nodes_explored >= 1


class TestSubstrPropagation:
    """Domain propagation for ground ``(= (str.substr x i n) "...")``."""

    def _propagate(self, body, length):
        from repro.smt.classical import _propagate

        (assertion,) = _assertions(body)
        return _propagate("x", assertion, length)

    def test_in_range_window_pins_positions(self):
        (alternative,) = self._propagate(
            '(assert (= (str.substr x 1 2) "bc"))', 4
        )
        assert alternative == [None, frozenset("b"), frozenset("c"), None]

    def test_window_clamped_at_end(self):
        # substr(x, 2, 5) on a length-4 string is a 2-char window.
        (alternative,) = self._propagate(
            '(assert (= (str.substr x 2 5) "cd"))', 4
        )
        assert alternative == [None, None, frozenset("c"), frozenset("d")]

    def test_width_mismatch_infeasible(self):
        assert self._propagate('(assert (= (str.substr x 1 2) "b"))', 4) == []

    def test_out_of_range_empty_result_is_vacuous(self):
        # SMT-LIB clamps out-of-range substr to "": the equation holds for
        # every string, so no position is constrained.
        (alternative,) = self._propagate(
            '(assert (= (str.substr x 9 1) ""))', 3
        )
        assert alternative == [None, None, None]

    def test_out_of_range_nonempty_infeasible(self):
        assert self._propagate('(assert (= (str.substr x 9 1) "a"))', 3) == []
        assert self._propagate('(assert (= (str.substr x 0 -1) "a"))', 3) == []

    def test_reversed_equation_sides(self):
        (alternative,) = self._propagate(
            '(assert (= "bc" (str.substr x 1 2)))', 4
        )
        assert alternative[1] == frozenset("b")

    def test_solver_end_to_end(self):
        assertions = _assertions(
            "(assert (= (str.len x) 4))"
            '(assert (= (str.substr x 1 2) "bc"))'
            '(assert (str.prefixof "a" x))'
        )
        result = ClassicalStringSolver().solve(assertions)
        _check_model(result, assertions)
        assert result.model["x"][:3] == "abc"

    def test_solver_end_to_end_unsat(self):
        result = ClassicalStringSolver().solve(
            _assertions(
                "(assert (= (str.len x) 3))"
                '(assert (= (str.substr x 0 2) "ab"))'
                '(assert (= (str.at x 0) "z"))'
            )
        )
        assert result.status == "unsat"
