"""Tests for the extended SMT surface: str.at / str.substr / str.prefixof /
str.suffixof, disequalities, and push/pop scoping."""

import pytest

from repro.core.affixes import (
    StringCharAt,
    StringPrefixOf,
    StringSubstr,
    StringSuffixOf,
)
from repro.core.notequals import StringNotEquals
from repro.smt import ast
from repro.smt.classical import ClassicalStringSolver
from repro.smt.compiler import CompilationError, compile_assertions
from repro.smt.parser import ParseError, parse_script
from repro.smt.solver import QuantumSMTSolver
from repro.smt.theory import eval_formula, eval_term


def _assertions(body, decls="(declare-const x String)"):
    return parse_script(decls + body).assertions


def _solver(**kwargs):
    defaults = dict(
        seed=0, num_reads=48, max_attempts=5, sampler_params={"num_sweeps": 500}
    )
    defaults.update(kwargs)
    return QuantumSMTSolver(**defaults)


class TestTheoryEvaluation:
    def test_at_in_range(self):
        assert eval_term(ast.At(ast.StrLit("abc"), ast.IntLit(1)), {}) == "b"

    def test_at_out_of_range(self):
        assert eval_term(ast.At(ast.StrLit("abc"), ast.IntLit(3)), {}) == ""
        assert eval_term(ast.At(ast.StrLit("abc"), ast.IntLit(-1)), {}) == ""

    def test_substr(self):
        assert eval_term(
            ast.Substr(ast.StrLit("hello"), ast.IntLit(1), ast.IntLit(3)), {}
        ) == "ell"

    def test_substr_out_of_range(self):
        term = ast.Substr(ast.StrLit("abc"), ast.IntLit(9), ast.IntLit(1))
        assert eval_term(term, {}) == ""
        term = ast.Substr(ast.StrLit("abc"), ast.IntLit(0), ast.IntLit(-2))
        assert eval_term(term, {}) == ""

    def test_prefixof_suffixof(self):
        assert eval_formula(
            ast.PrefixOf(ast.StrLit("ab"), ast.StrLit("abc")), {}
        )
        assert not eval_formula(
            ast.PrefixOf(ast.StrLit("bc"), ast.StrLit("abc")), {}
        )
        assert eval_formula(
            ast.SuffixOf(ast.StrLit("bc"), ast.StrLit("abc")), {}
        )


class TestParsing:
    def test_new_operators_parse(self):
        assertions = _assertions(
            '(assert (str.prefixof "a" x))(assert (str.suffixof "z" x))'
            '(assert (= (str.at x 1) "b"))(assert (= x (str.substr "hello" 0 2)))'
        )
        assert isinstance(assertions[0], ast.PrefixOf)
        assert isinstance(assertions[1], ast.SuffixOf)
        assert isinstance(assertions[2].lhs, ast.At)
        assert isinstance(assertions[3].rhs, ast.Substr)


class TestCompilation:
    def test_prefixof(self):
        problem = compile_assertions(
            _assertions('(assert (= (str.len x) 5))(assert (str.prefixof "ab" x))')
        )
        assert isinstance(problem.formulations["x"], StringPrefixOf)

    def test_suffixof(self):
        problem = compile_assertions(
            _assertions('(assert (= (str.len x) 5))(assert (str.suffixof "yz" x))')
        )
        f = problem.formulations["x"]
        assert isinstance(f, StringSuffixOf)
        assert f.index == 3

    def test_char_at(self):
        problem = compile_assertions(
            _assertions('(assert (= (str.len x) 4))(assert (= (str.at x 2) "Q"))')
        )
        assert isinstance(problem.formulations["x"], StringCharAt)

    def test_at_supplies_length_bound(self):
        problem = compile_assertions(
            _assertions('(assert (= (str.at x 3) "Q"))')
        )
        f = problem.formulations["x"]
        assert f.total_length == 4  # index 3 + 1

    def test_substr_generation(self):
        problem = compile_assertions(
            _assertions('(assert (= x (str.substr "hello world" 6 5)))')
        )
        f = problem.formulations["x"]
        assert isinstance(f, StringSubstr)
        assert f.target == "world"

    def test_disequality(self):
        problem = compile_assertions(
            _assertions('(assert (= (str.len x) 3))(assert (not (= x "abc")))')
        )
        assert isinstance(problem.formulations["x"], StringNotEquals)

    def test_disequality_wrong_length_trivial(self):
        # x has length 2; x != "abc" holds vacuously -> plain generator.
        problem = compile_assertions(
            _assertions('(assert (= (str.len x) 2))(assert (not (= x "abc")))')
        )
        f = problem.formulations["x"]
        assert not isinstance(f, StringNotEquals)

    def test_out_of_range_at_rejected(self):
        with pytest.raises(CompilationError):
            compile_assertions(
                _assertions(
                    '(assert (= (str.len x) 4))(assert (= (str.at x 2) ""))'
                )
            )


class TestEndToEnd:
    def test_affix_constraints_solved(self):
        script = """
        (declare-const x String)
        (assert (= (str.len x) 6))
        (assert (str.prefixof "ab" x))
        (assert (str.suffixof "yz" x))
        (check-sat)
        """
        result = _solver().run_script_text(script)
        assert result == ["sat"]

    def test_disequality_solved(self):
        s = _solver(seed=1)
        s.declare_const("x")
        s.add_assertion(ast.Eq(ast.Length(ast.StrVar("x")), ast.IntLit(4)))
        s.add_assertion(ast.Not(ast.Eq(ast.StrVar("x"), ast.StrLit("aaaa"))))
        result = s.check_sat()
        assert result.status == "sat"
        assert result.model["x"] != "aaaa"

    def test_classical_handles_new_ops(self):
        assertions = _assertions(
            '(assert (= (str.len x) 4))(assert (str.prefixof "ab" x))'
            '(assert (str.suffixof "cd" x))'
        )
        result = ClassicalStringSolver().solve(assertions)
        assert result.status == "sat"
        assert result.model["x"] == "abcd"
        for a in assertions:
            assert eval_formula(a, result.model)


class TestPushPop:
    def test_pop_restores_assertions(self):
        script = """
        (declare-const x String)
        (assert (= (str.len x) 2))
        (check-sat)
        (push 1)
        (assert (= x "zz"))
        (check-sat) (get-value (x))
        (pop 1)
        (push 1)
        (assert (= x "qq"))
        (check-sat) (get-value (x))
        """
        outputs = _solver(seed=2).run_script_text(script)
        assert outputs[0] == "sat"
        assert outputs[1] == "sat" and outputs[2] == '((x "zz"))'
        assert outputs[3] == "sat" and outputs[4] == '((x "qq"))'

    def test_nested_push(self):
        script = """
        (declare-const x String)
        (push 2)
        (assert (= x "a"))
        (pop 1)
        (pop 1)
        (check-sat)
        """
        # After popping everything there are no constraints on x; with no
        # assertions at all, check-sat over an empty conjunction is sat.
        outputs = _solver(seed=3).run_script_text(script)
        assert outputs == ["sat"]

    def test_pop_beyond_stack_raises(self):
        with pytest.raises(ParseError):
            _solver().run_script_text("(pop 1)")
