"""Unit tests for :mod:`repro.smt.session` — the incremental frame stack.

The bit-identity *property* (session ≡ fresh solver at every depth) lives
in ``tests/properties/test_property_session.py``; this file pins the
mechanics: frame bookkeeping, the per-state result memo, the shared
compile cache, warm starts, fragment parsing, and the script walkers.
"""

from __future__ import annotations

import pytest

from repro.service.cache import CompileCache
from repro.smt import ast
from repro.smt.parser import parse_script
from repro.smt.session import (
    SessionError,
    SolverSession,
    iter_check_states,
    run_session_script,
)
from repro.smt.solver import QuantumSMTSolver
from repro.smt.status import SolveStatus

#: Deterministic, fast solver settings for every session in this file.
FAST = dict(num_reads=24, sampler_params={"num_sweeps": 200}, seed=7)

PUSH_POP_SCRIPT = """
(declare-const x String)
(assert (= (str.len x) 2))
(check-sat)
(push 1)
(assert (= x "aa"))
(assert (= x "bb"))
(check-sat)
(pop 1)
(check-sat)
"""


def make_session(**overrides) -> SolverSession:
    settings = dict(FAST)
    settings.update(overrides)
    return SolverSession(**settings)


def eq(var: str, word: str) -> ast.Term:
    return ast.Eq(ast.StrVar(var), ast.StrLit(word))


class TestFrameStack:
    def test_push_pop_depth(self):
        session = make_session()
        assert session.depth == 0
        assert session.push() == 1
        assert session.push(2) == 3
        assert session.pop(2) == 1
        assert session.pop() == 0

    def test_pop_below_zero_raises(self):
        session = make_session()
        session.push()
        with pytest.raises(SessionError, match="exceeds the assertion-stack"):
            session.pop(2)
        # The failed pop must not have consumed any frames.
        assert session.depth == 1

    def test_negative_levels_raise(self):
        session = make_session()
        with pytest.raises(SessionError):
            session.push(-1)
        with pytest.raises(SessionError):
            session.pop(-1)

    def test_flattened_is_oldest_first_across_frames(self):
        session = make_session()
        session.declare_const("x")
        session.assert_term(eq("x", "a"))
        session.push()
        session.assert_term(eq("x", "b"))
        assert session.flattened() == [eq("x", "a"), eq("x", "b")]
        session.pop()
        assert session.flattened() == [eq("x", "a")]

    def test_declarations_persist_across_pops(self):
        session = make_session()
        session.push()
        session.declare_const("x")
        session.pop()
        assert "x" in session.declarations

    def test_conflicting_redeclaration_raises(self):
        session = make_session()
        session.declare_const("x")
        session.declare_const("x")  # same sort: idempotent
        with pytest.raises(SessionError, match="re-declaration"):
            session.declare_const("x", sort=object())


class TestAssertText:
    def test_fragment_inherits_session_declarations(self):
        session = make_session()
        session.declare_const("x")
        added = session.assert_text('(assert (= x "hi"))')
        assert added == 1
        assert session.flattened() == [eq("x", "hi")]

    def test_fragment_may_declare_new_constants(self):
        session = make_session()
        added = session.assert_text(
            '(declare-const y String)(assert (= y "a"))'
        )
        assert added == 1
        assert "y" in session.declarations

    def test_fragment_rejects_control_commands(self):
        session = make_session()
        with pytest.raises(SessionError, match="only declare-const/assert"):
            session.assert_text("(check-sat)")
        with pytest.raises(SessionError, match="only declare-const/assert"):
            session.assert_text("(push 1)")


class TestCheckSat:
    def test_simple_sat_with_model(self):
        session = make_session()
        session.assert_text('(declare-const x String)(assert (= x "hi"))')
        result = session.check_sat()
        assert result.status is SolveStatus.SAT
        assert session.get_model() == {"x": "hi"}

    def test_repush_identical_frame_is_a_memo_hit(self):
        session = make_session()
        session.assert_text(
            '(declare-const x String)(assert (= (str.len x) 2))'
        )
        base = session.check_sat()
        session.push()
        session.assert_text('(assert (= x "ab"))')
        pushed = session.check_sat()
        session.pop()
        # Popping invalidates nothing; both earlier states answer from
        # the memo without recompiling or re-annealing.
        assert session.check_sat() == base
        session.push()
        session.assert_text('(assert (= x "ab"))')
        assert session.check_sat() == pushed
        assert session.stats.checks == 4
        assert session.stats.memo_hits == 2
        assert session.stats.compile_misses == 2
        assert session.stats.compile_hits == 0

    def test_shared_cache_hits_across_sessions(self):
        cache = CompileCache(maxsize=16)
        first = make_session(cache=cache)
        first.assert_text('(declare-const x String)(assert (= x "ab"))')
        first.check_sat()
        second = make_session(cache=cache)
        second.assert_text('(declare-const x String)(assert (= x "ab"))')
        result = second.check_sat()
        assert result.status is SolveStatus.SAT
        assert second.stats.compile_hits == 1
        assert second.stats.compile_misses == 0

    def test_compilation_error_memoized_as_unknown(self):
        session = make_session()
        # Conflicting length facts make per-conjunction length inference
        # impossible — the compiler refuses, the session answers unknown.
        session.assert_text(
            "(declare-const x String)"
            "(assert (= (str.len x) 1))(assert (= (str.len x) 2))"
        )
        result = session.check_sat()
        assert result.status is SolveStatus.UNKNOWN
        assert "compilation" in result.reason
        again = session.check_sat()
        assert again == result
        assert session.stats.memo_hits == 1

    def test_get_model_requires_a_check_first(self):
        session = make_session()
        with pytest.raises(RuntimeError, match="check_sat"):
            session.get_model()

    def test_mutations_invalidate_last_result(self):
        session = make_session()
        session.assert_text('(declare-const x String)(assert (= x "a"))')
        session.check_sat()
        session.assert_term(eq("x", "b"))
        with pytest.raises(RuntimeError, match="check_sat"):
            session.get_model()


class TestWarmStart:
    def test_warm_model_reverified_on_compatible_extension(self):
        session = make_session(warm_start=True)
        session.assert_text(
            '(declare-const x String)(assert (= x "ab"))'
        )
        first = session.check_sat()
        assert first.status is SolveStatus.SAT
        session.push()
        # The previous model x="ab" already satisfies the new conjunct.
        session.assert_text("(assert (= (str.len x) 2))")
        second = session.check_sat()
        assert second.status is SolveStatus.SAT
        assert second.model == {"x": "ab"}
        assert session.stats.warm_hits == 1
        assert "warm-start" in second.reason

    def test_warm_model_rejected_when_violated(self):
        session = make_session(warm_start=True)
        session.assert_text(
            '(declare-const x String)(assert (= (str.len x) 2))'
        )
        first = session.check_sat()
        assert first.status is SolveStatus.SAT
        witness = first.model["x"]
        session.push()
        # Contradicts whatever the previous model was: no warm hit.
        session.assert_text(f'(assert (not (= x "{witness}")))')
        session.check_sat()
        assert session.stats.warm_hits == 0

    def test_cold_sessions_never_warm_hit(self):
        session = make_session()  # warm_start defaults to False
        session.assert_text('(declare-const x String)(assert (= x "ab"))')
        session.check_sat()
        session.push()
        session.assert_text("(assert (= (str.len x) 2))")
        session.check_sat()
        assert session.stats.warm_hits == 0


class TestScriptExecution:
    def test_run_script_text_answers_each_check(self):
        session = make_session()
        results = session.run_script_text(PUSH_POP_SCRIPT)
        statuses = [result.status for result in results]
        assert statuses[0] is SolveStatus.SAT
        assert statuses[1] is not SolveStatus.SAT  # contradictory frame
        assert statuses[2] is SolveStatus.SAT
        # Query 3 re-checks the query-1 state: answered from the memo.
        assert session.stats.memo_hits == 1
        assert results[2] == results[0]

    def test_run_session_script_builds_a_fresh_session(self):
        results = run_session_script(PUSH_POP_SCRIPT, **FAST)
        assert len(results) == 3
        assert results[0].status is SolveStatus.SAT

    def test_exit_stops_execution(self):
        session = make_session()
        results = session.run_script_text(
            '(declare-const x String)(assert (= x "a"))(check-sat)'
            "(exit)(check-sat)"
        )
        assert len(results) == 1


class TestIterCheckStates:
    def test_states_match_manual_stack_walk(self):
        script = parse_script(PUSH_POP_SCRIPT)
        states = list(iter_check_states(script))
        assert [index for index, _ in states] == [0, 1, 2]
        length_fact = script.assertions[0]
        assert states[0][1] == [length_fact]
        assert len(states[1][1]) == 3
        assert states[2][1] == [length_fact]

    def test_over_pop_raises_session_error(self):
        script = parse_script(
            "(declare-const x String)(push 1)(pop 2)(check-sat)"
        )
        with pytest.raises(SessionError, match="exceeds the assertion-stack"):
            list(iter_check_states(script))

    def test_flattened_state_reproduces_fresh_solver_input(self):
        # The yielded state is exactly what a fresh solver needs: feed it
        # back and get the same answer the session gives.
        script = parse_script(PUSH_POP_SCRIPT)
        session = make_session()
        session_results = session.run_script(script)
        for index, flattened in iter_check_states(script):
            solver = QuantumSMTSolver(**FAST)
            solver.declarations = dict(script.declarations)
            solver.assertions = list(flattened)
            assert solver.check_sat().status is session_results[index].status
