import pytest

from repro.core.concat import StringConcatenation
from repro.core.equality import StringEquality
from repro.core.indexof import SubstringIndexOf
from repro.core.length import StringLength
from repro.core.regex import RegexMatching
from repro.core.replace import StringReplace, StringReplaceAll
from repro.core.reverse import StringReversal
from repro.core.substring import SubstringMatching
from repro.smt.compiler import (
    CompilationError,
    CompositeFormulation,
    compile_assertions,
)
from repro.smt.parser import parse_script


def _assertions(body: str, decls='(declare-const x String)'):
    return parse_script(decls + body).assertions


class TestShapeDispatch:
    def test_equality_literal(self):
        problem = compile_assertions(_assertions('(assert (= x "hi"))'))
        assert isinstance(problem.formulations["x"], StringEquality)

    def test_equality_reversed_orientation(self):
        problem = compile_assertions(_assertions('(assert (= "hi" x))'))
        assert isinstance(problem.formulations["x"], StringEquality)

    def test_concat(self):
        problem = compile_assertions(
            _assertions('(assert (= x (str.++ "a" "b")))')
        )
        assert isinstance(problem.formulations["x"], StringConcatenation)

    def test_replace_all(self):
        problem = compile_assertions(
            _assertions('(assert (= x (str.replace_all "ll" "l" "x")))')
        )
        f = problem.formulations["x"]
        assert isinstance(f, StringReplaceAll) and not isinstance(f, StringReplace)

    def test_replace_first(self):
        problem = compile_assertions(
            _assertions('(assert (= x (str.replace "ll" "l" "x")))')
        )
        assert isinstance(problem.formulations["x"], StringReplace)

    def test_multichar_replace_falls_back_to_equality(self):
        problem = compile_assertions(
            _assertions('(assert (= x (str.replace "abab" "ab" "z")))')
        )
        f = problem.formulations["x"]
        assert isinstance(f, StringEquality)
        assert f.target == "zab"

    def test_reverse(self):
        problem = compile_assertions(
            _assertions('(assert (= x (str.rev "abc")))')
        )
        assert isinstance(problem.formulations["x"], StringReversal)

    def test_contains_with_length(self):
        problem = compile_assertions(
            _assertions(
                '(assert (= (str.len x) 4))(assert (str.contains x "cat"))'
            )
        )
        f = problem.formulations["x"]
        assert isinstance(f, SubstringMatching)
        assert f.total_length == 4

    def test_indexof_with_length(self):
        problem = compile_assertions(
            _assertions(
                '(assert (= (str.len x) 6))(assert (= (str.indexof x "hi") 2))'
            )
        )
        f = problem.formulations["x"]
        assert isinstance(f, SubstringIndexOf)
        assert f.index == 2 and f.total_length == 6

    def test_regex_with_length(self):
        problem = compile_assertions(
            _assertions(
                "(assert (= (str.len x) 5))"
                '(assert (str.in_re x (re.++ (str.to_re "a") (re.+ (re.range "b" "c")))))'
            )
        )
        assert isinstance(problem.formulations["x"], RegexMatching)

    def test_length_only_uses_decodable_mode(self):
        problem = compile_assertions(_assertions("(assert (= (str.len x) 3))"))
        f = problem.formulations["x"]
        assert isinstance(f, StringLength)
        assert f.mode == "decodable"


class TestComposition:
    def test_multiple_constraints_compose(self):
        problem = compile_assertions(
            _assertions(
                '(assert (= (str.len x) 5))(assert (str.contains x "ab"))'
                '(assert (= (str.indexof x "ab") 1))'
            )
        )
        f = problem.formulations["x"]
        assert isinstance(f, CompositeFormulation)
        assert len(f.children) == 2  # the length fact is absorbed

    def test_composite_verify_all_children(self):
        problem = compile_assertions(
            _assertions(
                '(assert (= (str.len x) 4))(assert (str.contains x "ab"))'
                '(assert (= (str.indexof x "ab") 2))'
            )
        )
        f = problem.formulations["x"]
        assert f.verify("xxab")
        assert not f.verify("abxx")  # indexof wants position 2

    def test_two_variables_compiled_independently(self):
        problem = compile_assertions(
            _assertions(
                '(assert (= x "a"))(assert (= y "b"))',
                decls="(declare-const x String)(declare-const y String)",
            )
        )
        assert set(problem.formulations) == {"x", "y"}


class TestGroundHandling:
    def test_ground_true_recorded(self):
        problem = compile_assertions(_assertions('(assert (str.contains "abc" "b"))'))
        assert problem.ground_results[0][1] is True
        assert not problem.trivially_unsat

    def test_ground_false_flags_unsat(self):
        problem = compile_assertions(_assertions('(assert (= "a" "b"))'))
        assert problem.trivially_unsat

    def test_ground_contains_gets_includes_qubo(self):
        problem = compile_assertions(
            _assertions('(assert (str.contains "the cat" "cat"))')
        )
        assert len(problem.includes) == 1
        _, includes = problem.includes[0]
        assert includes.haystack == "the cat"


class TestErrors:
    def test_multi_variable_rejected(self):
        with pytest.raises(CompilationError):
            compile_assertions(
                _assertions(
                    "(assert (= x y))",
                    decls="(declare-const x String)(declare-const y String)",
                )
            )

    def test_no_length_inferable_rejected(self):
        # `not` carries no length information, so inference fails first.
        with pytest.raises(CompilationError, match="length"):
            compile_assertions(_assertions('(assert (not (= x "ab")))'))

    def test_indexof_alone_supplies_length_bound(self):
        # (= (str.indexof x "ab") 1) implies |x| >= 3; the compiler uses it.
        problem = compile_assertions(
            _assertions('(assert (= (str.indexof x "ab") 1))')
        )
        f = problem.formulations["x"]
        assert isinstance(f, SubstringIndexOf)
        assert f.total_length == 3

    def test_conflicting_lengths_rejected(self):
        with pytest.raises(CompilationError, match="conflicting"):
            compile_assertions(
                _assertions(
                    '(assert (= x "ab"))(assert (= (str.len x) 5))'
                )
            )

    def test_length_below_lower_bound_rejected(self):
        with pytest.raises(CompilationError):
            compile_assertions(
                _assertions(
                    '(assert (= (str.len x) 2))(assert (str.contains x "abc"))'
                )
            )

    def test_unsupported_negation_rejected(self):
        # Disequality is now supported (StringNotEquals); other negations
        # remain outside the fragment.
        with pytest.raises(CompilationError, match="negative"):
            compile_assertions(
                _assertions(
                    '(assert (= (str.len x) 2))(assert (not (str.contains x "a")))'
                )
            )

    def test_disequality_compiles_to_not_equals(self):
        from repro.core.notequals import StringNotEquals

        problem = compile_assertions(
            _assertions('(assert (= (str.len x) 2))(assert (not (= x "ab")))')
        )
        assert isinstance(problem.formulations["x"], StringNotEquals)

    def test_variable_needle_rejected(self):
        with pytest.raises(CompilationError):
            compile_assertions(
                _assertions("(assert (= (str.len x) 3))(assert (str.contains x x))")
            )

    def test_negative_indexof_witness_rejected(self):
        with pytest.raises(CompilationError):
            compile_assertions(
                _assertions(
                    '(assert (= (str.len x) 3))(assert (= (str.indexof x "a") -1))'
                )
            )


class TestCompositeFormulation:
    def test_model_is_sum(self):
        import numpy as np

        a = StringEquality("ab")
        b = SubstringMatching(2, "a")
        composite = CompositeFormulation("v", [a, b])
        states = np.random.default_rng(0).integers(0, 2, size=(5, 14))
        np.testing.assert_allclose(
            composite.build_model().energies(states),
            a.build_model().energies(states) + b.build_model().energies(states),
        )

    def test_auxiliary_children_get_disjoint_blocks(self):
        from repro.core.notequals import StringNotEquals

        eq_like = SubstringMatching(2, "a")
        neq = StringNotEquals("ab", seed=0)
        composite = CompositeFormulation("v", [eq_like, neq])
        model = composite.build_model()
        # 14 string bits + the disequality's 13 AND-chain auxiliaries.
        assert composite.string_bits == 14
        assert model.num_variables == 14 + (14 - 1)

    def test_composite_decode_strips_auxiliaries(self):
        import numpy as np

        from repro.core.encoding import encode_string
        from repro.core.notequals import StringNotEquals

        composite = CompositeFormulation(
            "v", [SubstringMatching(2, "a"), StringNotEquals("ab", seed=0)]
        )
        state = np.zeros(composite.build_model().num_variables, dtype=np.int8)
        state[:14] = encode_string("ax")
        assert composite.decode(state) == "ax"

    def test_empty_rejected(self):
        with pytest.raises(CompilationError):
            CompositeFormulation("v", [])

    def test_all_auxiliary_children_keep_the_true_string_prefix(self):
        # Regression: when *every* child carries auxiliary bits (two
        # disequalities on one variable), the string prefix must come
        # from num_string_bits, not min(child widths) — the old width
        # heuristic sliced aux bits into decode and crashed.
        import numpy as np

        from repro.core.encoding import encode_string
        from repro.core.notequals import StringNotEquals

        composite = CompositeFormulation(
            "v", [StringNotEquals("ab", seed=0), StringNotEquals("ba", seed=1)]
        )
        assert composite.string_bits == 14
        # 14 shared string bits + each child's 13 private auxiliaries.
        assert composite.build_model().num_variables == 14 + 2 * 13
        state = np.zeros(composite.build_model().num_variables, dtype=np.int8)
        state[:14] = encode_string("zz")
        assert composite.decode(state) == "zz"
        assert composite.verify("zz")

    def test_two_disequalities_solve_end_to_end(self):
        from repro.smt.solver import QuantumSMTSolver

        solver = QuantumSMTSolver.from_script_text(
            '(declare-const x String)(assert (= (str.len x) 2))'
            '(assert (not (= x "ab")))(assert (not (= x "ba")))(check-sat)',
            num_reads=24,
            seed=0,
            sampler_params={"num_sweeps": 200},
        )
        result = solver.check_sat()
        assert str(result.status) == "sat"
        assert result.model["x"] not in ("ab", "ba")
