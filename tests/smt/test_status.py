"""SolveStatus: the shared status enum (satellite of the verify PR)."""

import json

import pytest

from repro.smt import SolveStatus
from repro.smt.classical import ClassicalResult
from repro.smt.solver import SmtResult


class TestFromValue:
    def test_identity(self):
        assert SolveStatus.from_value(SolveStatus.SAT) is SolveStatus.SAT

    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("sat", SolveStatus.SAT),
            ("unsat", SolveStatus.UNSAT),
            ("unknown", SolveStatus.UNKNOWN),
            ("SAT", SolveStatus.SAT),
            ("  unsat ", SolveStatus.UNSAT),
        ],
    )
    def test_plain_strings(self, raw, expected):
        assert SolveStatus.from_value(raw) is expected

    @pytest.mark.parametrize(
        "alias, expected",
        [
            ("satisfiable", SolveStatus.SAT),
            ("unsatisfiable", SolveStatus.UNSAT),
            ("indeterminate", SolveStatus.UNKNOWN),
            ("timeout", SolveStatus.UNKNOWN),
        ],
    )
    def test_historical_aliases(self, alias, expected):
        assert SolveStatus.from_value(alias) is expected

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            SolveStatus.from_value("maybe")

    def test_non_string_rejected(self):
        with pytest.raises(ValueError):
            SolveStatus.from_value(42)


class TestStringCompatibility:
    """The enum must be a drop-in for the old bare strings."""

    def test_equality_with_bare_string(self):
        assert SolveStatus.SAT == "sat"
        assert SolveStatus.UNSAT == "unsat"
        assert SolveStatus.UNKNOWN != "sat"

    def test_str_and_format(self):
        # py3.11+ changed str() of mixin enums; we pin the old behavior.
        assert str(SolveStatus.SAT) == "sat"
        assert f"{SolveStatus.UNSAT}" == "unsat"

    def test_json_serializes_to_plain_value(self):
        assert json.loads(json.dumps({"status": SolveStatus.SAT})) == {
            "status": "sat"
        }

    def test_usable_as_dict_key_alongside_strings(self):
        counts = {"sat": 1}
        counts[SolveStatus.SAT] = counts.get(SolveStatus.SAT, 0) + 1
        assert counts == {"sat": 2}


class TestProperties:
    def test_is_decided(self):
        assert SolveStatus.SAT.is_decided
        assert SolveStatus.UNSAT.is_decided
        assert not SolveStatus.UNKNOWN.is_decided

    def test_agrees_with(self):
        assert SolveStatus.SAT.agrees_with("sat")
        assert not SolveStatus.SAT.agrees_with(SolveStatus.UNSAT)
        assert not SolveStatus.UNKNOWN.agrees_with(SolveStatus.UNKNOWN)


class TestResultNormalization:
    def test_smt_result_coerces_bare_strings(self):
        result = SmtResult(status="sat")
        assert result.status is SolveStatus.SAT

    def test_smt_result_accepts_enum(self):
        assert SmtResult(status=SolveStatus.UNSAT).status is SolveStatus.UNSAT

    def test_classical_result_coerces(self):
        result = ClassicalResult(status="unknown")
        assert result.status is SolveStatus.UNKNOWN
