import pytest

from repro.smt import ast
from repro.smt.solver import QuantumSMTSolver


def _solver(**kwargs):
    defaults = dict(seed=0, num_reads=32, sampler_params={"num_sweeps": 300})
    defaults.update(kwargs)
    return QuantumSMTSolver(**defaults)


class TestCheckSat:
    def test_sat_with_verified_model(self):
        s = _solver()
        s.declare_const("x")
        s.add_assertion(ast.Eq(ast.StrVar("x"), ast.StrLit("hello")))
        result = s.check_sat()
        assert result.status == "sat"
        assert result.model["x"] == "hello"

    def test_unsat_on_false_ground_assertion(self):
        s = _solver()
        s.add_assertion(ast.Eq(ast.StrLit("a"), ast.StrLit("b")))
        assert s.check_sat().status == "unsat"

    def test_unknown_on_uncompilable(self):
        s = _solver()
        s.declare_const("x")
        s.declare_const("y")
        s.add_assertion(ast.Eq(ast.StrVar("x"), ast.StrVar("y")))
        result = s.check_sat()
        assert result.status == "unknown"
        assert "compilation" in result.reason

    def test_multi_variable_model(self):
        s = _solver()
        s.declare_const("x")
        s.declare_const("y")
        s.add_assertion(ast.Eq(ast.StrVar("x"), ast.StrLit("ab")))
        s.add_assertion(
            ast.Eq(ast.StrVar("y"), ast.Reverse(ast.StrLit("cd")))
        )
        result = s.check_sat()
        assert result.status == "sat"
        assert result.model == {"x": "ab", "y": "dc"}

    def test_solve_results_recorded(self):
        s = _solver()
        s.declare_const("x")
        s.add_assertion(ast.Eq(ast.StrVar("x"), ast.StrLit("q")))
        result = s.check_sat()
        assert result.solve_results["x"].ok


class TestModelAccess:
    def test_get_model_before_check_raises(self):
        with pytest.raises(RuntimeError):
            _solver().get_model()

    def test_get_model_after_unsat_raises(self):
        s = _solver()
        s.add_assertion(ast.Eq(ast.StrLit("a"), ast.StrLit("b")))
        s.check_sat()
        with pytest.raises(RuntimeError):
            s.get_model()

    def test_get_value(self):
        s = _solver()
        s.declare_const("x")
        s.add_assertion(ast.Eq(ast.StrVar("x"), ast.StrLit("v")))
        s.check_sat()
        assert s.get_value("x") == "v"
        with pytest.raises(KeyError):
            s.get_value("nope")


class TestScriptExecution:
    def test_full_repl_session(self):
        script = """
        (set-logic QF_S)
        (declare-const x String)
        (assert (= x (str.replace_all (str.++ "hello " "world") "l" "x")))
        (check-sat)
        (get-model)
        (get-value (x))
        """
        outputs = _solver().run_script_text(script)
        assert outputs[0] == "sat"
        assert 'define-fun x () String "hexxo worxd"' in outputs[1]
        assert outputs[2] == '((x "hexxo worxd"))'

    def test_quote_escaping_in_model(self):
        script = '(declare-const x String)(assert (= x "say ""hi"""))(check-sat)(get-model)'
        outputs = _solver().run_script_text(script)
        assert outputs[0] == "sat"
        assert '"say ""hi"""' in outputs[1]

    def test_exit_stops_execution(self):
        script = "(declare-const x String)(exit)(check-sat)"
        outputs = _solver().run_script_text(script)
        assert outputs == []

    def test_echo(self):
        outputs = _solver().run_script_text('(echo "hi there")')
        assert outputs == ["hi there"]

    def test_from_script_text_constructor(self):
        s = QuantumSMTSolver.from_script_text(
            '(declare-const z String)(assert (= z "ok"))',
            seed=1,
            num_reads=16,
            sampler_params={"num_sweeps": 200},
        )
        assert s.check_sat().status == "sat"


class TestConfiguration:
    def test_duplicate_declaration_rejected(self):
        s = _solver()
        s.declare_const("x")
        with pytest.raises(ValueError):
            s.declare_const("x")

    def test_bad_max_attempts(self):
        with pytest.raises(ValueError):
            QuantumSMTSolver(max_attempts=0)

    def test_retries_help_weak_sampler(self):
        # With one read the annealer often misses; retries recover.
        s = QuantumSMTSolver(
            seed=3, num_reads=2, max_attempts=10, sampler_params={"num_sweeps": 150}
        )
        s.declare_const("x")
        s.add_assertion(ast.Eq(ast.StrVar("x"), ast.StrLit("hi")))
        result = s.check_sat()
        assert result.status in ("sat", "unknown")  # never a wrong answer
        if result.status == "sat":
            assert result.model["x"] == "hi"
