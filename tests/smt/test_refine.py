"""Unit tests for the CEGAR refinement loop (repro.smt.refine).

Covers the abstraction primitives (implied domains, implied-bit clamps,
state expansion), the engine's pruning/determinism behaviour, aux-bit
safety, session integration and the stats/metrics surface. The
fault-injection surface lives in ``test_refine_faults.py``; the
cross-backend bit-identity contract in
``tests/properties/test_property_refine.py``.
"""

import numpy as np
import pytest

from repro.core.encoding import char_to_bits, encode_string, variable_index
from repro.qubo.algebra import expand_states
from repro.service.metrics import MetricsRegistry
from repro.smt import ast
from repro.smt.parser import parse_script
from repro.smt.refine import (
    RefinementEngine,
    RefineStats,
    implied_bit_clamps,
    implied_domains,
)
from repro.smt.session import SolverSession
from repro.smt.solver import QuantumSMTSolver
from repro.smt.status import SolveStatus
from repro.utils.asciitab import CHAR_BITS

FAST = dict(num_reads=24, sampler_params={"num_sweeps": 200}, seed=7)


def _assertions(script: str):
    return list(parse_script(script).assertions)


def _solver(script: str, strategy: str = "refine", **overrides):
    kwargs = dict(FAST, strategy=strategy)
    kwargs.update(overrides)
    return QuantumSMTSolver.from_script_text(script, **kwargs)


# --------------------------------------------------------------------- #
# implied_domains
# --------------------------------------------------------------------- #


class TestImpliedDomains:
    def test_equality_pins_every_position(self):
        group = _assertions('(declare-const x String)(assert (= x "ab"))')
        domains = implied_domains("x", group, 2)
        assert domains == [frozenset("a"), frozenset("b")]

    def test_prefix_pins_leading_positions_only(self):
        group = _assertions(
            '(declare-const x String)(assert (str.prefixof "ab" x))'
        )
        domains = implied_domains("x", group, 4)
        assert domains[:2] == [frozenset("a"), frozenset("b")]
        assert domains[2:] == [None, None]

    def test_suffix_pins_trailing_positions_only(self):
        group = _assertions(
            '(declare-const x String)(assert (str.suffixof "yz" x))'
        )
        domains = implied_domains("x", group, 4)
        assert domains[:2] == [None, None]
        assert domains[2:] == [frozenset("y"), frozenset("z")]

    def test_contains_unions_across_placements(self):
        # "ab" can sit at offset 0 or 1 in a length-3 string, so neither
        # placement's pin survives alone; the union must keep both chars
        # possible at the overlapping position.
        group = _assertions(
            "(declare-const x String)"
            '(assert (str.contains x "ab"))'
        )
        domains = implied_domains("x", group, 3)
        assert domains[1] is not None
        assert domains[1] >= frozenset("ab")

    def test_conflicting_assertions_return_none_not_unsat(self):
        # Propagation conflicts must *skip pruning*, never decide unsat:
        # the compiled length may rest on lower bounds.
        group = _assertions(
            "(declare-const x String)"
            '(assert (= x "aa"))(assert (= x "bb"))'
        )
        assert implied_domains("x", group, 2) is None

    def test_infeasible_assertion_returns_none(self):
        # A prefix longer than the candidate length has no placement.
        group = _assertions(
            '(declare-const x String)(assert (str.prefixof "abc" x))'
        )
        assert implied_domains("x", group, 2) is None

    def test_unconstrained_positions_stay_none(self):
        group = _assertions(
            "(declare-const x String)(assert (= (str.len x) 3))"
        )
        domains = implied_domains("x", group, 3)
        assert domains == [None, None, None]


# --------------------------------------------------------------------- #
# implied_bit_clamps
# --------------------------------------------------------------------- #


class TestImpliedBitClamps:
    def test_singleton_domain_clamps_all_seven_bits(self):
        clamps = implied_bit_clamps([frozenset("a")])
        bits = char_to_bits("a")
        assert clamps == {
            variable_index(0, b): int(bits[b]) for b in range(CHAR_BITS)
        }

    def test_multi_char_domain_clamps_agreeing_bits_only(self):
        clamps = implied_bit_clamps([frozenset("ab")])
        rows = [char_to_bits("a"), char_to_bits("b")]
        for bit in range(CHAR_BITS):
            values = {int(rows[0][bit]), int(rows[1][bit])}
            if len(values) == 1:
                assert clamps[variable_index(0, bit)] == values.pop()
            else:
                assert variable_index(0, bit) not in clamps
        assert 0 < len(clamps) < CHAR_BITS

    def test_none_and_empty_domains_contribute_nothing(self):
        assert implied_bit_clamps([None, frozenset()]) == {}

    def test_positions_map_to_global_indices(self):
        clamps = implied_bit_clamps([None, frozenset("z")])
        assert set(clamps) == {
            variable_index(1, b) for b in range(CHAR_BITS)
        }


# --------------------------------------------------------------------- #
# expand_states
# --------------------------------------------------------------------- #


class TestExpandStates:
    def test_reinserts_clamped_columns(self):
        reduced = np.array([[1, 0], [0, 1]], dtype=np.int8)
        expanded = expand_states(reduced, {1: 1, 3: 0}, 4)
        np.testing.assert_array_equal(
            expanded, [[1, 1, 0, 0], [0, 1, 1, 0]]
        )

    def test_roundtrips_encode_string(self):
        bits = encode_string("hi")
        clamps = {i: int(bits[i]) for i in range(7)}  # clamp first char
        reduced = bits[7:][np.newaxis, :]
        expanded = expand_states(reduced, clamps, len(bits))
        np.testing.assert_array_equal(expanded[0], bits)

    def test_rejects_wrong_reduced_width(self):
        with pytest.raises(ValueError):
            expand_states(np.zeros((1, 3), dtype=np.int8), {0: 1}, 3)

    def test_rejects_out_of_range_clamp_index(self):
        with pytest.raises(ValueError):
            expand_states(np.zeros((1, 2), dtype=np.int8), {5: 1}, 3)


# --------------------------------------------------------------------- #
# the engine, end to end
# --------------------------------------------------------------------- #


class TestRefineSolve:
    def test_equality_is_fully_determined(self):
        solver = _solver(
            '(declare-const x String)(assert (= x "hello"))(check-sat)'
        )
        result = solver.check_sat()
        assert result.status is SolveStatus.SAT
        assert result.model == {"x": "hello"}
        stats = solver.last_refine_stats
        assert stats.determined == 1
        assert stats.pruned_bits == 35
        assert stats.qubo_variables == [0]
        assert stats.fallbacks == 0

    def test_prefix_suffix_reduces_qubo(self):
        solver = _solver(
            "(declare-const x String)"
            "(assert (= (str.len x) 4))"
            '(assert (str.prefixof "ab" x))'
            '(assert (str.suffixof "d" x))'
            "(check-sat)"
        )
        result = solver.check_sat()
        assert result.status is SolveStatus.SAT
        assert result.model["x"].startswith("ab")
        assert result.model["x"].endswith("d")
        stats = solver.last_refine_stats
        # 3 of 4 positions pinned: 21 of 28 bits clamped per anneal.
        assert stats.qubo_variables[0] == 7
        assert stats.full_variables[0] == 28
        assert stats.pruned_bits >= 21

    def test_aux_bits_never_clamped(self):
        # The disequality formulation carries ancilla bits beyond the
        # string prefix; only string bits may be clamped.
        solver = _solver(
            "(declare-const y String)"
            '(assert (= y "spin"))'
            '(assert (not (= y "spun")))'
            "(check-sat)"
        )
        result = solver.check_sat()
        assert result.status is SolveStatus.SAT
        assert result.model == {"y": "spin"}
        stats = solver.last_refine_stats
        for reduced, full in zip(stats.qubo_variables, stats.full_variables):
            assert reduced >= full - 28  # at most the 28 string bits go

    def test_ground_false_stays_unsat(self):
        solver = _solver('(assert (= "a" "b"))(check-sat)')
        assert solver.check_sat().status is SolveStatus.UNSAT

    def test_zero_rounds_falls_back_immediately(self):
        solver = _solver(
            '(declare-const x String)(assert (= x "ok"))(check-sat)',
            refine_max_rounds=0,
        )
        result = solver.check_sat()
        assert result.status is SolveStatus.SAT
        stats = solver.last_refine_stats
        assert stats.rounds == 0
        assert stats.fallbacks == 1

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            QuantumSMTSolver(strategy="cegar")

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            QuantumSMTSolver(strategy="refine", refine_max_rounds=-1)
        with pytest.raises(ValueError):
            RefinementEngine(QuantumSMTSolver(**FAST), max_rounds=-1)

    def test_stats_to_dict_roundtrip(self):
        stats = RefineStats(rounds=2, pruned_bits=5, qubo_variables=[3, 3])
        d = stats.to_dict()
        assert d["rounds"] == 2
        assert d["pruned_bits"] == 5
        assert d["qubo_variables"] == [3, 3]

    def test_metrics_counters_emitted(self):
        metrics = MetricsRegistry()
        solver = _solver(
            '(declare-const x String)(assert (= x "go"))(check-sat)',
            metrics=metrics,
        )
        solver.check_sat()
        counters = metrics.snapshot().counters
        assert counters["refine.solves"] == 1
        assert counters["refine.rounds"] == 1
        assert counters["refine.pruned_bits"] == 14
        assert counters["refine.determined"] == 1


class TestRefineThroughSession:
    def test_session_refine_strategy_sat(self):
        session = SolverSession(strategy="refine", **FAST)
        session.declare_const("x")
        session.assert_term(ast.Eq(ast.StrVar("x"), ast.StrLit("qbit")))
        result = session.check_sat()
        assert result.status is SolveStatus.SAT
        assert result.model == {"x": "qbit"}

    def test_session_rejects_unknown_strategy(self):
        from repro.smt.session import SessionError

        with pytest.raises(SessionError):
            SolverSession(strategy="quantum-leap")

    def test_push_pop_with_refine(self):
        session = SolverSession(strategy="refine", **FAST)
        session.declare_const("x")
        session.assert_term(ast.Eq(ast.Length(ast.StrVar("x")), ast.IntLit(2)))
        session.push()
        session.assert_term(ast.Eq(ast.StrVar("x"), ast.StrLit("no")))
        assert session.check_sat().model == {"x": "no"}
        session.pop()
        assert session.check_sat().status is SolveStatus.SAT


class TestWarmStarts:
    """Clamp-aware warm starts: caller seeds and cross-round reuse."""

    SCRIPT = (
        "(declare-const x String)"
        "(assert (= (str.len x) 3))"
        '(assert (str.prefixof "ab" x))'
        "(check-sat)"
    )

    def test_caller_supplied_warm_states_accepted(self):
        solver = _solver(self.SCRIPT)
        warm = {"x": encode_string("abc")}
        result = solver.check_sat(warm_states=warm)
        assert result.status is SolveStatus.SAT
        assert result.model["x"].startswith("ab")

    def test_warm_state_projected_onto_surviving_bits(self, monkeypatch):
        # The initial_states handed to the sampler must have exactly the
        # reduced width (full bits minus clamped bits).
        import repro.smt.refine as refine_mod

        seen = []
        solver = _solver(self.SCRIPT)
        engine = RefinementEngine(solver, max_rounds=1)
        sampler = solver._driver.sampler
        original = sampler.sample_model

        def spy(model, **params):
            if "initial_states" in params:
                seen.append(
                    (model.num_variables, len(params["initial_states"]))
                )
            return original(model, **params)

        monkeypatch.setattr(sampler, "sample_model", spy)
        problem = solver.compile()
        result = engine.solve(problem, warm_states={"x": encode_string("abc")})
        assert result.status is SolveStatus.SAT
        assert seen, "warm state was never handed to the sampler"
        for reduced_width, warm_width in seen:
            assert warm_width == reduced_width

    def test_short_warm_state_zero_padded(self):
        solver = _solver(self.SCRIPT)
        # One character's worth of bits for a 21-bit model: the engine
        # pads with zeros instead of failing.
        result = solver.check_sat(warm_states={"x": encode_string("a")})
        assert result.status is SolveStatus.SAT

    def test_fallback_reattaches_caller_warm_states(self, monkeypatch):
        import repro.smt.refine as refine_mod

        solver = _solver(self.SCRIPT, refine_max_rounds=0)
        engine = RefinementEngine(solver, max_rounds=0)
        captured = {}
        original = solver._solve_direct

        def spy(problem, **solve_params):
            captured.update(solve_params)
            return original(problem, **solve_params)

        monkeypatch.setattr(solver, "_solve_direct", spy)
        warm = {"x": encode_string("abc")}
        result = engine.solve(solver.compile(), warm_states=warm)
        assert result.status is SolveStatus.SAT
        assert "warm_states" in captured


class TestUnsoundClampCrossCheck:
    def test_mispinned_domain_raises_typed_error(self, monkeypatch):
        # Force the propagator to derive a wrong fact: position 0 pinned
        # to "z" although the hard constraints demand "ab...". The round
        # model fails verification, the fallback finds the real model,
        # and the cross-check must refuse to return it silently.
        import repro.smt.refine as refine_mod
        from repro.smt.refine import UnsoundPropagationError

        def lying_domains(variable, assertions, length):
            return [frozenset("z")] + [None] * (length - 1)

        monkeypatch.setattr(refine_mod, "implied_domains", lying_domains)
        solver = _solver(
            "(declare-const x String)"
            "(assert (= (str.len x) 2))"
            '(assert (= x "ab"))'
            "(check-sat)"
        )
        with pytest.raises(UnsoundPropagationError, match="unsound"):
            solver.check_sat()

    def test_unsound_counter_emitted(self, monkeypatch):
        import repro.smt.refine as refine_mod
        from repro.smt.refine import UnsoundPropagationError

        def lying_domains(variable, assertions, length):
            return [frozenset("z")] + [None] * (length - 1)

        monkeypatch.setattr(refine_mod, "implied_domains", lying_domains)
        metrics = MetricsRegistry()
        solver = _solver(
            '(declare-const x String)(assert (= x "ab"))(check-sat)',
            metrics=metrics,
        )
        with pytest.raises(UnsoundPropagationError):
            solver.check_sat()
        assert metrics.snapshot().counters["refine.unsound"] == 1

    def test_sound_clamps_never_trip_the_guard(self):
        solver = _solver(
            "(declare-const x String)"
            "(assert (= (str.len x) 3))"
            '(assert (str.prefixof "ab" x))'
            "(check-sat)"
        )
        result = solver.check_sat()
        assert result.status is SolveStatus.SAT
        assert result.model["x"].startswith("ab")
