"""SMT-LIB printer: rendering + parser round trips (satellite tests)."""

import pytest

from repro.smt import ast
from repro.smt.parser import parse_script
from repro.smt.printer import PrintError, quote_string, render_script, render_term
from repro.smt.sexpr import parse_sexprs

X = ast.StrVar("x")


class TestQuoting:
    def test_plain(self):
        assert quote_string("abc") == '"abc"'

    def test_embedded_quote_doubled(self):
        assert quote_string('a"b') == '"a""b"'

    def test_empty(self):
        assert quote_string("") == '""'

    def test_round_trip_through_tokenizer(self):
        for value in ["", "a", 'she said ""hi""', 'quo"te', '"""']:
            token = parse_sexprs(f"({quote_string(value)})")[0][0]
            assert token == value


class TestRenderTerm:
    @pytest.mark.parametrize(
        "term, expected",
        [
            (ast.StrLit("ab"), '"ab"'),
            (ast.IntLit(-3), "-3"),
            (ast.Length(X), "(str.len x)"),
            (ast.Concat((X, ast.StrLit("a"))), '(str.++ x "a")'),
            (ast.Reverse(X), "(str.rev x)"),
            (ast.Contains(X, ast.StrLit("b")), '(str.contains x "b")'),
            (ast.PrefixOf(ast.StrLit("a"), X), '(str.prefixof "a" x)'),
            (ast.SuffixOf(ast.StrLit("a"), X), '(str.suffixof "a" x)'),
            (ast.At(X, ast.IntLit(0)), "(str.at x 0)"),
            (
                ast.Substr(X, ast.IntLit(1), ast.IntLit(2)),
                "(str.substr x 1 2)",
            ),
            (
                ast.IndexOf(X, ast.StrLit("a"), ast.IntLit(0)),
                '(str.indexof x "a" 0)',
            ),
            (
                ast.Replace(X, ast.StrLit("a"), ast.StrLit("b")),
                '(str.replace x "a" "b")',
            ),
            (
                ast.Replace(
                    X, ast.StrLit("a"), ast.StrLit("b"), replace_all=True
                ),
                '(str.replace_all x "a" "b")',
            ),
            (ast.Not(ast.Eq(X, ast.StrLit("a"))), '(not (= x "a"))'),
            (
                ast.InRe(X, ast.ReLit("ab")),
                '(str.in_re x (str.to_re "ab"))',
            ),
            (
                ast.InRe(X, ast.RePlus(ast.ReRange("a", "c"))),
                '(str.in_re x (re.+ (re.range "a" "c")))',
            ),
            (
                ast.InRe(
                    X,
                    ast.ReConcat(
                        (
                            ast.ReLit("a"),
                            ast.ReUnion((ast.ReLit("b"), ast.ReLit("c"))),
                        )
                    ),
                ),
                '(str.in_re x (re.++ (str.to_re "a") '
                '(re.union (str.to_re "b") (str.to_re "c"))))',
            ),
        ],
    )
    def test_rendering(self, term, expected):
        assert render_term(term) == expected

    def test_unknown_node_rejected(self):
        with pytest.raises(PrintError):
            render_term(object())


class TestRenderScript:
    def test_auto_declares_free_variables_sorted(self):
        script = render_script(
            [
                ast.Eq(ast.StrVar("b"), ast.StrLit("x")),
                ast.Eq(ast.StrVar("a"), ast.StrLit("y")),
            ]
        )
        lines = script.splitlines()
        assert lines[0] == "(declare-const a String)"
        assert lines[1] == "(declare-const b String)"
        assert lines[-1] == "(check-sat)"

    def test_header_and_logic(self):
        script = render_script(
            [ast.Eq(X, ast.StrLit("a"))], logic="QF_S", header=["provenance", ""]
        )
        assert script.startswith("; provenance\n;\n(set-logic QF_S)\n")

    def test_parser_round_trip(self):
        assertions = [
            ast.Eq(ast.Length(X), ast.IntLit(3)),
            ast.Not(ast.Eq(X, ast.StrLit('a"b'))),
            ast.Eq(
                X,
                ast.Concat((ast.StrLit("ab"), ast.Reverse(ast.StrLit("dc")))),
            ),
            ast.InRe(X, ast.RePlus(ast.ReRange("a", "z"))),
        ]
        parsed = parse_script(render_script(assertions))
        assert [repr(a) for a in parsed.assertions] == [
            repr(a) for a in assertions
        ]
        assert parsed.string_variables() == ["x"]
