import pytest

from repro.smt import ast
from repro.smt.dpllt import DpllTSolver
from repro.smt.parser import parse_script
from repro.smt.theory import eval_formula


def _atoms(*bodies, decls="(declare-const x String)"):
    out = []
    for body in bodies:
        out.extend(parse_script(decls + f"(assert {body})").assertions)
    return out


class TestConjunction:
    def test_consistent_conjunction_sat(self):
        atoms = _atoms('(= (str.len x) 3)', '(str.contains x "ab")')
        result = DpllTSolver(atoms).solve()
        assert result.status == "sat"
        assert len(result.model["x"]) == 3
        assert "ab" in result.model["x"]

    def test_inconsistent_conjunction_unsat(self):
        atoms = _atoms('(= x "aa")', '(= x "bb")')
        result = DpllTSolver(atoms).solve()
        assert result.status == "unsat"

    def test_model_satisfies_all_atoms(self):
        atoms = _atoms('(= (str.len x) 2)', '(str.contains x "z")')
        result = DpllTSolver(atoms).solve()
        assert result.status == "sat"
        for atom in atoms:
            assert eval_formula(atom, result.model)


class TestBooleanStructure:
    def test_disjunction_picks_consistent_branch(self):
        # (a1 and a2) inconsistent; clause structure allows a3 instead.
        atoms = _atoms('(= x "aa")', '(= x "bb")', '(= x "cc")')
        solver = DpllTSolver(atoms, clauses=[[1, 3], [2, 3]])
        result = solver.solve()
        assert result.status == "sat"
        assert result.model["x"] == "cc"

    def test_negated_atom_respected(self):
        # Clause forces atom 1 false: not (x = "a"), with len 1.
        atoms = _atoms('(= x "a")', "(= (str.len x) 1)")
        solver = DpllTSolver(atoms, clauses=[[-1], [2]])
        result = solver.solve()
        assert result.status == "sat"
        assert result.model["x"] != "a"
        assert len(result.model["x"]) == 1

    def test_exclusive_choice(self):
        atoms = _atoms('(= x "left")', '(= x "right")')
        solver = DpllTSolver(atoms, clauses=[[1, 2], [-1, -2]])
        result = solver.solve()
        assert result.status == "sat"
        assert result.model["x"] in ("left", "right")

    def test_all_branches_blocked_unsat(self):
        # Both branches theory-inconsistent with the shared atom.
        atoms = _atoms('(= x "aa")', '(= x "bb")', "(= (str.len x) 3)")
        solver = DpllTSolver(atoms, clauses=[[1, 2], [3]])
        result = solver.solve()
        assert result.status == "unsat"
        assert result.theory_calls >= 2


class TestBudgets:
    def test_theory_call_budget(self):
        atoms = _atoms('(= x "aa")', '(= x "bb")', "(= (str.len x) 3)")
        solver = DpllTSolver(atoms, clauses=[[1, 2], [3]], max_theory_calls=1)
        result = solver.solve()
        assert result.status == "unknown"

    def test_validation(self):
        with pytest.raises(ValueError):
            DpllTSolver([])
        atoms = _atoms('(= x "a")')
        with pytest.raises(ValueError):
            DpllTSolver(atoms, clauses=[[5]])
        with pytest.raises(ValueError):
            DpllTSolver(atoms, max_theory_calls=0)
