"""Fault injection for the refinement loop's soundness guards.

Three failure families, each pinned to its contracted surface:

* an **unsound propagator** (wrong "implied" bits injected at the
  monkeypatchable :func:`repro.smt.refine.implied_bit_clamps` seam) must
  be caught by the model cross-check and surfaced as the typed
  :class:`~repro.smt.refine.UnsoundPropagationError` — never a silent
  ``unsat``/wrong ``sat``;
* **lemma-push failures** (the session frame stack refusing a push) must
  degrade to the unrefined fallback, accounted under
  ``refine.lemma_push_failures`` + ``refine.fallbacks``;
* **round-budget exhaustion** with live lemmas must likewise fall back
  and still answer correctly.
"""

from types import SimpleNamespace

import pytest

import repro.smt.refine as refine_mod
from repro.service.metrics import MetricsRegistry
from repro.smt.refine import RefinementEngine, UnsoundPropagationError
from repro.smt.session import SessionError, SolverSession
from repro.smt.solver import QuantumSMTSolver, SmtResult
from repro.smt.status import SolveStatus

FAST = dict(num_reads=24, sampler_params={"num_sweeps": 200}, seed=7)

SCRIPT = '(declare-const x String)(assert (= x "ab"))(check-sat)'


def _solver(metrics=None, **overrides):
    kwargs = dict(FAST, strategy="refine", metrics=metrics)
    kwargs.update(overrides)
    return QuantumSMTSolver.from_script_text(SCRIPT, **kwargs)


class TestUnsoundPropagation:
    def test_wrong_clamp_raises_typed_error(self, monkeypatch):
        # 'a' has MSB 1 (0x61 = 1100001); claim bit 0 of position 0 is 0.
        # Every refined round then anneals in a subspace excluding the
        # real model; the fallback finds "ab", and the cross-check must
        # catch the contradiction instead of answering quietly.
        real = refine_mod.implied_bit_clamps

        def unsound(domains):
            clamps = dict(real(domains))
            if clamps:
                clamps[0] = 1 - clamps.get(0, 1)
            return clamps

        monkeypatch.setattr(refine_mod, "implied_bit_clamps", unsound)
        metrics = MetricsRegistry()
        solver = _solver(metrics=metrics, refine_max_rounds=1)
        with pytest.raises(UnsoundPropagationError) as excinfo:
            solver.check_sat()
        assert "unsound" in str(excinfo.value)
        assert metrics.snapshot().counters["refine.unsound"] == 1

    def test_never_silent_unsat(self, monkeypatch):
        # Same injection; the loop must never convert a propagation
        # artifact into an unsat (or a wrong sat) answer.
        real = refine_mod.implied_bit_clamps
        monkeypatch.setattr(
            refine_mod,
            "implied_bit_clamps",
            lambda domains: {
                **real(domains),
                0: 1 - real(domains).get(0, 1),
            },
        )
        solver = _solver(refine_max_rounds=2)
        try:
            result = solver.check_sat()
        except UnsoundPropagationError:
            return  # the contracted loud failure
        assert result.status is not SolveStatus.UNSAT
        if result.status is SolveStatus.SAT:
            assert result.model == {"x": "ab"}

    def test_sound_run_does_not_trip_the_guard(self):
        metrics = MetricsRegistry()
        result = _solver(metrics=metrics).check_sat()
        assert result.status is SolveStatus.SAT
        assert "refine.unsound" not in metrics.snapshot().counters


class TestLemmaPushFailure:
    def test_push_failure_falls_back_with_accounting(self, monkeypatch):
        # A round that yields a provably-bad witness triggers a lemma
        # push; the session refusing it must break to the fallback.
        def failed_round(self, current, base, warm, clamp_log, params):
            return SmtResult(
                status=SolveStatus.UNKNOWN,
                solve_results={"x": SimpleNamespace(output="zz")},
                reason="injected failed round",
            )

        def refuse_push(self):
            raise SessionError("injected push failure")

        monkeypatch.setattr(RefinementEngine, "_solve_round", failed_round)
        monkeypatch.setattr(SolverSession, "push", refuse_push)
        metrics = MetricsRegistry()
        result = _solver(metrics=metrics).check_sat()
        assert result.status is SolveStatus.SAT
        assert result.model == {"x": "ab"}
        counters = metrics.snapshot().counters
        assert counters["refine.lemma_push_failures"] == 1
        assert counters["refine.fallbacks"] == 1
        assert counters.get("refine.lemmas", 0) == 0


class TestRoundBudgetExhaustion:
    def test_live_lemmas_every_round_still_falls_back(self, monkeypatch):
        # Each round produces a fresh bogus witness, so lemmas keep
        # flowing until the budget runs out; the answer must come from
        # the guaranteed fallback.
        calls = {"n": 0}

        def bogus_round(self, current, base, warm, clamp_log, params):
            calls["n"] += 1
            return SmtResult(
                status=SolveStatus.UNKNOWN,
                solve_results={
                    "x": SimpleNamespace(output=f"z{calls['n']}")
                },
                reason="injected failed round",
            )

        monkeypatch.setattr(RefinementEngine, "_solve_round", bogus_round)
        metrics = MetricsRegistry()
        solver = _solver(metrics=metrics, refine_max_rounds=3)
        result = solver.check_sat()
        assert result.status is SolveStatus.SAT
        assert result.model == {"x": "ab"}
        stats = solver.last_refine_stats
        assert stats.rounds == 3
        assert stats.lemmas == 3
        assert stats.fallbacks == 1
        assert metrics.snapshot().counters["refine.fallbacks"] == 1

    def test_unproductive_round_breaks_early(self, monkeypatch):
        # No decoded witness at all -> no lemma -> a single round, then
        # fallback (the budget is an upper bound, not a treadmill).
        def empty_round(self, current, base, warm, clamp_log, params):
            return SmtResult(
                status=SolveStatus.UNKNOWN,
                reason="injected: nothing decoded",
            )

        monkeypatch.setattr(RefinementEngine, "_solve_round", empty_round)
        solver = _solver(refine_max_rounds=5)
        result = solver.check_sat()
        assert result.status is SolveStatus.SAT
        stats = solver.last_refine_stats
        assert stats.rounds == 1
        assert stats.fallbacks == 1

    def test_fallback_result_matches_direct(self):
        # Budget 0: the refined solver must answer bit-identically to a
        # direct solver at the same seed (the fallback identity).
        refined = _solver(refine_max_rounds=0).check_sat()
        direct = QuantumSMTSolver.from_script_text(
            SCRIPT, strategy="direct", **FAST
        ).check_sat()
        assert str(refined.status) == str(direct.status)
        assert refined.model == direct.model
        assert {
            n: r.energy for n, r in refined.solve_results.items()
        } == {n: r.energy for n, r in direct.solve_results.items()}
