import pytest

from repro.smt.sexpr import SExprError, Symbol, parse_sexprs, tokenize


class TestTokenize:
    def test_symbols_and_ints(self):
        tokens = tokenize("foo 42 -3 str.++")
        assert tokens == [Symbol("foo"), 42, -3, Symbol("str.++")]
        assert isinstance(tokens[0], Symbol)

    def test_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens == ["hello world"]
        assert not isinstance(tokens[0], Symbol)

    def test_escaped_quote(self):
        assert tokenize('"say ""hi"""') == ['say "hi"']

    def test_string_containing_parens_not_structural(self):
        exprs = parse_sexprs('(f "(")')
        assert exprs == [[Symbol("f"), "("]]

    def test_comments_stripped(self):
        assert tokenize("a ; comment here\n b") == [Symbol("a"), Symbol("b")]

    def test_unterminated_string(self):
        with pytest.raises(SExprError):
            tokenize('"oops')

    def test_lone_minus_is_symbol(self):
        assert tokenize("-") == [Symbol("-")]


class TestParseSexprs:
    def test_nested(self):
        exprs = parse_sexprs("(a (b 1) 2)")
        assert exprs == [[Symbol("a"), [Symbol("b"), 1], 2]]

    def test_multiple_top_level(self):
        exprs = parse_sexprs("(a) (b)")
        assert len(exprs) == 2

    def test_bare_atom_at_top_level(self):
        assert parse_sexprs("foo") == [Symbol("foo")]

    def test_empty_input(self):
        assert parse_sexprs("") == []

    def test_empty_list(self):
        assert parse_sexprs("()") == [[]]

    def test_unbalanced_open(self):
        with pytest.raises(SExprError):
            parse_sexprs("(a (b)")

    def test_unbalanced_close(self):
        with pytest.raises(SExprError):
            parse_sexprs("a)")

    def test_smtlib_snippet(self):
        exprs = parse_sexprs('(assert (= x "hi"))')
        assert exprs == [[Symbol("assert"), [Symbol("="), Symbol("x"), "hi"]]]
