import pytest

from repro.smt.classical import ClassicalStringSolver
from repro.smt.generator import InstanceGenerator
from repro.smt.parser import parse_script
from repro.smt.theory import eval_formula


class TestSatisfiableInstances:
    def test_witness_satisfies_assertions(self):
        gen = InstanceGenerator(seed=0)
        for _ in range(20):
            inst = gen.generate()
            assert inst.satisfiable
            for assertion in inst.assertions:
                assert eval_formula(assertion, inst.witness), assertion

    def test_script_parses_back_to_same_assertions(self):
        gen = InstanceGenerator(seed=1)
        for _ in range(10):
            inst = gen.generate()
            script = parse_script(inst.script)
            assert script.assertions == inst.assertions

    def test_classical_solver_agrees(self):
        gen = InstanceGenerator(seed=2, max_length=6)
        for _ in range(10):
            inst = gen.generate()
            result = ClassicalStringSolver().solve(inst.assertions)
            assert result.status == "sat"
            for assertion in inst.assertions:
                assert eval_formula(assertion, result.model)

    def test_quantum_solver_agrees(self):
        from repro.smt.solver import QuantumSMTSolver

        gen = InstanceGenerator(seed=3, max_length=5, max_constraints=2)
        inst = gen.generate()
        solver = QuantumSMTSolver(
            seed=4, num_reads=48, max_attempts=5,
            sampler_params={"num_sweeps": 500},
        )
        solver.declare_const("x")
        for assertion in inst.assertions:
            solver.add_assertion(assertion)
        result = solver.check_sat()
        assert result.status == "sat"

    def test_lengths_in_range(self):
        gen = InstanceGenerator(min_length=4, max_length=4, seed=5)
        for _ in range(5):
            inst = gen.generate()
            assert len(inst.witness["x"]) == 4


class TestUnsatInstances:
    def test_unsat_by_construction(self):
        gen = InstanceGenerator(seed=6)
        for _ in range(10):
            inst = gen.generate_unsat()
            assert not inst.satisfiable
            result = ClassicalStringSolver().solve(inst.assertions)
            assert result.status == "unsat"

    def test_script_round_trip(self):
        inst = InstanceGenerator(seed=7).generate_unsat()
        script = parse_script(inst.script)
        assert script.assertions == inst.assertions


class TestValidation:
    def test_bad_lengths(self):
        with pytest.raises(ValueError):
            InstanceGenerator(min_length=0)
        with pytest.raises(ValueError):
            InstanceGenerator(min_length=5, max_length=3)
        with pytest.raises(ValueError):
            InstanceGenerator(max_constraints=0)

class TestOpTargetedGeneration:
    """The ops= extension covering every §4.1–§4.12 operator family."""

    def test_all_ops_round_trip_through_printer_and_parser(self):
        from repro.smt.generator import ALL_OPS

        gen = InstanceGenerator(seed=20, ops="all", max_length=4)
        seen = set()
        for _ in range(150):
            inst = gen.generate()
            seen.update(inst.ops)
            parsed = parse_script(inst.script)
            assert parsed.assertions == inst.assertions
            for assertion in inst.assertions:
                assert eval_formula(assertion, inst.witness), assertion
        assert seen == set(ALL_OPS)

    def test_op_subset_respected(self):
        gen = InstanceGenerator(seed=21, ops=["reverse", "length"])
        for _ in range(10):
            inst = gen.generate()
            assert set(inst.ops) <= {"reverse", "length"}

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            InstanceGenerator(ops=["frobnicate"])

    def test_unsat_round_trip_in_ops_mode(self):
        gen = InstanceGenerator(seed=22, ops="all")
        for _ in range(10):
            inst = gen.generate_unsat()
            assert parse_script(inst.script).assertions == inst.assertions
            assert ClassicalStringSolver().solve(inst.assertions).status == "unsat"


class TestSeedStability:
    def test_same_seed_same_instances(self):
        a = InstanceGenerator(seed=33, ops="all")
        b = InstanceGenerator(seed=33, ops="all")
        for _ in range(10):
            ia, ib = a.generate(), b.generate()
            assert ia.assertions == ib.assertions
            assert ia.witness == ib.witness
            assert ia.script == ib.script
            assert ia.ops == ib.ops

    def test_legacy_mode_rng_pattern_unchanged(self):
        # ops=None must consume the RNG exactly as the historical
        # generator did, so archived seeds reproduce identical instances.
        # (values pinned against the pre-refactor generator at seed 0).
        inst = InstanceGenerator(seed=0).generate()
        assert inst.witness == {"x": "feccaaab"}
        assert '(assert (= (str.len x) 8))' in inst.script
        assert '(assert (str.suffixof "ccaaab" x))' in inst.script


class TestSessionMode:
    def test_sessions_validation(self):
        with pytest.raises(ValueError):
            InstanceGenerator(seed=0, sessions=0)

    def test_query_count_and_expected_statuses(self):
        gen = InstanceGenerator(seed=5, sessions=4)
        for _ in range(10):
            inst = gen.generate()
            script = parse_script(inst.script)
            checks = sum(
                1 for command, _ in script.commands if command == "check-sat"
            )
            assert checks == 4
            assert len(inst.expected_statuses) == 4
            assert inst.expected_statuses[0] == "sat"
            assert inst.satisfiable

    def test_scripts_never_over_pop(self):
        from repro.smt.session import iter_check_states

        gen = InstanceGenerator(seed=9, sessions=6)
        for _ in range(10):
            script = parse_script(gen.generate().script)
            # iter_check_states raises SessionError on any over-pop.
            states = list(iter_check_states(script))
            assert len(states) == 6

    def test_witness_satisfies_every_expected_sat_query(self):
        from repro.smt.session import iter_check_states

        gen = InstanceGenerator(seed=21, sessions=5)
        for _ in range(10):
            inst = gen.generate()
            script = parse_script(inst.script)
            for index, flattened in iter_check_states(script):
                if inst.expected_statuses[index] != "sat":
                    continue
                assert all(
                    eval_formula(term, inst.witness) for term in flattened
                ), f"witness fails expected-sat query {index}"

    def test_expected_unsat_queries_have_a_live_contradiction(self):
        # The classical solver must agree with the planted expectation.
        from repro.smt.session import iter_check_states

        gen = InstanceGenerator(seed=2, max_length=3, sessions=4)
        solver = ClassicalStringSolver()
        for _ in range(5):
            inst = gen.generate()
            script = parse_script(inst.script)
            for index, flattened in iter_check_states(script):
                status = solver.solve(flattened).status
                assert status == inst.expected_statuses[index]

    def test_legacy_rng_stream_is_untouched_by_session_mode(self):
        # The sessions= feature must not perturb legacy instance streams:
        # this digest was computed before session mode existed.
        import hashlib

        h = hashlib.sha256()
        gen = InstanceGenerator(seed=42)
        for _ in range(5):
            inst = gen.generate()
            h.update(inst.script.encode())
            h.update(repr(sorted(inst.witness.items())).encode())
        h.update(gen.generate_unsat().script.encode())
        gen = InstanceGenerator(seed=11, ops="all")
        for _ in range(5):
            h.update(gen.generate().script.encode())
        for _ in range(3):
            h.update(gen.generate_unsat().script.encode())
        assert h.hexdigest() == (
            "902c250bb2d4d5e1665272f8c6675a2bd2f021391cbe2d5c47d4c33911cba8af"
        )
