"""Edge coverage backfill for the SAT core and the DPLL(T) driver.

Pins the corners the mainline suites skip: conflicts at decision level 0
(unit-clause contradictions resolved before any branching), restart
behaviour on conflict-heavy instances (learned clauses must survive the
trail rewind), theory-lemma deduplication, and the duplicate-lemma guard
that turns a misbehaving SAT core into a diagnosed ``unknown`` instead
of an infinite learn loop.
"""

from dataclasses import dataclass, field
from typing import Dict, List

import pytest

import repro.smt.dpllt as dpllt_mod
from repro.smt.dpll import CdclSolver
from repro.smt.dpllt import DpllTSolver
from repro.smt.parser import parse_script


def _atoms(*bodies, decls="(declare-const x String)"):
    out = []
    for body in bodies:
        out.extend(parse_script(decls + f"(assert {body})").assertions)
    return out


def _pigeonhole(pigeons: int, holes: int) -> List[List[int]]:
    """PHP CNF: pigeon p in some hole; no hole holds two pigeons."""

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


# --------------------------------------------------------------------- #
# CdclSolver edges
# --------------------------------------------------------------------- #


class TestConflictAtLevelZero:
    def test_unit_contradiction_needs_no_decisions(self):
        result = CdclSolver(1, [[1], [-1]]).solve()
        assert not result.satisfiable
        assert result.decisions == 0

    def test_propagated_contradiction_at_root(self):
        # 1 is forced, 1 -> 2, 1 -> -2: the conflict surfaces during
        # root-level propagation, before the first decision.
        result = CdclSolver(2, [[1], [-1, 2], [-1, -2]]).solve()
        assert not result.satisfiable
        assert result.decisions == 0

    def test_learned_unit_backtracks_to_root(self):
        # Branch-heavy but satisfiable: conflicts drive learned units
        # back to level 0 and the solve must still land on a model.
        clauses = [[1, 2], [1, -2], [-1, 2, 3], [-1, 2, -3]]
        result = CdclSolver(3, clauses).solve()
        assert result.satisfiable
        for clause in clauses:
            assert any(
                result.assignment[abs(l)] == (l > 0) for l in clause
            )


class TestRestartsCarryLearnedClauses:
    def test_php_unsat_across_restarts(self):
        # Pigeonhole 6->5 generates enough conflicts to cross the Luby
        # restart thresholds; unsatisfiability must survive every trail
        # rewind, which it only can if learned clauses are carried over.
        result = CdclSolver(30, _pigeonhole(6, 5)).solve()
        assert not result.satisfiable
        assert result.conflicts > 0
        assert result.restarts > 0

    def test_sat_instance_correct_after_restarts(self):
        # Near-PHP but satisfiable (equal pigeons and holes): the model
        # found after restarts must genuinely satisfy the CNF.
        clauses = _pigeonhole(4, 4)
        result = CdclSolver(16, clauses).solve()
        assert result.satisfiable
        for clause in clauses:
            assert any(
                result.assignment[abs(l)] == (l > 0) for l in clause
            )


# --------------------------------------------------------------------- #
# DPLL(T) lemma accounting
# --------------------------------------------------------------------- #


class _AlwaysUnsatTheory:
    """Rejects every conjunction — drives maximal lemma learning."""

    def __init__(self):
        self.calls = 0

    def solve(self, assertions):
        self.calls += 1

        @dataclass
        class _Out:
            status: str = "unsat"
            model: Dict[str, str] = field(default_factory=dict)

        return _Out()


class TestTheoryLemmaDedup:
    def test_lemmas_are_distinct_until_exhaustion(self):
        # 2 free atoms => 4 assignments; a theory rejecting all of them
        # must learn exactly 4 distinct lemmas then conclude unsat.
        atoms = _atoms('(= x "aa")', '(= x "bb")')
        theory = _AlwaysUnsatTheory()
        solver = DpllTSolver(
            atoms, clauses=[[1, -1]], theory_solver=theory
        )
        result = solver.solve()
        assert result.status == "unsat"
        assert result.lemmas_learned == 4
        assert theory.calls == 4
        assert result.reason == "boolean abstraction exhausted"

    def test_sat_result_reports_lemmas(self):
        # The first candidate assignment is rejected (one lemma), the
        # second accepted — the sat result must surface the count.
        class _RejectFirst:
            def __init__(self):
                self.calls = 0

            def solve(self, assertions):
                self.calls += 1
                first = self.calls == 1

                @dataclass
                class _Out:
                    status: str = "unsat" if first else "sat"
                    model: Dict[str, str] = field(
                        default_factory=lambda: {} if first else {"x": "aa"}
                    )

                return _Out()

        atoms = _atoms('(= x "aa")', '(= x "bb")')
        result = DpllTSolver(
            atoms, clauses=[[1, 2]], theory_solver=_RejectFirst()
        ).solve()
        assert result.status == "sat"
        assert result.lemmas_learned == 1
        assert result.theory_calls == 2

    def test_budget_exhaustion_reports_lemma_count(self):
        atoms = _atoms('(= x "aa")', '(= x "bb")')
        solver = DpllTSolver(
            atoms,
            clauses=[[1, -1]],
            theory_solver=_AlwaysUnsatTheory(),
            max_theory_calls=2,
        )
        result = solver.solve()
        assert result.status == "unknown"
        assert result.lemmas_learned == 2
        assert "budget" in result.reason


class TestDuplicateLemmaGuard:
    def test_broken_sat_core_diagnosed_not_looped(self, monkeypatch):
        # A SAT core ignoring learned clauses would re-propose the same
        # assignment forever; the driver must detect the repeat lemma and
        # answer unknown with a diagnosis instead of spinning to the
        # theory-call budget.
        class _StuckCore:
            def __init__(self, num_vars, clauses):
                self.num_vars = num_vars

            def solve(self):
                @dataclass
                class _Boolean:
                    satisfiable: bool = True
                    assignment: Dict[int, bool] = field(
                        default_factory=lambda: {1: True}
                    )

                return _Boolean()

        monkeypatch.setattr(dpllt_mod, "CdclSolver", _StuckCore)
        atoms = _atoms('(= x "aa")')
        theory = _AlwaysUnsatTheory()
        solver = DpllTSolver(
            atoms, theory_solver=theory, max_theory_calls=64
        )
        result = solver.solve()
        assert result.status == "unknown"
        assert "duplicate theory lemma" in result.reason
        assert theory.calls == 2  # one learn, one repeat — never 64
        assert result.lemmas_learned == 1
