import pytest

from repro.smt import ast
from repro.smt.parser import ParseError, parse_script
from repro.smt.sexpr import SExprError


class TestDeclarations:
    def test_declare_const(self):
        script = parse_script("(declare-const x String)")
        assert script.declarations == {"x": ast.StringSort}
        assert script.string_variables() == ["x"]

    def test_declare_fun_zero_ary(self):
        script = parse_script("(declare-fun y () String)")
        assert script.declarations["y"] is ast.StringSort

    def test_declare_fun_with_args_rejected(self):
        with pytest.raises(ParseError):
            parse_script("(declare-fun f (Int) String)")

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ParseError):
            parse_script("(declare-const x String)(declare-const x String)")

    def test_unsupported_sort_rejected(self):
        with pytest.raises(ParseError):
            parse_script("(declare-const a (Array Int Int))")

    def test_set_logic_recorded(self):
        script = parse_script("(set-logic QF_S)")
        assert script.logic == "QF_S"


class TestTermParsing:
    def _parse_assert(self, body, decls="(declare-const x String)"):
        return parse_script(f"{decls}(assert {body})").assertions[0]

    def test_equality_with_literal(self):
        term = self._parse_assert('(= x "hello")')
        assert term == ast.Eq(ast.StrVar("x"), ast.StrLit("hello"))

    def test_concat(self):
        term = self._parse_assert('(= x (str.++ "a" "b" "c"))')
        assert isinstance(term.rhs, ast.Concat)
        assert len(term.rhs.parts) == 3

    def test_length(self):
        term = self._parse_assert("(= (str.len x) 5)")
        assert term == ast.Eq(ast.Length(ast.StrVar("x")), ast.IntLit(5))

    def test_contains(self):
        term = self._parse_assert('(str.contains x "cat")')
        assert isinstance(term, ast.Contains)

    def test_indexof_two_and_three_args(self):
        t2 = self._parse_assert('(= (str.indexof x "a") 0)')
        assert t2.lhs.start == ast.IntLit(0)
        t3 = self._parse_assert('(= (str.indexof x "a" 2) 3)')
        assert t3.lhs.start == ast.IntLit(2)

    def test_replace_variants(self):
        first = self._parse_assert('(= x (str.replace "ll" "l" "x"))')
        assert not first.rhs.replace_all
        every = self._parse_assert('(= x (str.replace_all "ll" "l" "x"))')
        assert every.rhs.replace_all

    def test_reverse(self):
        term = self._parse_assert('(= x (str.rev "abc"))')
        assert isinstance(term.rhs, ast.Reverse)

    def test_in_re_with_constructors(self):
        term = self._parse_assert(
            '(str.in_re x (re.++ (str.to_re "a") '
            '(re.+ (re.union (str.to_re "b") (str.to_re "c")))))'
        )
        assert isinstance(term, ast.InRe)
        assert isinstance(term.regex, ast.ReConcat)

    def test_re_range(self):
        term = self._parse_assert('(str.in_re x (re.range "a" "z"))')
        assert term.regex == ast.ReRange("a", "z")

    def test_and_flattened(self):
        script = parse_script(
            '(declare-const x String)'
            '(assert (and (= (str.len x) 3) (str.contains x "a")))'
        )
        assert len(script.assertions) == 2

    def test_nested_and_flattened(self):
        script = parse_script(
            "(declare-const x String)"
            '(assert (and (and (= x "a") (= x "b")) (= x "c")))'
        )
        assert len(script.assertions) == 3

    def test_and_below_not_rejected(self):
        with pytest.raises(ParseError):
            parse_script(
                '(declare-const x String)(assert (not (and (= x "a") (= x "b"))))'
            )

    def test_not(self):
        term = self._parse_assert('(not (= x "a"))')
        assert isinstance(term, ast.Not)

    def test_undeclared_symbol_rejected(self):
        with pytest.raises(ParseError):
            parse_script('(assert (= y "a"))')

    def test_unknown_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_script('(declare-const x String)(assert (str.to_lower x))')

    def test_wrong_arity_rejected(self):
        with pytest.raises(ParseError):
            parse_script("(declare-const x String)(assert (str.len))")


class TestCommands:
    def test_command_sequence(self):
        script = parse_script(
            '(set-logic QF_S)(declare-const x String)'
            '(assert (= x "a"))(check-sat)(get-model)(exit)'
        )
        kinds = [kind for kind, _ in script.commands]
        assert kinds == [
            "set-logic",
            "declare-const",
            "assert",
            "check-sat",
            "get-model",
            "exit",
        ]

    def test_get_value(self):
        script = parse_script(
            "(declare-const x String)(get-value (x))"
        )
        kind, terms = script.commands[-1]
        assert kind == "get-value"
        assert terms == [ast.StrVar("x")]

    def test_unsupported_command(self):
        with pytest.raises(ParseError):
            parse_script("(define-sort MySort () String)")

    def test_push_pop_commands(self):
        script = parse_script("(push 1)(pop 1)(push)(pop)")
        assert script.commands == [
            ("push", 1),
            ("pop", 1),
            ("push", 1),
            ("pop", 1),
        ]

    def test_push_invalid_argument(self):
        with pytest.raises(ParseError):
            parse_script("(push -1)")

    def test_bare_atom_rejected(self):
        with pytest.raises(ParseError):
            parse_script("check-sat")

    def test_set_option_tolerated(self):
        script = parse_script('(set-option :produce-models true)')
        assert script.commands[0][0] == "set-option"


class TestExceptionPaths:
    """Truncated and garbage scripts must raise typed, catchable errors.

    The serving layer (``repro.server``) catches ``ParseError`` and
    ``SExprError`` at its boundary and maps them to structured
    ``error: parse`` envelopes — these tests pin that every malformed-input
    shape surfaces as one of those two types (both ``ValueError``
    subclasses), never as a crash or a raw ``IndexError``/``TypeError``.
    """

    TRUNCATED = [
        '(assert (= x "unterminated',
        "(declare-const x String",
        "(assert (= x",
        "(assert",
        "(",
        '(declare-const x String)(assert (str.contains x "a',
    ]

    GARBAGE = [
        ")",
        ")))",
        "(check-sat))",
        "\x00\x01\x02 binary junk (((",
        "(1234 5678)",
        "(())",
        '("literal-as-command")',
        "(assert)",
        "(declare-const)",
        "(str.++)",
    ]

    @pytest.mark.parametrize("script", TRUNCATED)
    def test_truncated_scripts_raise_typed_errors(self, script):
        with pytest.raises((ParseError, SExprError)):
            parse_script(script)

    @pytest.mark.parametrize("script", GARBAGE)
    def test_garbage_scripts_raise_typed_errors(self, script):
        with pytest.raises((ParseError, SExprError)):
            parse_script(script)

    def test_both_error_types_are_value_errors(self):
        # The server boundary relies on this for a single catch site.
        assert issubclass(ParseError, ValueError)
        assert issubclass(SExprError, ValueError)

    def test_unterminated_string_reports_offset(self):
        with pytest.raises(SExprError, match="offset 13"):
            parse_script('(assert (= x "unterminated')

    def test_unbalanced_open_reports_depth(self):
        with pytest.raises(SExprError, match="unclosed"):
            parse_script("(assert ((")

    def test_undeclared_symbol_message_names_the_symbol(self):
        with pytest.raises(ParseError, match="'y'"):
            parse_script('(declare-const x String)(assert (= y "a"))')
