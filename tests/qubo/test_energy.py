import numpy as np
import pytest

from repro.qubo.energy import (
    ising_energies,
    ising_energy,
    qubo_energies,
    qubo_energies_dict,
    qubo_energy,
)


class TestQuboEnergies:
    def test_single_state(self):
        q = np.array([[1.0, 2.0], [0.0, -1.0]])
        # x = [1, 1]: 1 + 2 - 1 = 2
        assert qubo_energy(np.array([1, 1]), q) == pytest.approx(2.0)

    def test_zero_state_gives_offset(self):
        q = np.ones((3, 3))
        assert qubo_energy(np.zeros(3), q, offset=4.5) == pytest.approx(4.5)

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(1)
        q = rng.normal(size=(5, 5))
        states = rng.integers(0, 2, size=(8, 5))
        batch = qubo_energies(states, q)
        singles = [qubo_energy(s, q) for s in states]
        np.testing.assert_allclose(batch, singles)

    def test_triangle_convention_irrelevant(self):
        rng = np.random.default_rng(2)
        upper = np.triu(rng.normal(size=(4, 4)))
        lower = np.tril(upper.T, k=-1) + np.diag(np.diag(upper))
        states = rng.integers(0, 2, size=(6, 4))
        np.testing.assert_allclose(
            qubo_energies(states, upper), qubo_energies(states, lower)
        )

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            qubo_energies(np.zeros((2, 3)), np.zeros((4, 4)))


class TestQuboEnergiesDict:
    def test_matches_dense(self):
        rng = np.random.default_rng(3)
        coeffs = {(0, 0): -1.0, (0, 2): 2.0, (1, 2): -3.0}
        from repro.qubo.matrix import dense_from_dict

        q = dense_from_dict(coeffs, 3)
        states = rng.integers(0, 2, size=(7, 3))
        np.testing.assert_allclose(
            qubo_energies_dict(states, coeffs), qubo_energies(states, q)
        )

    def test_single_state_dict(self):
        value = qubo_energies_dict(np.array([1, 0]), {(0, 0): 2.0}, offset=1.0)
        assert float(value) == pytest.approx(3.0)


class TestIsingEnergies:
    def test_known_value(self):
        h = np.array([1.0, -1.0])
        j = np.array([[0.0, 0.5], [0.0, 0.0]])
        # s = [+1, +1]: 1 - 1 + 0.5 = 0.5
        assert ising_energy(np.array([1, 1]), h, j) == pytest.approx(0.5)

    def test_batch(self):
        rng = np.random.default_rng(4)
        h = rng.normal(size=4)
        j = np.triu(rng.normal(size=(4, 4)), k=1)
        states = rng.choice([-1, 1], size=(5, 4))
        batch = ising_energies(states, h, j)
        singles = [ising_energy(s, h, j) for s in states]
        np.testing.assert_allclose(batch, singles)

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(ValueError):
            ising_energy(np.array([1]), np.zeros(1), np.array([[1.0]]))

    def test_offset(self):
        assert ising_energy(
            np.array([-1]), np.array([2.0]), np.zeros((1, 1)), offset=10.0
        ) == pytest.approx(8.0)
