import numpy as np
import pytest

from repro.qubo.model import QuboModel


class TestConstruction:
    def test_empty_model(self):
        m = QuboModel(0)
        assert m.num_variables == 0
        assert m.energies(np.zeros((3, 0))).shape == (3,)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            QuboModel(-1)

    def test_initial_coefficients_folded(self):
        m = QuboModel(3, {(2, 0): 1.0, (0, 2): 1.0})
        assert m.get(0, 2) == 2.0

    def test_out_of_range_initial_coefficient(self):
        with pytest.raises(IndexError):
            QuboModel(2, {(0, 5): 1.0})

    def test_repr(self):
        assert "QuboModel" in repr(QuboModel(3))


class TestAccessors:
    def test_set_and_get_linear(self):
        m = QuboModel(2)
        m.set_linear(1, -2.5)
        assert m.get(1) == -2.5

    def test_add_linear_accumulates(self):
        m = QuboModel(2)
        m.add_linear(0, 1.0)
        m.add_linear(0, 2.0)
        assert m.get(0) == 3.0

    def test_set_overwrites(self):
        m = QuboModel(2)
        m.set_linear(0, 1.0)
        m.set_linear(0, 5.0)
        assert m.get(0) == 5.0

    def test_quadratic_symmetric_key(self):
        m = QuboModel(3)
        m.set_quadratic(2, 0, 4.0)
        assert m.get(0, 2) == 4.0
        assert m.get(2, 0) == 4.0

    def test_set_quadratic_diagonal_rejected(self):
        m = QuboModel(2)
        with pytest.raises(ValueError):
            m.set_quadratic(1, 1, 1.0)

    def test_index_out_of_range(self):
        m = QuboModel(2)
        with pytest.raises(IndexError):
            m.set_linear(2, 1.0)

    def test_num_interactions(self):
        m = QuboModel(3)
        m.set_linear(0, 1.0)
        m.set_quadratic(0, 1, 1.0)
        m.set_quadratic(1, 2, 1.0)
        assert m.num_interactions == 2

    def test_linear_vector(self):
        m = QuboModel(3)
        m.set_linear(1, -7.0)
        np.testing.assert_array_equal(m.linear_vector(), [0.0, -7.0, 0.0])


class TestMatrixViews:
    def test_dense_cache_invalidated_on_mutation(self):
        m = QuboModel(2)
        m.set_linear(0, 1.0)
        first = m.to_dense()
        assert first[0, 0] == 1.0
        m.set_linear(0, 2.0)
        assert m.to_dense()[0, 0] == 2.0

    def test_from_dense_round_trip(self):
        rng = np.random.default_rng(0)
        q = np.triu(rng.normal(size=(4, 4)))
        m = QuboModel.from_dense(q, offset=1.5)
        np.testing.assert_allclose(m.to_dense(), q)
        assert m.offset == 1.5

    def test_to_dict_drops_zeros(self):
        m = QuboModel(2)
        m.set_linear(0, 0.0)
        m.set_linear(1, 3.0)
        assert m.to_dict() == {(1, 1): 3.0}

    def test_copy_is_independent(self):
        m = QuboModel(2)
        m.set_linear(0, 1.0)
        clone = m.copy()
        clone.set_linear(0, 9.0)
        assert m.get(0) == 1.0

    def test_sampler_form(self):
        m = QuboModel(2)
        m.set_linear(0, 3.0)
        m.set_quadratic(0, 1, 2.0)
        d, w = m.sampler_form()
        np.testing.assert_array_equal(d, [3.0, 0.0])
        assert w[0, 1] == w[1, 0] == 2.0
        assert w[0, 0] == 0.0


class TestSemantics:
    def test_energy_matches_matrix(self):
        rng = np.random.default_rng(1)
        q = np.triu(rng.normal(size=(5, 5)))
        m = QuboModel.from_dense(q, offset=0.25)
        x = rng.integers(0, 2, size=5)
        expected = float(x @ q @ x) + 0.25
        assert m.energy(x) == pytest.approx(expected)

    def test_equality_semantics(self):
        a = QuboModel(2, {(0, 1): 1.0})
        b = QuboModel(2, {(1, 0): 1.0})
        assert a == b

    def test_inequality_on_offset(self):
        assert QuboModel(1, offset=0.0) != QuboModel(1, offset=1.0)

    def test_interaction_graph(self):
        m = QuboModel(4)
        m.set_quadratic(0, 2, 1.0)
        g = m.interaction_graph()
        assert g.number_of_nodes() == 4
        assert g.has_edge(0, 2)
        assert not g.has_edge(0, 1)

    def test_max_abs_coefficient(self):
        m = QuboModel(2)
        assert m.max_abs_coefficient() == 0.0
        m.set_linear(0, -5.0)
        m.set_quadratic(0, 1, 2.0)
        assert m.max_abs_coefficient() == 5.0
