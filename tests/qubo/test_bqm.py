import numpy as np
import pytest

from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.model import QuboModel
from repro.qubo.vartypes import BINARY, SPIN


class TestConstruction:
    def test_from_dicts(self):
        bqm = BinaryQuadraticModel({"a": 1.0}, {("a", "b"): -2.0}, offset=0.5)
        assert bqm.num_variables == 2
        assert bqm.get_linear("a") == 1.0
        assert bqm.get_quadratic("a", "b") == -2.0
        assert bqm.offset == 0.5

    def test_add_variable_idempotent_accumulates_bias(self):
        bqm = BinaryQuadraticModel()
        bqm.add_variable("x", 1.0)
        bqm.add_variable("x", 2.0)
        assert bqm.num_variables == 1
        assert bqm.get_linear("x") == 3.0

    def test_self_loop_rejected(self):
        bqm = BinaryQuadraticModel()
        with pytest.raises(ValueError):
            bqm.add_interaction("x", "x", 1.0)

    def test_interaction_accumulates_symmetrically(self):
        bqm = BinaryQuadraticModel()
        bqm.add_interaction("u", "v", 1.0)
        bqm.add_interaction("v", "u", 2.0)
        assert bqm.get_quadratic("u", "v") == 3.0
        assert bqm.get_quadratic("v", "u") == 3.0

    def test_unknown_variable_raises(self):
        bqm = BinaryQuadraticModel()
        with pytest.raises(KeyError):
            bqm.get_linear("missing")

    def test_variables_in_insertion_order(self):
        bqm = BinaryQuadraticModel()
        for name in "cab":
            bqm.add_variable(name)
        assert bqm.variables == ["c", "a", "b"]

    def test_degree_and_adjacency(self):
        bqm = BinaryQuadraticModel()
        bqm.add_interaction("a", "b", 1.0)
        bqm.add_interaction("a", "c", 2.0)
        assert bqm.degree("a") == 2
        assert bqm.adjacency("a") == {"b": 1.0, "c": 2.0}


class TestMutation:
    def test_remove_variable(self):
        bqm = BinaryQuadraticModel()
        bqm.add_interaction("a", "b", 1.0)
        bqm.remove_variable("a")
        assert "a" not in bqm
        assert bqm.degree("b") == 0

    def test_fix_variable_energy_consistency(self):
        bqm = BinaryQuadraticModel({"a": 1.0, "b": -2.0}, {("a", "b"): 3.0})
        full = bqm.energy({"a": 1, "b": 1})
        bqm.fix_variable("a", 1)
        assert bqm.energy({"b": 1}) == pytest.approx(full)

    def test_fix_variable_invalid_value(self):
        bqm = BinaryQuadraticModel({"a": 1.0})
        with pytest.raises(ValueError):
            bqm.fix_variable("a", -1)  # BINARY model

    def test_relabel(self):
        bqm = BinaryQuadraticModel({"a": 1.0}, {("a", "b"): 2.0})
        out = bqm.relabel_variables({"a": "x"})
        assert out.get_quadratic("x", "b") == 2.0
        assert "a" not in out

    def test_relabel_collision_rejected(self):
        bqm = BinaryQuadraticModel({"a": 1.0, "b": 2.0})
        with pytest.raises(ValueError):
            bqm.relabel_variables({"a": "b"})

    def test_copy_independent(self):
        bqm = BinaryQuadraticModel({"a": 1.0})
        clone = bqm.copy()
        clone.set_linear("a", 9.0)
        assert bqm.get_linear("a") == 1.0


class TestVartypeConversion:
    def test_round_trip_preserves_energy(self):
        bqm = BinaryQuadraticModel(
            {"a": 1.0, "b": -0.5}, {("a", "b"): 2.0}, offset=0.25, vartype=BINARY
        )
        spin = bqm.change_vartype(SPIN)
        back = spin.change_vartype(BINARY)
        for xa in (0, 1):
            for xb in (0, 1):
                x = {"a": xa, "b": xb}
                s = {"a": 2 * xa - 1, "b": 2 * xb - 1}
                assert bqm.energy(x) == pytest.approx(spin.energy(s))
                assert bqm.energy(x) == pytest.approx(back.energy(x))

    def test_same_vartype_is_copy(self):
        bqm = BinaryQuadraticModel({"a": 1.0})
        clone = bqm.change_vartype(BINARY)
        assert clone is not bqm
        assert clone.get_linear("a") == 1.0


class TestQuboModelBridge:
    def test_to_qubo_model_and_back(self):
        bqm = BinaryQuadraticModel(
            {"x": -1.0, "y": 2.0}, {("x", "y"): -3.0}, offset=1.0
        )
        model, order = bqm.to_qubo_model()
        assert order == ["x", "y"]
        lifted = BinaryQuadraticModel.from_qubo_model(model, order)
        for xa in (0, 1):
            for xb in (0, 1):
                sample = {"x": xa, "y": xb}
                assert bqm.energy(sample) == pytest.approx(lifted.energy(sample))

    def test_spin_model_lowered_through_binary(self):
        bqm = BinaryQuadraticModel.from_ising({"s": 1.0}, {})
        model, order = bqm.to_qubo_model()
        # spin +1 <-> x=1: energies must agree.
        assert model.energy(np.array([1])) == pytest.approx(bqm.energy({"s": 1}))
        assert model.energy(np.array([0])) == pytest.approx(bqm.energy({"s": -1}))

    def test_from_qubo_model_label_count_mismatch(self):
        with pytest.raises(ValueError):
            BinaryQuadraticModel.from_qubo_model(QuboModel(2), ["only-one"])


class TestEnergies:
    def test_vectorized_matches_scalar(self):
        bqm = BinaryQuadraticModel({"a": 1.0, "b": -1.0}, {("a", "b"): 0.5})
        states = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
        batch = bqm.energies(states, order=["a", "b"])
        for row, (xa, xb) in zip(batch, states):
            assert row == pytest.approx(bqm.energy({"a": xa, "b": xb}))

    def test_order_must_cover_variables(self):
        bqm = BinaryQuadraticModel({"a": 1.0, "b": 1.0})
        with pytest.raises(ValueError):
            bqm.energies(np.zeros((1, 1)), order=["a"])

    def test_interaction_graph(self):
        bqm = BinaryQuadraticModel({"a": 0.0, "b": 0.0, "c": 0.0}, {("a", "b"): 1.0})
        g = bqm.interaction_graph()
        assert g.has_edge("a", "b")
        assert g.number_of_nodes() == 3
