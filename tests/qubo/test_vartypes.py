import pytest

from repro.qubo.vartypes import BINARY, SPIN, Vartype, as_vartype


class TestVartype:
    def test_values_binary(self):
        assert BINARY.values == (0, 1)

    def test_values_spin(self):
        assert SPIN.values == (-1, 1)

    def test_as_vartype_passthrough(self):
        assert as_vartype(BINARY) is BINARY

    def test_as_vartype_from_string(self):
        assert as_vartype("SPIN") is SPIN
        assert as_vartype("binary") is BINARY

    def test_as_vartype_rejects_unknown(self):
        with pytest.raises(ValueError):
            as_vartype("qutrit")

    def test_as_vartype_rejects_non_string(self):
        with pytest.raises(ValueError):
            as_vartype(3)

    def test_enum_members(self):
        assert set(Vartype) == {BINARY, SPIN}
