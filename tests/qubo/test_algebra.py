import numpy as np
import pytest

from repro.qubo.algebra import add_models, fix_variables, relabel_variables, scale_model
from repro.qubo.model import QuboModel


def _random_model(seed, n=5):
    rng = np.random.default_rng(seed)
    return QuboModel.from_dense(np.triu(rng.normal(size=(n, n))), offset=rng.normal())


class TestAddModels:
    def test_energy_additivity(self):
        a, b = _random_model(0), _random_model(1)
        combined = add_models(a, b)
        rng = np.random.default_rng(2)
        states = rng.integers(0, 2, size=(10, 5))
        np.testing.assert_allclose(
            combined.energies(states), a.energies(states) + b.energies(states)
        )

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            add_models(QuboModel(2), QuboModel(3))

    def test_inputs_unchanged(self):
        a, b = _random_model(0), _random_model(1)
        before = a.to_dict()
        add_models(a, b)
        assert a.to_dict() == before


class TestScaleModel:
    def test_energies_scale(self):
        m = _random_model(3)
        scaled = scale_model(m, 0.5)
        rng = np.random.default_rng(4)
        states = rng.integers(0, 2, size=(8, 5))
        np.testing.assert_allclose(scaled.energies(states), 0.5 * m.energies(states))

    def test_argmin_preserved(self):
        from repro.anneal import ExactSolver

        m = _random_model(5)
        scaled = scale_model(m, 0.1)
        s1, _ = ExactSolver().ground_state(m)
        s2, _ = ExactSolver().ground_state(scaled)
        np.testing.assert_array_equal(s1, s2)

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            scale_model(QuboModel(1), -1.0)

    def test_zero_factor_allowed(self):
        scaled = scale_model(_random_model(6), 0.0)
        assert scaled.max_abs_coefficient() == 0.0


class TestRelabel:
    def test_energy_preserved_under_permutation(self):
        m = _random_model(7, n=4)
        mapping = {0: 3, 1: 2, 2: 1, 3: 0}
        relabelled = relabel_variables(m, mapping, 4)
        rng = np.random.default_rng(8)
        states = rng.integers(0, 2, size=(10, 4))
        permuted = states[:, [3, 2, 1, 0]]
        np.testing.assert_allclose(
            m.energies(states), relabelled.energies(permuted)
        )

    def test_into_larger_space(self):
        m = QuboModel(2, {(0, 1): 1.0, (0, 0): -1.0})
        out = relabel_variables(m, {0: 4, 1: 7}, 10)
        assert out.num_variables == 10
        assert out.get(4, 7) == 1.0
        assert out.get(4) == -1.0

    def test_missing_mapping_rejected(self):
        with pytest.raises(KeyError):
            relabel_variables(QuboModel(2), {0: 0}, 2)

    def test_non_injective_rejected(self):
        with pytest.raises(ValueError):
            relabel_variables(QuboModel(2), {0: 1, 1: 1}, 2)

    def test_target_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            relabel_variables(QuboModel(1), {0: 5}, 2)


class TestFixVariables:
    def test_energy_consistency(self):
        m = _random_model(9, n=4)
        reduced, new_index = fix_variables(m, {1: 1, 3: 0})
        assert reduced.num_variables == 2
        rng = np.random.default_rng(10)
        for _ in range(10):
            partial = rng.integers(0, 2, size=2)
            full = np.zeros(4, dtype=int)
            full[1] = 1
            full[3] = 0
            full[0] = partial[new_index[0]]
            full[2] = partial[new_index[2]]
            assert m.energy(full) == pytest.approx(reduced.energy(partial))

    def test_fix_all_leaves_offset(self):
        m = QuboModel(2, {(0, 0): 1.0, (0, 1): 2.0}, offset=0.5)
        reduced, _ = fix_variables(m, {0: 1, 1: 1})
        assert reduced.num_variables == 0
        assert reduced.offset == pytest.approx(3.5)

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            fix_variables(QuboModel(1), {0: 2})

    def test_out_of_range_variable_rejected(self):
        with pytest.raises(IndexError):
            fix_variables(QuboModel(1), {5: 0})
