"""Unit tests for the sparse (CSR) QUBO path.

Covers the CSR container itself, the builders, the batched energy kernel,
the density diagnostics driving ``mode="auto"``, and the model-level
integration (``sampler_form`` / ``energies`` / read-only ``to_dense`` /
cache-free pickling).
"""

import pickle

import numpy as np
import pytest

from repro.core import PalindromeGeneration, StringEquality
from repro.qubo.energy import qubo_energies
from repro.qubo.matrix import split_diagonal
from repro.qubo.model import QuboModel
from repro.qubo.sparse import (
    SPARSE_DENSITY_THRESHOLD,
    SPARSE_MIN_VARIABLES,
    CsrMatrix,
    coupling_density,
    csr_from_coefficients,
    has_any_coupling,
    initial_local_fields,
    prefers_sparse,
    qubo_energies_csr,
    sparse_sampler_form,
    sparse_stats,
)


def _random_model(seed, n=12, density=0.3):
    rng = np.random.default_rng(seed)
    q = np.triu(rng.normal(size=(n, n)))
    mask = np.triu(rng.random((n, n)) < density, k=1)
    q *= mask | np.eye(n, dtype=bool)
    return QuboModel.from_dense(q, offset=float(rng.normal()))


class TestCsrMatrix:
    def test_round_trips_dense(self):
        model = _random_model(0)
        csr = csr_from_coefficients(model.to_dict(), model.num_variables)
        _, dense_coupling = split_diagonal(model.to_dense())
        np.testing.assert_allclose(csr.to_dense(), dense_coupling)

    def test_symmetric_zero_diagonal(self):
        csr = csr_from_coefficients({(0, 1): 2.0, (2, 2): 5.0}, 3)
        dense = csr.to_dense()
        np.testing.assert_allclose(dense, dense.T)
        assert np.all(np.diag(dense) == 0.0)
        assert csr.nnz == 2  # both mirror images, diagonal ignored

    def test_row_views(self):
        csr = csr_from_coefficients({(0, 1): 2.0, (0, 2): -1.0}, 3)
        cols, vals = csr.row(0)
        np.testing.assert_array_equal(cols, [1, 2])
        np.testing.assert_allclose(vals, [2.0, -1.0])
        cols, vals = csr.row(1)
        np.testing.assert_array_equal(cols, [0])
        assert len(csr.rows()) == 3

    def test_arrays_are_frozen(self):
        csr = csr_from_coefficients({(0, 1): 1.0}, 2)
        with pytest.raises(ValueError):
            csr.data[0] = 7.0
        with pytest.raises(ValueError):
            csr.indices[0] = 0

    def test_matmul_dense_matches_dense(self):
        model = _random_model(1)
        csr = csr_from_coefficients(model.to_dict(), model.num_variables)
        _, w = split_diagonal(model.to_dense())
        x = np.random.default_rng(2).integers(
            0, 2, size=(5, model.num_variables)
        ).astype(np.float64)
        np.testing.assert_allclose(csr.matmul_dense(x), x @ w, atol=1e-12)

    def test_abs_row_sums(self):
        model = _random_model(3)
        csr = csr_from_coefficients(model.to_dict(), model.num_variables)
        _, w = split_diagonal(model.to_dense())
        np.testing.assert_allclose(
            csr.abs_row_sums(), np.abs(w).sum(axis=1), atol=1e-12
        )

    def test_empty_coupling(self):
        csr = csr_from_coefficients({(0, 0): 1.0, (1, 1): -1.0}, 2)
        assert csr.nnz == 0
        assert not has_any_coupling(csr)
        np.testing.assert_allclose(csr.to_dense(), np.zeros((2, 2)))
        np.testing.assert_allclose(csr.abs_row_sums(), np.zeros(2))

    def test_pickle_ships_triplet_only(self):
        csr = csr_from_coefficients({(0, 1): 2.0, (1, 2): 3.0}, 3)
        csr._as_scipy()  # populate the lazy cache
        clone = pickle.loads(pickle.dumps(csr))
        assert clone == csr
        assert clone._scipy_cache is None
        # The rebuilt arrays must be frozen again.
        with pytest.raises(ValueError):
            clone.data[0] = 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CsrMatrix(np.array([0, 1]), np.array([5]), np.array([1.0]), (1, 1))
        with pytest.raises(ValueError):
            CsrMatrix(np.array([0]), np.array([], dtype=int),
                      np.array([]), (1, 1))
        with pytest.raises(ValueError):
            csr_from_coefficients({(0, 5): 1.0}, 3)


class TestEnergiesCsr:
    def test_matches_dense_on_random_model(self):
        model = _random_model(4, n=10)
        diag, csr = sparse_sampler_form(model.to_dict(), model.num_variables)
        states = np.random.default_rng(5).integers(0, 2, size=(32, 10))
        dense = qubo_energies(states, model.to_dense(), model.offset)
        sparse = qubo_energies_csr(states, diag, csr, model.offset)
        np.testing.assert_allclose(sparse, dense, atol=1e-9)

    def test_exact_on_integer_string_model(self):
        model = PalindromeGeneration(6).build_model()
        diag, csr = sparse_sampler_form(model.to_dict(), model.num_variables)
        states = np.random.default_rng(6).integers(
            0, 2, size=(16, model.num_variables)
        )
        dense = qubo_energies(states, model.to_dense(), model.offset)
        sparse = qubo_energies_csr(states, diag, csr, model.offset)
        np.testing.assert_array_equal(sparse, dense)  # bit-identical

    def test_single_state(self):
        model = _random_model(7, n=6)
        diag, csr = sparse_sampler_form(model.to_dict(), 6)
        state = np.array([1, 0, 1, 1, 0, 0])
        assert qubo_energies_csr(state, diag, csr, model.offset) == (
            pytest.approx(model.energy(state), abs=1e-9)
        )

    def test_width_mismatch_raises(self):
        diag, csr = sparse_sampler_form({(0, 1): 1.0}, 2)
        with pytest.raises(ValueError):
            qubo_energies_csr(np.zeros((3, 5)), diag, csr)

    def test_initial_local_fields_both_forms(self):
        model = _random_model(8, n=8)
        diag, csr = sparse_sampler_form(model.to_dict(), 8)
        _, w = split_diagonal(model.to_dense())
        states = np.random.default_rng(9).integers(0, 2, size=(4, 8)).astype(float)
        np.testing.assert_allclose(
            initial_local_fields(states, csr),
            initial_local_fields(states, w),
            atol=1e-12,
        )


class TestAutoSelection:
    def test_string_models_prefer_sparse(self):
        # The acceptance regime: length >= 64 palindromes (448 variables).
        for formulation in (PalindromeGeneration(64), StringEquality("x" * 64)):
            model = formulation.build_model()
            assert model.num_variables >= SPARSE_MIN_VARIABLES
            assert model.coupling_density() <= SPARSE_DENSITY_THRESHOLD
            assert model.prefers_sparse()
            _, coupling = model.sampler_form("auto")
            assert isinstance(coupling, CsrMatrix)

    def test_small_models_stay_dense(self):
        model = PalindromeGeneration(4).build_model()  # 28 variables
        assert not model.prefers_sparse()
        _, coupling = model.sampler_form("auto")
        assert isinstance(coupling, np.ndarray)

    def test_dense_random_models_stay_dense(self):
        n = SPARSE_MIN_VARIABLES + 8
        rng = np.random.default_rng(10)
        model = QuboModel.from_dense(np.triu(rng.normal(size=(n, n))))
        assert model.coupling_density() > SPARSE_DENSITY_THRESHOLD
        assert not model.prefers_sparse()

    def test_forced_modes(self):
        model = PalindromeGeneration(4).build_model()
        _, sparse = model.sampler_form("sparse")
        assert isinstance(sparse, CsrMatrix)
        diag_d, dense = model.sampler_form("dense")
        assert isinstance(dense, np.ndarray)
        diag_s, _ = model.sampler_form("sparse")
        np.testing.assert_array_equal(diag_s, diag_d)
        np.testing.assert_allclose(sparse.to_dense(), dense)
        with pytest.raises(ValueError):
            model.sampler_form("csr")

    def test_prefers_sparse_thresholds(self):
        assert prefers_sparse(SPARSE_MIN_VARIABLES, SPARSE_DENSITY_THRESHOLD)
        assert not prefers_sparse(SPARSE_MIN_VARIABLES - 1, 0.0)
        assert not prefers_sparse(10**6, SPARSE_DENSITY_THRESHOLD * 1.01)

    def test_coupling_density(self):
        assert coupling_density({}, 5) == 0.0
        assert coupling_density({(0, 0): 1.0}, 5) == 0.0  # diagonal only
        assert coupling_density({(0, 1): 1.0}, 2) == pytest.approx(1.0)
        assert coupling_density({(0, 1): 0.0}, 2) == 0.0  # stored zero

    def test_sparse_stats(self):
        model = PalindromeGeneration(64).build_model()
        stats = sparse_stats(model.to_dict(), model.num_variables)
        assert stats.num_variables == 448
        assert stats.auto_sparse
        assert stats.coupling_nnz == 2 * 7 * 32  # mirrored bit pairs
        assert stats.max_degree == 1
        assert stats.memory_ratio >= 5.0  # the acceptance bound
        assert stats.density == pytest.approx(model.coupling_density())


class TestModelIntegration:
    def test_to_dense_is_read_only(self):
        # Regression: to_dense() used to hand out the writable cache, so a
        # caller's in-place edit silently corrupted later evaluations.
        model = _random_model(11)
        dense = model.to_dense()
        with pytest.raises(ValueError):
            dense[0, 0] = 99.0
        assert model.to_dense() is dense  # still the cache

    def test_mutation_invalidates_all_caches(self):
        model = PalindromeGeneration(4).build_model().copy()
        before_dense = model.to_dense()
        before_diag, _ = model.sampler_form("sparse")
        model.add_linear(0, 3.0)
        after_dense = model.to_dense()
        after_diag, _ = model.sampler_form("sparse")
        assert after_dense[0, 0] == before_dense[0, 0] + 3.0
        assert after_diag[0] == before_diag[0] + 3.0
        assert model.coupling_density() == pytest.approx(
            coupling_density(model.to_dict(), model.num_variables)
        )

    def test_pickle_drops_matrix_caches(self):
        model = _random_model(12)
        model.to_dense()
        model.sampler_form("sparse")
        clone = pickle.loads(pickle.dumps(model))
        assert clone == model
        assert clone._dense_cache is None
        assert clone._sparse_cache is None
        states = np.random.default_rng(13).integers(
            0, 2, size=(4, model.num_variables)
        )
        np.testing.assert_allclose(
            clone.energies(states), model.energies(states), atol=1e-12
        )

    def test_energies_uses_sparse_path_for_string_models(self):
        model = StringEquality("sparse kernels!" * 5).build_model()
        assert model.prefers_sparse()
        states = np.random.default_rng(14).integers(
            0, 2, size=(8, model.num_variables)
        )
        diag, csr = model.sampler_form("sparse")
        np.testing.assert_array_equal(
            model.energies(states),
            qubo_energies_csr(states, diag, csr, model.offset),
        )
