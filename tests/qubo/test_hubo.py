import itertools

import numpy as np
import pytest

from repro.anneal.exact import ExactSolver
from repro.qubo.hubo import HuboModel, and_penalty_terms, quadratize
from repro.qubo.model import QuboModel


def _all_states(n):
    return np.array(list(itertools.product((0, 1), repeat=n)), dtype=np.int8)


class TestHuboModel:
    def test_constant_model(self):
        h = HuboModel(2, offset=1.5)
        assert h.energy(np.array([0, 1])) == 1.5
        assert h.degree == 0

    def test_linear_and_quadratic_terms(self):
        h = HuboModel(3)
        h.add_term([0], 2.0)
        h.add_term([0, 1], -1.0)
        assert h.energy(np.array([1, 1, 0])) == pytest.approx(1.0)

    def test_cubic_term(self):
        h = HuboModel(3)
        h.add_term([0, 1, 2], 5.0)
        assert h.energy(np.array([1, 1, 1])) == 5.0
        assert h.energy(np.array([1, 1, 0])) == 0.0
        assert h.degree == 3

    def test_terms_accumulate_and_cancel(self):
        h = HuboModel(2)
        h.add_term([0, 1], 1.0)
        h.add_term([1, 0], -1.0)  # same monomial (sets are unordered)
        assert h.terms() == {}

    def test_empty_monomial_folds_into_offset(self):
        h = HuboModel(1)
        h.add_term([], 2.0)
        assert h.offset == 2.0

    def test_energies_vectorized(self):
        h = HuboModel(4)
        rng = np.random.default_rng(0)
        for _ in range(6):
            size = rng.integers(1, 5)
            monomial = rng.choice(4, size=size, replace=False)
            h.add_term(monomial, float(rng.normal()))
        states = _all_states(4)
        batch = h.energies(states)
        singles = [h.energy(s) for s in states]
        np.testing.assert_allclose(batch, singles)

    def test_validation(self):
        with pytest.raises(ValueError):
            HuboModel(-1)
        h = HuboModel(2)
        with pytest.raises(IndexError):
            h.add_term([5], 1.0)
        with pytest.raises(ValueError):
            h.energy(np.zeros(3))


class TestAndPenalty:
    def test_truth_table(self):
        entries = and_penalty_terms(2, 0, 1, 1.0)
        m = QuboModel(3)
        for (i, j), v in entries:
            if i == j:
                m.add_linear(i, v)
            else:
                m.add_quadratic(i, j, v)
        for x, y, a in itertools.product((0, 1), repeat=3):
            e = m.energy(np.array([x, y, a]))
            if a == x * y:
                assert e == pytest.approx(0.0)
            else:
                assert e >= 1.0


class TestQuadratize:
    def test_already_quadratic_is_identity(self):
        h = HuboModel(3)
        h.add_term([0], 1.0)
        h.add_term([1, 2], -2.0)
        q, aux = quadratize(h)
        assert aux == {}
        assert q.num_variables == 3
        states = _all_states(3)
        np.testing.assert_allclose(q.energies(states), h.energies(states))

    @pytest.mark.parametrize("degree", [3, 4, 5])
    def test_single_monomial_minimum_preserved(self, degree):
        h = HuboModel(degree)
        h.add_term(range(degree), -1.0)  # minimized by all-ones
        q, aux = quadratize(h)
        state, energy = ExactSolver().ground_state(q)
        assert energy == pytest.approx(-1.0)
        assert all(state[:degree] == 1)

    def test_positive_monomial_avoided(self):
        h = HuboModel(3)
        h.add_term([0, 1, 2], 4.0)
        h.add_term([0], -0.5)
        h.add_term([1], -0.5)
        q, _ = quadratize(h)
        state, energy = ExactSolver().ground_state(q)
        # Optimum: x0 = x1 = 1, x2 = 0 -> -1 (the cubic never pays).
        assert energy == pytest.approx(-1.0)
        assert state[2] == 0

    def test_minima_match_brute_force(self):
        rng = np.random.default_rng(1)
        for trial in range(5):
            h = HuboModel(5)
            for _ in range(6):
                size = int(rng.integers(1, 5))
                monomial = rng.choice(5, size=size, replace=False)
                h.add_term(monomial, float(rng.normal()))
            q, _ = quadratize(h)
            # Brute-force the HUBO.
            states = _all_states(5)
            hubo_min = h.energies(states).min()
            _, qubo_min = ExactSolver().ground_state(q)
            assert qubo_min == pytest.approx(hubo_min, abs=1e-9)

    def test_shared_pairs_reuse_auxiliaries(self):
        h = HuboModel(4)
        h.add_term([0, 1, 2], 1.0)
        h.add_term([0, 1, 3], 1.0)
        _, aux = quadratize(h)
        # (0,1) occurs in both monomials and should be reduced once.
        assert len(aux) == 1

    def test_bad_penalty(self):
        with pytest.raises(ValueError):
            quadratize(HuboModel(1), penalty=0.0)
