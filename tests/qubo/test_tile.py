"""Unit tests for the block-diagonal QUBO tiler (repro.qubo.tile)."""

import numpy as np
import pytest

from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.qubo.model import QuboModel
from repro.qubo.sparse import CsrMatrix
from repro.qubo.tile import TiledProblem, model_content_hash, tile_models


def small_models():
    return [
        QuboModel(3, {(0, 0): -1.0, (1, 1): 2.0, (0, 1): -2.0}, offset=0.5),
        QuboModel(1, {(0, 0): -1.0}),
        QuboModel(0, offset=3.0),
        QuboModel(4, {(0, 3): 1.5, (2, 2): -2.0, (1, 2): 0.5}, offset=-1.0),
    ]


class TestContentHash:
    def test_equal_content_equal_hash(self):
        a = QuboModel(2, {(0, 1): 1.0, (0, 0): -1.0}, offset=0.25)
        b = QuboModel(2, {(0, 0): -1.0, (0, 1): 1.0}, offset=0.25)
        assert model_content_hash(a) == model_content_hash(b)

    def test_hash_sensitive_to_coefficients(self):
        a = QuboModel(2, {(0, 1): 1.0})
        b = QuboModel(2, {(0, 1): 2.0})
        assert model_content_hash(a) != model_content_hash(b)

    def test_hash_sensitive_to_size_and_offset(self):
        a = QuboModel(2, {(0, 1): 1.0})
        assert model_content_hash(a) != model_content_hash(
            QuboModel(3, {(0, 1): 1.0})
        )
        assert model_content_hash(a) != model_content_hash(
            QuboModel(2, {(0, 1): 1.0}, offset=1.0)
        )


class TestTiledProblem:
    def test_layout(self):
        tiled = tile_models(small_models())
        assert tiled.num_blocks == 4
        assert tiled.sizes == (3, 1, 0, 4)
        np.testing.assert_array_equal(tiled.starts, [0, 3, 4, 4, 8])
        assert tiled.num_variables == 8
        assert tiled.block_slice(3) == slice(4, 8)

    def test_empty_tile(self):
        tiled = tile_models([])
        assert tiled.num_blocks == 0
        assert tiled.num_variables == 0

    def test_fused_model_energies_sum_blocks(self):
        models = small_models()
        tiled = tile_models(models)
        rng = np.random.default_rng(0)
        states = rng.integers(0, 2, size=(5, tiled.num_variables), dtype=np.int8)
        total = tiled.fused_model.energies(states)
        parts = sum(
            tiled.block_energies(k, states[:, tiled.block_slice(k)])
            for k in range(4)
        )
        np.testing.assert_allclose(total, parts)

    @pytest.mark.parametrize("mode", ["dense", "sparse"])
    def test_fused_sampler_form_matches_fused_model(self, mode):
        tiled = tile_models(small_models())
        diag, coupling = tiled.fused_sampler_form(mode)
        ref_diag, ref_coupling = tiled.fused_model.sampler_form(mode=mode)
        np.testing.assert_array_equal(diag, ref_diag)
        if mode == "sparse":
            assert isinstance(coupling, CsrMatrix)
            np.testing.assert_array_equal(coupling.indptr, ref_coupling.indptr)
            np.testing.assert_array_equal(coupling.indices, ref_coupling.indices)
            np.testing.assert_array_equal(coupling.data, ref_coupling.data)
        else:
            np.testing.assert_array_equal(coupling, ref_coupling)

    def test_sparse_rows_identical_to_solo(self):
        # The bit-identity linchpin: each fused CSR row must hold the same
        # entries in the same order as the block's own row.
        models = small_models()
        tiled = tile_models(models)
        _, fused = tiled.fused_sampler_form("sparse")
        for k, model in enumerate(models):
            if model.num_variables == 0:
                continue
            _, solo = model.sampler_form(mode="sparse")
            start = tiled.starts[k]
            for i in range(model.num_variables):
                fcols, fvals = fused.row(start + i)
                scols, svals = solo.row(i)
                np.testing.assert_array_equal(fcols - start, scols)
                np.testing.assert_array_equal(fvals, svals)

    def test_rng_streams_content_keyed(self):
        m = QuboModel(2, {(0, 1): 1.0})
        tiled_a = tile_models([m, QuboModel(5, {(0, 4): -1.0})])
        tiled_b = tile_models([QuboModel(3), QuboModel(1), m])
        draw_a = tiled_a.block_rngs(42)[0].random(4)
        draw_b = tiled_b.block_rngs(42)[2].random(4)
        np.testing.assert_array_equal(draw_a, draw_b)

    def test_rng_streams_differ_across_blocks_and_seeds(self):
        m1, m2 = QuboModel(2, {(0, 1): 1.0}), QuboModel(2, {(0, 1): 2.0})
        tiled = tile_models([m1, m2])
        r1, r2 = tiled.block_rngs(7)
        assert not np.array_equal(r1.random(4), r2.random(4))
        again = tile_models([m1, m2]).block_rngs(8)[0]
        assert not np.array_equal(
            tile_models([m1, m2]).block_rngs(7)[0].random(4), again.random(4)
        )

    def test_duplicate_blocks_share_streams(self):
        m = QuboModel(2, {(0, 1): 1.0})
        tiled = tile_models([m, m])
        r1, r2 = tiled.block_rngs(3)
        np.testing.assert_array_equal(r1.random(4), r2.random(4))

    def test_split_round_trip(self):
        models = small_models()
        tiled = tile_models(models)
        sampler = SimulatedAnnealingSampler()
        results = sampler.sample_tiled(
            tiled, num_reads=8, num_sweeps=32, seed=11
        )
        assert len(results) == 4
        for k, sampleset in enumerate(results):
            n_k = models[k].num_variables
            assert sampleset.states.shape == (8, n_k)
            np.testing.assert_allclose(
                sampleset.energies, models[k].energies(sampleset.states)
            )
            assert sampleset.info["tile"]["num_blocks"] == 4
            assert sampleset.info["tile"]["block"] == k

    def test_split_fused_sampleset(self):
        models = [QuboModel(2, {(0, 0): -1.0}), QuboModel(1, {(0, 0): 1.0})]
        tiled = tile_models(models)
        fused = tiled.fused_model
        sampler = SimulatedAnnealingSampler()
        sampleset = sampler.sample_model(fused, num_reads=6, num_sweeps=16, seed=5)
        parts = tiled.split(sampleset)
        assert len(parts) == 2
        for k, part in enumerate(parts):
            np.testing.assert_allclose(
                part.energies, models[k].energies(part.states)
            )

    def test_block_energies_empty_block(self):
        tiled = tile_models([QuboModel(0, offset=2.5)])
        energies = tiled.block_energies(0, np.zeros((3, 0), dtype=np.int8))
        np.testing.assert_allclose(energies, np.full(3, 2.5))
