import json

import numpy as np
import pytest

from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.model import QuboModel
from repro.qubo.serialization import (
    bqm_from_dict,
    bqm_to_dict,
    load_model,
    qubo_from_dict,
    qubo_to_dict,
    save_model,
)


def _model():
    return QuboModel(4, {(0, 0): -1.0, (1, 3): 2.5, (2, 2): 0.75}, offset=1.25)


def _bqm():
    return BinaryQuadraticModel(
        {"a": 1.0, ("pair", 3): -2.0},
        {("a", ("pair", 3)): 0.5},
        offset=-0.25,
        vartype="SPIN",
    )


class TestQuboRoundTrip:
    def test_dict_round_trip(self):
        m = _model()
        assert qubo_from_dict(qubo_to_dict(m)) == m

    def test_payload_is_json_compatible(self):
        payload = qubo_to_dict(_model())
        json.dumps(payload)  # must not raise

    def test_empty_model(self):
        m = QuboModel(0, offset=3.0)
        restored = qubo_from_dict(qubo_to_dict(m))
        assert restored.num_variables == 0
        assert restored.offset == 3.0

    def test_energies_preserved(self):
        m = _model()
        restored = qubo_from_dict(qubo_to_dict(m))
        rng = np.random.default_rng(0)
        states = rng.integers(0, 2, size=(8, 4))
        np.testing.assert_allclose(m.energies(states), restored.energies(states))

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            qubo_from_dict({"format": "other", "version": 1})

    def test_bad_version_rejected(self):
        payload = qubo_to_dict(_model())
        payload["version"] = 99
        with pytest.raises(ValueError):
            qubo_from_dict(payload)


class TestBqmRoundTrip:
    def test_round_trip_with_tuple_labels(self):
        bqm = _bqm()
        restored = bqm_from_dict(bqm_to_dict(bqm))
        assert restored.vartype.name == "SPIN"
        assert restored.variables == bqm.variables
        assert restored.get_linear(("pair", 3)) == -2.0
        assert restored.get_quadratic("a", ("pair", 3)) == 0.5
        assert restored.offset == -0.25

    def test_energy_preserved(self):
        bqm = _bqm()
        restored = bqm_from_dict(bqm_to_dict(bqm))
        sample = {"a": 1, ("pair", 3): -1}
        assert restored.energy(sample) == pytest.approx(bqm.energy(sample))


class TestFileRoundTrip:
    def test_qubo_file(self, tmp_path):
        path = tmp_path / "model.json"
        save_model(_model(), path)
        assert load_model(path) == _model()

    def test_bqm_file(self, tmp_path):
        path = tmp_path / "bqm.json"
        save_model(_bqm(), path)
        restored = load_model(path)
        assert isinstance(restored, BinaryQuadraticModel)
        assert restored.num_variables == 2

    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_model("not a model", tmp_path / "x.json")

    def test_unknown_format_file(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text('{"format": "mystery"}')
        with pytest.raises(ValueError):
            load_model(path)

    def test_formulation_model_survives(self, tmp_path):
        """The practical path: persist a compiled string constraint."""
        from repro.core import PalindromeGeneration

        model = PalindromeGeneration(4).build_model()
        path = tmp_path / "palindrome.json"
        save_model(model, path)
        assert load_model(path) == model


class TestNewerModelShapes:
    """Round-trips for the shapes later subsystems produce: CSR-coupled
    models, tiled/offset fused models, and weighted MaxSMT models — each
    with a byte-stable JSON pin (sorted-keys sha256)."""

    @staticmethod
    def _digest(payload) -> str:
        import hashlib

        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()

    def _tiled_fused(self):
        from repro.qubo.tile import TiledProblem

        a = QuboModel(2, {(0, 0): -1.0, (0, 1): 2.0}, offset=0.5)
        b = QuboModel(3, {(1, 1): 1.5, (0, 2): -0.25}, offset=-1.0)
        return TiledProblem([a, b]).fused_model

    def _weighted(self):
        from repro.opt.weighted import compile_weighted
        from repro.smt.parser import parse_script

        script = parse_script(
            "(declare-const x String)"
            "(assert (= (str.len x) 1))"
            '(assert-soft (= x "a") :weight 1)'
            '(assert-soft (= x "b") :weight 3)'
        )
        problem = compile_weighted(
            list(script.assertions), list(script.soft_assertions), seed=13
        )
        return problem.formulations["x"].build_model()

    def test_csr_coupling_survives_round_trip(self):
        m = QuboModel(
            6, {(0, 0): -1.0, (0, 5): 2.0, (1, 4): -0.5, (2, 3): 1.25}
        )
        restored = qubo_from_dict(qubo_to_dict(m))
        diag, coupling = m.sampler_form(mode="sparse")
        rdiag, rcoupling = restored.sampler_form(mode="sparse")
        np.testing.assert_array_equal(diag, rdiag)
        assert coupling == rcoupling
        assert coupling.nnz == rcoupling.nnz

    def test_tiled_fused_model_round_trip(self):
        fused = self._tiled_fused()
        restored = qubo_from_dict(qubo_to_dict(fused))
        assert restored == fused
        assert restored.offset == -0.5  # per-block offsets summed

    def test_tiled_fused_json_pin(self):
        assert self._digest(qubo_to_dict(self._tiled_fused())) == (
            "a117ffdcde7536f14ab0792bc311adc939eafd61b6284a4b3637c2cdbd5e7545"
        )

    def test_weighted_model_round_trip(self):
        model = self._weighted()
        restored = qubo_from_dict(qubo_to_dict(model))
        assert restored == model
        rng = np.random.default_rng(3)
        states = rng.integers(0, 2, size=(16, model.num_variables))
        np.testing.assert_allclose(
            model.energies(states), restored.energies(states)
        )

    def test_weighted_model_json_pin(self):
        # Guards both the serializer's byte stability and the weighted
        # compiler's RNG discipline at a fixed seed.
        assert self._digest(qubo_to_dict(self._weighted())) == (
            "c98487928b51efa26ae7129ff2b3dfd2d74013299973b193b77adcebaa094481"
        )

    def test_file_round_trip_of_weighted_model(self, tmp_path):
        model = self._weighted()
        path = tmp_path / "weighted.json"
        save_model(model, path)
        assert load_model(path) == model
