import json

import numpy as np
import pytest

from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.model import QuboModel
from repro.qubo.serialization import (
    bqm_from_dict,
    bqm_to_dict,
    load_model,
    qubo_from_dict,
    qubo_to_dict,
    save_model,
)


def _model():
    return QuboModel(4, {(0, 0): -1.0, (1, 3): 2.5, (2, 2): 0.75}, offset=1.25)


def _bqm():
    return BinaryQuadraticModel(
        {"a": 1.0, ("pair", 3): -2.0},
        {("a", ("pair", 3)): 0.5},
        offset=-0.25,
        vartype="SPIN",
    )


class TestQuboRoundTrip:
    def test_dict_round_trip(self):
        m = _model()
        assert qubo_from_dict(qubo_to_dict(m)) == m

    def test_payload_is_json_compatible(self):
        payload = qubo_to_dict(_model())
        json.dumps(payload)  # must not raise

    def test_empty_model(self):
        m = QuboModel(0, offset=3.0)
        restored = qubo_from_dict(qubo_to_dict(m))
        assert restored.num_variables == 0
        assert restored.offset == 3.0

    def test_energies_preserved(self):
        m = _model()
        restored = qubo_from_dict(qubo_to_dict(m))
        rng = np.random.default_rng(0)
        states = rng.integers(0, 2, size=(8, 4))
        np.testing.assert_allclose(m.energies(states), restored.energies(states))

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            qubo_from_dict({"format": "other", "version": 1})

    def test_bad_version_rejected(self):
        payload = qubo_to_dict(_model())
        payload["version"] = 99
        with pytest.raises(ValueError):
            qubo_from_dict(payload)


class TestBqmRoundTrip:
    def test_round_trip_with_tuple_labels(self):
        bqm = _bqm()
        restored = bqm_from_dict(bqm_to_dict(bqm))
        assert restored.vartype.name == "SPIN"
        assert restored.variables == bqm.variables
        assert restored.get_linear(("pair", 3)) == -2.0
        assert restored.get_quadratic("a", ("pair", 3)) == 0.5
        assert restored.offset == -0.25

    def test_energy_preserved(self):
        bqm = _bqm()
        restored = bqm_from_dict(bqm_to_dict(bqm))
        sample = {"a": 1, ("pair", 3): -1}
        assert restored.energy(sample) == pytest.approx(bqm.energy(sample))


class TestFileRoundTrip:
    def test_qubo_file(self, tmp_path):
        path = tmp_path / "model.json"
        save_model(_model(), path)
        assert load_model(path) == _model()

    def test_bqm_file(self, tmp_path):
        path = tmp_path / "bqm.json"
        save_model(_bqm(), path)
        restored = load_model(path)
        assert isinstance(restored, BinaryQuadraticModel)
        assert restored.num_variables == 2

    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_model("not a model", tmp_path / "x.json")

    def test_unknown_format_file(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text('{"format": "mystery"}')
        with pytest.raises(ValueError):
            load_model(path)

    def test_formulation_model_survives(self, tmp_path):
        """The practical path: persist a compiled string constraint."""
        from repro.core import PalindromeGeneration

        model = PalindromeGeneration(4).build_model()
        path = tmp_path / "palindrome.json"
        save_model(model, path)
        assert load_model(path) == model
