import itertools

import numpy as np
import pytest

from repro.qubo.energy import qubo_energies_dict
from repro.qubo.ising import (
    binary_to_spins,
    ising_to_qubo,
    qubo_to_ising,
    spins_to_binary,
)


def _ising_energy(state, h, j, offset):
    e = offset
    for v, bias in h.items():
        e += bias * state[v]
    for (a, b), coupling in j.items():
        e += coupling * state[a] * state[b]
    return e


class TestQuboToIsing:
    def test_energy_preserved_exhaustively(self):
        coeffs = {(0, 0): -1.0, (1, 1): 2.0, (0, 1): -3.0, (1, 2): 0.5}
        h, j, off = qubo_to_ising(coeffs, offset=0.75)
        for bits in itertools.product((0, 1), repeat=3):
            x = np.array(bits)
            s = 2 * x - 1
            qubo_e = float(qubo_energies_dict(x, coeffs, 0.75))
            ising_e = _ising_energy(s, h, j, off)
            assert qubo_e == pytest.approx(ising_e)

    def test_diagonal_only(self):
        h, j, off = qubo_to_ising({(0, 0): 4.0})
        assert j == {}
        assert h[0] == pytest.approx(2.0)
        assert off == pytest.approx(2.0)


class TestIsingToQubo:
    def test_round_trip(self):
        coeffs = {(0, 0): 1.0, (0, 1): -2.0, (1, 2): 3.0}
        h, j, off1 = qubo_to_ising(coeffs, offset=0.0)
        back, off2 = ising_to_qubo(h, j, off1)
        for bits in itertools.product((0, 1), repeat=3):
            x = np.array(bits)
            original = float(qubo_energies_dict(x, coeffs))
            recovered = float(qubo_energies_dict(x, back, off2))
            assert original == pytest.approx(recovered)

    def test_diagonal_coupling_rejected(self):
        with pytest.raises(ValueError):
            ising_to_qubo({}, {(0, 0): 1.0})

    def test_energy_preserved_exhaustively(self):
        h = {0: 0.5, 1: -1.0}
        j = {(0, 1): 2.0}
        q, off = ising_to_qubo(h, j, offset=-0.5)
        for spins in itertools.product((-1, 1), repeat=2):
            s = np.array(spins)
            x = (s + 1) // 2
            ising_e = _ising_energy(s, h, j, -0.5)
            qubo_e = float(qubo_energies_dict(x, q, off))
            assert ising_e == pytest.approx(qubo_e)


class TestStateMaps:
    def test_binary_to_spins(self):
        np.testing.assert_array_equal(
            binary_to_spins(np.array([0, 1, 0])), [-1, 1, -1]
        )

    def test_spins_to_binary(self):
        np.testing.assert_array_equal(
            spins_to_binary(np.array([-1, 1, 1])), [0, 1, 1]
        )

    def test_round_trip(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, size=(4, 6))
        np.testing.assert_array_equal(spins_to_binary(binary_to_spins(x)), x)

    def test_dtype_is_int8(self):
        assert binary_to_spins(np.array([0, 1])).dtype == np.int8
        assert spins_to_binary(np.array([-1, 1])).dtype == np.int8
