import numpy as np
import pytest

from repro.qubo.matrix import (
    coo_from_dict,
    dense_from_dict,
    dict_from_dense,
    split_diagonal,
    to_symmetric,
    to_upper_triangular,
)


class TestToUpperTriangular:
    def test_folds_lower_into_upper(self):
        out = to_upper_triangular({(2, 1): 3.0, (1, 2): 1.0})
        assert out == {(1, 2): 4.0}

    def test_diagonal_kept(self):
        assert to_upper_triangular({(0, 0): -1.0}) == {(0, 0): -1.0}

    def test_zero_sum_dropped(self):
        assert to_upper_triangular({(0, 1): 1.0, (1, 0): -1.0}) == {}

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            to_upper_triangular({(-1, 0): 1.0})

    def test_empty(self):
        assert to_upper_triangular({}) == {}


class TestDenseRoundTrip:
    def test_dense_from_dict_shape(self):
        q = dense_from_dict({(0, 1): 2.0}, 3)
        assert q.shape == (3, 3)
        assert q[0, 1] == 2.0
        assert q[1, 0] == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            dense_from_dict({(0, 5): 1.0}, 3)

    def test_round_trip(self):
        original = {(0, 0): -1.5, (0, 2): 2.0, (1, 2): -0.5}
        q = dense_from_dict(original, 3)
        assert dict_from_dense(q) == original

    def test_dict_from_dense_folds_lower_triangle(self):
        q = np.array([[0.0, 0.0], [3.0, 0.0]])
        assert dict_from_dense(q) == {(0, 1): 3.0}

    def test_dict_from_dense_rejects_non_square(self):
        with pytest.raises(ValueError):
            dict_from_dense(np.zeros((2, 3)))

    def test_atol_filters_small_entries(self):
        q = np.array([[1e-12, 0.0], [0.0, 1.0]])
        assert dict_from_dense(q, atol=1e-9) == {(1, 1): 1.0}


class TestSymmetricForms:
    def test_to_symmetric_zero_diagonal(self):
        q = np.array([[5.0, 2.0], [0.0, -3.0]])
        w = to_symmetric(q)
        assert w[0, 0] == 0.0 and w[1, 1] == 0.0
        assert w[0, 1] == w[1, 0] == 2.0

    def test_split_diagonal_energy_identity(self):
        rng = np.random.default_rng(0)
        q = np.triu(rng.normal(size=(6, 6)))
        d, w = split_diagonal(q)
        x = rng.integers(0, 2, size=(10, 6)).astype(float)
        direct = np.einsum("ri,ij,rj->r", x, q, x)
        via_split = x @ d + 0.5 * ((x @ w) * x).sum(axis=1)
        np.testing.assert_allclose(direct, via_split, atol=1e-12)


class TestCoo:
    def test_coo_matches_dense(self):
        entries = {(0, 1): 1.0, (1, 1): -2.0}
        coo = coo_from_dict(entries, 3)
        np.testing.assert_allclose(coo.toarray(), dense_from_dict(entries, 3))

    def test_empty_coo(self):
        coo = coo_from_dict({}, 4)
        assert coo.nnz == 0
        assert coo.shape == (4, 4)
