"""Regression tests for the compile cache: keying, LRU order, thread-safety."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service.cache import (
    CompileCache,
    LruCache,
    compile_cache_key,
)
from repro.smt import ast

pytestmark = pytest.mark.service


def conjunction(word: str = "hi"):
    return [ast.Eq(ast.StrVar("x"), ast.StrLit(word))]


class TestLruCache:
    def test_get_put_and_stats(self):
        cache = LruCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_empty_cache_hit_rate_is_zero(self):
        assert LruCache(maxsize=1).stats.hit_rate == 0.0

    def test_eviction_order_is_lru(self):
        cache = LruCache(maxsize=3)
        for key in "abc":
            cache.put(key, key.upper())
        assert cache.get("a") == "A"  # promote a to MRU
        cache.put("d", "D")  # evicts b, the LRU
        assert "b" not in cache
        assert set(cache.keys()) == {"c", "a", "d"}
        assert cache.stats.evictions == 1

    def test_put_existing_key_promotes_without_eviction(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite promotes a
        cache.put("c", 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_get_or_create_computes_once(self):
        cache = LruCache(maxsize=4)
        calls = []
        value, hit = cache.get_or_create("k", lambda: calls.append(1) or 42)
        assert (value, hit) == (42, False)
        value, hit = cache.get_or_create("k", lambda: calls.append(1) or 43)
        assert (value, hit) == (42, True)
        assert len(calls) == 1

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            LruCache(maxsize=0)

    def test_contains_does_not_touch_stats(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        stats = cache.stats
        assert (stats.hits, stats.misses) == (0, 0)

    def test_thread_safety_under_concurrent_access(self):
        cache = LruCache(maxsize=16)
        errors = []

        def worker(wid: int) -> None:
            try:
                for i in range(200):
                    key = (wid + i) % 32
                    cache.get_or_create(key, lambda k=key: k * 2)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats
        assert stats.hits + stats.misses == 8 * 200
        assert len(cache) <= 16


class TestCompileCacheKey:
    def test_same_conjunction_same_key(self):
        assert compile_cache_key(conjunction(), 1.0, 7) == compile_cache_key(
            conjunction(), 1.0, 7
        )

    def test_different_literal_different_key(self):
        assert compile_cache_key(conjunction("hi"), 1.0, 7) != compile_cache_key(
            conjunction("ho"), 1.0, 7
        )

    def test_penalty_weight_changes_key(self):
        assert compile_cache_key(conjunction(), 1.0, 7) != compile_cache_key(
            conjunction(), 2.0, 7
        )

    def test_seed_changes_key(self):
        assert compile_cache_key(conjunction(), 1.0, 7) != compile_cache_key(
            conjunction(), 1.0, 8
        )

    def test_live_rng_seed_never_hits(self):
        rng = np.random.default_rng(0)
        first = compile_cache_key(conjunction(), 1.0, rng)
        second = compile_cache_key(conjunction(), 1.0, rng)
        assert first != second  # uncacheable: state advances per compile

    def test_assertion_order_matters(self):
        a = conjunction("hi")[0]
        b = ast.Eq(ast.Length(ast.StrVar("x")), ast.IntLit(2))
        assert compile_cache_key([a, b], 1.0, 0) != compile_cache_key(
            [b, a], 1.0, 0
        )


class TestCompileCache:
    def test_hit_returns_identical_problem_and_qubo_objects(self):
        cache = CompileCache(maxsize=8)
        p1, hit1 = cache.get_or_compile(conjunction(), 1.0, 7)
        p2, hit2 = cache.get_or_compile(conjunction(), 1.0, 7)
        assert hit1 is False and hit2 is True
        assert p1 is p2
        # The same QuboModel object is reused — no rebuild on a hit.
        f1 = p1.formulations["x"]
        f2 = p2.formulations["x"]
        assert f1 is f2
        assert f1.build_model() is f2.build_model()

    def test_differing_penalty_misses(self):
        cache = CompileCache(maxsize=8)
        p1, _ = cache.get_or_compile(conjunction(), 1.0, 7)
        p2, hit = cache.get_or_compile(conjunction(), 2.0, 7)
        assert hit is False
        assert p1 is not p2
        assert cache.stats.misses == 2

    def test_models_are_prebuilt_on_insert(self):
        cache = CompileCache(maxsize=8)
        problem, _ = cache.get_or_compile(conjunction(), 1.0, 7)
        for formulation in problem.formulations.values():
            assert formulation._model is not None

    def test_eviction_respects_lru(self):
        cache = CompileCache(maxsize=2)
        cache.get_or_compile(conjunction("aa"), 1.0, 0)
        cache.get_or_compile(conjunction("bb"), 1.0, 0)
        cache.get_or_compile(conjunction("aa"), 1.0, 0)  # promote aa
        cache.get_or_compile(conjunction("cc"), 1.0, 0)  # evict bb
        _, hit = cache.get_or_compile(conjunction("bb"), 1.0, 0)
        assert hit is False
        assert cache.stats.evictions >= 1

    def test_concurrent_compiles_single_factory_call(self):
        cache = CompileCache(maxsize=8)
        barrier = threading.Barrier(6)
        hits = []

        def worker() -> None:
            barrier.wait()
            _, hit = cache.get_or_compile(conjunction("race"), 1.0, 3)
            hits.append(hit)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hits.count(False) == 1  # exactly one compile
        assert hits.count(True) == 5
