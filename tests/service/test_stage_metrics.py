"""Metrics threading through the solve pipeline and the §4.12 pipeline."""

from __future__ import annotations

import pytest

from repro.core.pipeline import ConstraintPipeline, PipelineStage
from repro.core.reverse import StringReversal
from repro.core.replace import StringReplaceAll
from repro.core.solver import StringQuboSolver
from repro.service import MetricsRegistry, RetryPolicy

pytestmark = pytest.mark.service


def make_solver(metrics=None):
    return StringQuboSolver(
        num_reads=32, seed=9, sampler_params={"num_sweeps": 300}, metrics=metrics
    )


class TestStringQuboSolverStages:
    def test_embed_anneal_decode_recorded_per_solve(self):
        metrics = MetricsRegistry()
        solver = make_solver(metrics)
        result = solver.solve(StringReversal("hello"))
        assert result.output == "olleh"
        export = metrics.export()
        for stage in ("embed", "anneal", "decode"):
            assert export["histograms"][stage]["count"] == 1
        # Stage times nest inside the reported wall time (embed + anneal).
        stage_sum = (
            export["histograms"]["embed"]["total"]
            + export["histograms"]["anneal"]["total"]
        )
        assert stage_sum <= result.wall_time + 0.05

    def test_metrics_are_optional(self):
        result = make_solver(metrics=None).solve(StringReversal("ab"))
        assert result.output == "ba"


class TestPipelineIntegration:
    def _pipeline(self):
        return ConstraintPipeline(
            [
                PipelineStage("reverse", lambda prev: StringReversal(prev)),
                PipelineStage(
                    "replace_all",
                    lambda prev: StringReplaceAll(prev, "e", "a"),
                ),
            ]
        )

    def test_metrics_record_per_stage_wall_times(self):
        metrics = MetricsRegistry()
        result = self._pipeline().run(
            make_solver(), initial="hello", metrics=metrics
        )
        assert result.output == "ollah"
        export = metrics.export()
        assert export["histograms"]["pipeline.stage.reverse"]["count"] == 1
        assert export["histograms"]["pipeline.stage.replace_all"]["count"] == 1
        assert export["counters"]["pipeline.runs"] == 1
        assert export["counters"]["pipeline.ok"] == 1

    def test_policy_retries_unverified_stage(self):
        solver = make_solver()
        real_solve = solver.solve
        state = {"calls": 0}

        def flaky_solve(formulation, **params):
            state["calls"] += 1
            result = real_solve(formulation, **params)
            if state["calls"] == 1:
                result.ok = False
            return result

        solver.solve = flaky_solve
        pipeline = ConstraintPipeline(
            [PipelineStage("reverse", lambda prev: StringReversal(prev))]
        )
        result = pipeline.run(
            solver, initial="hello", policy=RetryPolicy(max_attempts=3)
        )
        assert result.ok
        assert state["calls"] == 2

    def test_policy_exhaustion_returns_last_stage_result(self):
        solver = make_solver()
        real_solve = solver.solve

        def always_unverified(formulation, **params):
            result = real_solve(formulation, **params)
            result.ok = False
            return result

        solver.solve = always_unverified
        pipeline = ConstraintPipeline(
            [PipelineStage("reverse", lambda prev: StringReversal(prev))]
        )
        result = pipeline.run(
            solver, initial="hi", policy=RetryPolicy(max_attempts=2)
        )
        assert not result.ok  # surfaced, not raised: soft degradation
        assert len(result.stages) == 1

    def test_run_without_policy_or_metrics_unchanged(self):
        result = self._pipeline().run(make_solver(), initial="hello")
        assert result.output == "ollah"
        assert result.ok
        assert result.total_wall_time > 0
