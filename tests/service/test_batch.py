"""Regression tests for the batch solve service.

Covers the acceptance criterion: a warm cache over a batch of 20 repeated
constraints yields a hit per repeat and bit-identical models to the
sequential path at fixed seed, with per-stage timings and the cache hit
rate in the metrics export.
"""

from __future__ import annotations

import json

import pytest

from repro.service import CompileCache, MetricsRegistry, RetryPolicy
from repro.service.batch import BatchItemResult, BatchReport, BatchSolver
from repro.smt import ast
from repro.smt.solver import QuantumSMTSolver

pytestmark = pytest.mark.service

SEED = 7
FAST = {"num_reads": 32, "sampler_params": {"num_sweeps": 300}}

UNIQUE_SCRIPTS = [
    f'(declare-const x String)(assert (= x "{word}"))(check-sat)'
    for word in ("hi", "ok", "go", "no", "up")
]


def make_batch(**overrides) -> BatchSolver:
    kwargs = dict(seed=SEED, executor="serial", **FAST)
    kwargs.update(overrides)
    return BatchSolver(**kwargs)


def sequential_reference(script: str):
    solver = QuantumSMTSolver.from_script_text(script, seed=SEED, **FAST)
    return solver.check_sat()


class TestBatchBasics:
    def test_statuses_in_submission_order(self):
        report = make_batch().solve_batch(UNIQUE_SCRIPTS)
        assert isinstance(report, BatchReport)
        assert [item.index for item in report] == list(range(len(UNIQUE_SCRIPTS)))
        assert report.statuses == ["sat"] * len(UNIQUE_SCRIPTS)
        assert report.models == [{"x": w} for w in ("hi", "ok", "go", "no", "up")]

    def test_accepts_ast_conjunctions_and_scripts(self):
        conjunction = [ast.Eq(ast.StrVar("x"), ast.StrLit("ab"))]
        report = make_batch().solve_batch([UNIQUE_SCRIPTS[0], conjunction])
        assert report.statuses == ["sat", "sat"]
        assert report.models[1] == {"x": "ab"}

    def test_rejects_bad_item_type(self):
        with pytest.raises(TypeError):
            make_batch().solve_batch([42])

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            BatchSolver(num_workers=0)
        with pytest.raises(ValueError):
            BatchSolver(executor="process")
        with pytest.raises(TypeError):
            import numpy as np

            BatchSolver(seed=np.random.default_rng(0))

    def test_empty_batch(self):
        report = make_batch().solve_batch([])
        assert len(report) == 0 and report.ok

    def test_unsat_and_out_of_fragment_items_do_not_abort_batch(self):
        ground_false = '(assert (= "a" "b"))(check-sat)'
        multivar = (
            "(declare-const a String)(declare-const b String)"
            "(assert (= a b))(check-sat)"
        )
        report = make_batch().solve_batch(
            [UNIQUE_SCRIPTS[0], ground_false, multivar]
        )
        assert report.statuses == ["sat", "unsat", "unknown"]
        assert report[2].error_type == "CompilationError"
        assert "several string variables" in report[2].error


class TestWarmCacheAcceptance:
    """The ISSUE acceptance scenario: 20 repeated constraints, warm cache."""

    def test_twenty_repeats_hit_cache_and_match_sequential(self):
        scripts = UNIQUE_SCRIPTS * 4  # 20 items, 5 unique
        batch = make_batch(cache=CompileCache(maxsize=64))
        report = batch.solve_batch(scripts)

        # >= 1 cache hit per repeat: 5 misses (first sightings) + 15 hits.
        stats = report.cache_stats
        assert stats.misses == 5
        assert stats.hits == 15
        assert stats.hit_rate == pytest.approx(0.75)
        hits_by_script = {}
        for script, item in zip(scripts, report):
            hits_by_script.setdefault(script, []).append(item.cache_hit)
        for flags in hits_by_script.values():
            assert flags[0] is False and all(flags[1:])

        # Bit-identical models against the sequential path at fixed seed.
        for script, item in zip(scripts, report):
            reference = sequential_reference(script)
            assert item.status == reference.status
            assert item.model == reference.model

        # Metrics export: per-stage timings + cache hit rate.
        export = report.metrics
        for stage in ("compile", "embed", "anneal", "decode"):
            assert stage in export["histograms"], stage
            assert export["histograms"][stage]["count"] >= 1
        assert export["histograms"]["compile"]["count"] == 5  # misses only
        assert export["histograms"]["anneal"]["count"] >= 20  # one per item (+retries)
        assert export["cache"]["hit_rate"] == pytest.approx(0.75)
        assert export["counters"]["batch.items"] == 20
        assert export["counters"]["batch.sat"] == 20

    def test_metrics_json_round_trips(self):
        batch = make_batch()
        batch.solve_batch(UNIQUE_SCRIPTS[:2])
        parsed = json.loads(batch.metrics_json())
        assert set(parsed) >= {"counters", "histograms", "cache"}


class TestDeterminismAcrossExecutors:
    def test_thread_pool_matches_serial_any_width(self):
        scripts = UNIQUE_SCRIPTS * 2
        serial = make_batch(executor="serial").solve_batch(scripts)
        for workers in (1, 3, 8):
            threaded = make_batch(
                executor="thread", num_workers=workers
            ).solve_batch(scripts)
            assert threaded.statuses == serial.statuses
            assert threaded.models == serial.models

    def test_cache_state_does_not_change_results(self):
        scripts = [UNIQUE_SCRIPTS[0]] * 3
        cold = make_batch(cache=CompileCache(maxsize=64)).solve_batch(scripts)
        warm_cache = CompileCache(maxsize=64)
        make_batch(cache=warm_cache).solve_batch(scripts)
        warm = make_batch(cache=warm_cache).solve_batch(scripts)
        assert cold.models == warm.models
        assert all(item.cache_hit for item in warm)


class TestConcurrentSubmits:
    @pytest.mark.slow
    def test_shared_cache_and_metrics_under_concurrent_batches(self):
        import threading

        cache = CompileCache(maxsize=64)
        metrics = MetricsRegistry()
        errors = []
        reports = []
        lock = threading.Lock()

        def submit():
            try:
                batch = make_batch(
                    executor="thread", num_workers=4, cache=cache, metrics=metrics
                )
                report = batch.solve_batch(UNIQUE_SCRIPTS * 2)
                with lock:
                    reports.append(report)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(reports) == 4
        for report in reports:
            assert report.statuses == ["sat"] * 10
        stats = cache.stats
        assert stats.misses == 5  # compiled once across all batches
        assert stats.hits == 4 * 10 - 5
        assert metrics.counter("batch.items").value == 40


class TestRetryPolicyIntegration:
    def test_policy_is_shared_with_item_solvers(self):
        policy = RetryPolicy(max_attempts=5)
        batch = make_batch(policy=policy)
        assert batch._make_solver().retry_policy is policy

    def test_batch_item_result_repr(self):
        report = make_batch().solve_batch([UNIQUE_SCRIPTS[0]])
        item = report[0]
        assert isinstance(item, BatchItemResult)
        assert "sat" in repr(item)
        assert "n=1" in repr(report)
