"""Tests for the metrics registry: counters, histograms, export, merging."""

from __future__ import annotations

import json
import threading

import pytest

from repro.service.metrics import MetricsRegistry, histogram_summary

pytestmark = pytest.mark.service


class TestCounters:
    def test_inc_and_value(self):
        metrics = MetricsRegistry()
        assert metrics.counter("a").inc() == 1
        assert metrics.counter("a").inc(4) == 5
        assert metrics.counter("a").value == 5
        assert metrics.counter("b").value == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a").inc(-1)

    def test_thread_safe_increments(self):
        metrics = MetricsRegistry()

        def worker():
            for _ in range(1000):
                metrics.counter("n").inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.counter("n").value == 8000


class TestHistograms:
    def test_observe_and_summary(self):
        metrics = MetricsRegistry()
        for v in (0.1, 0.2, 0.3, 0.4):
            metrics.observe("lat", v)
        summary = metrics.export()["histograms"]["lat"]
        assert summary["count"] == 4
        assert summary["total"] == pytest.approx(1.0)
        assert summary["mean"] == pytest.approx(0.25)
        assert summary["min"] == pytest.approx(0.1)
        assert summary["max"] == pytest.approx(0.4)

    def test_time_context_records_segment(self):
        metrics = MetricsRegistry()
        with metrics.time("stage"):
            pass
        values = metrics.values("stage")
        assert len(values) == 1 and values[0] >= 0.0
        # Stopwatch backing is shared storage.
        assert metrics.stopwatch.segments["stage"] == values

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().observe("x", -0.1)

    def test_summary_of_empty_series(self):
        summary = histogram_summary([])
        assert summary["count"] == 0 and summary["p95"] == 0.0

    def test_percentiles_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        summary = histogram_summary(values)
        assert summary["p50"] == pytest.approx(50.0, abs=1.0)
        assert summary["p95"] == pytest.approx(95.0, abs=1.0)


class TestExportAndMerge:
    def test_export_is_json_serializable(self):
        metrics = MetricsRegistry()
        metrics.counter("a").inc()
        metrics.observe("h", 0.5)
        parsed = json.loads(metrics.to_json())
        assert parsed["counters"]["a"] == 1
        assert parsed["histograms"]["h"]["count"] == 1

    def test_merge_folds_counters_and_histograms(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("a").inc(2)
        right.counter("a").inc(3)
        right.counter("b").inc(1)
        left.observe("h", 0.1)
        right.observe("h", 0.2)
        left.merge(right)
        export = left.export()
        assert export["counters"] == {"a": 5, "b": 1}
        assert export["histograms"]["h"]["count"] == 2
