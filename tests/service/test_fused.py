"""The fused batch executor: statuses, fallback discipline, metrics."""

import pytest

from repro.anneal.simulated import SimulatedAnnealingSampler
from repro.service.batch import BatchSolver
from repro.service.fused import solve_batch_fused
from repro.smt.parser import parse_script

FAST = {"num_sweeps": 200}


def scripts(k, template='(declare-const x String)(assert (= x "w{i}"))(check-sat)'):
    return [template.format(i=i) for i in range(k)]


class TestBatchSolverFused:
    def test_executor_validation(self):
        with pytest.raises(ValueError, match="executor"):
            BatchSolver(executor="bogus")
        with pytest.raises(ValueError, match="tile_max"):
            BatchSolver(executor="fused", tile_max=0)

    def test_statuses_match_serial(self):
        items = scripts(5) + [
            '(assert (= "a" "b"))(check-sat)',  # trivially unsat
            '(declare-const y String)'
            '(assert (str.prefixof "ab" y))(assert (= (str.len y) 3))(check-sat)',
        ]
        fused = BatchSolver(
            seed=7, num_reads=32, sampler_params=FAST, executor="fused", tile_max=3
        )
        serial = BatchSolver(
            seed=7, num_reads=32, sampler_params=FAST, executor="serial"
        )
        report_f = fused.solve_batch(items)
        report_s = serial.solve_batch(items)
        assert report_f.statuses == report_s.statuses
        assert report_f.models[:5] == [{"x": f"w{i}"} for i in range(5)]

    def test_tile_max_chunks_do_not_change_results(self):
        items = scripts(6)
        reports = [
            BatchSolver(
                seed=3,
                num_reads=32,
                sampler_params=FAST,
                executor="fused",
                tile_max=tile_max,
            ).solve_batch(items)
            for tile_max in (1, 2, 6)
        ]
        # Batch-invariant RNG: chunking must not change any verdict/model.
        for report in reports[1:]:
            assert report.statuses == reports[0].statuses
            assert report.models == reports[0].models

    def test_fused_metrics(self):
        solver = BatchSolver(
            seed=5, num_reads=32, sampler_params=FAST, executor="fused", tile_max=4
        )
        report = solver.solve_batch(scripts(6))
        counters = report.metrics["counters"]
        assert counters["fused.tiles"] == 2
        assert counters["fused.blocks"] == 6
        assert counters["batch.items"] == 6
        assert counters["batch.sat"] == 6

    def test_cache_hits_across_duplicates(self):
        solver = BatchSolver(
            seed=5, num_reads=32, sampler_params=FAST, executor="fused"
        )
        report = solver.solve_batch(scripts(3) + scripts(3))
        assert sum(1 for item in report if item.cache_hit) == 3

    def test_compilation_error_degrades_to_unknown(self):
        solver = BatchSolver(
            seed=5, num_reads=16, sampler_params=FAST, executor="fused"
        )
        report = solver.solve_batch(
            ['(declare-const y String)(assert (= (str.++ y "b") "ab"))(check-sat)']
            + scripts(1)
        )
        assert report.statuses[0] == "unknown"
        assert report.items[0].error_type
        assert report.statuses[1] == "sat"


class TestSolveBatchFused:
    def test_outcome_paths(self):
        sets = [parse_script(s).assertions for s in scripts(3)]
        sets.append(parse_script('(assert (= "a" "b"))(check-sat)').assertions)
        outcomes = solve_batch_fused(
            sets, seed=2, num_reads=32, sampler_params=FAST
        )
        assert [o.status for o in outcomes] == ["sat", "sat", "sat", "unsat"]
        assert [o.path for o in outcomes] == ["fused", "fused", "fused", "trivial"]

    def test_fallback_on_fused_miss(self):
        # A sampler too weak for the fused single pass: the item must still
        # come back through the per-item fallback (retries + verification)
        # rather than report an unverified result.
        sets = [parse_script(s).assertions for s in scripts(2)]
        outcomes = solve_batch_fused(
            sets,
            seed=2,
            num_reads=1,
            sampler_params={"num_sweeps": 1},
        )
        for outcome in outcomes:
            assert outcome.path in ("fused", "fallback")
            assert outcome.status in ("sat", "unknown")
            if outcome.status == "sat":
                # sat is only ever a verified model, fused or not.
                assert outcome.result.model

    def test_per_item_policies_length_checked(self):
        sets = [parse_script(s).assertions for s in scripts(2)]
        with pytest.raises(ValueError, match="policies"):
            solve_batch_fused(sets, policies=[None])

    def test_sampler_factory_used(self):
        calls = []

        def factory():
            calls.append(1)
            return SimulatedAnnealingSampler()

        sets = [parse_script(s).assertions for s in scripts(2)]
        outcomes = solve_batch_fused(
            sets, seed=4, num_reads=32, sampler_params=FAST, sampler_factory=factory
        )
        assert [o.status for o in outcomes] == ["sat", "sat"]
        assert calls
