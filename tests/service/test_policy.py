"""Fault-injection tests for the retry/timeout/backoff policy."""

from __future__ import annotations

import time

import pytest

from repro.service.policy import (
    AttemptTimeout,
    RetryExhaustedError,
    RetryOutcome,
    RetryPolicy,
)

pytestmark = pytest.mark.service


class Flaky:
    """A stub that fails *n* times (by value or by exception) then succeeds."""

    def __init__(self, failures: int, mode: str = "value") -> None:
        self.failures = failures
        self.mode = mode
        self.calls = 0

    def __call__(self, attempt: int) -> str:
        self.calls += 1
        if self.calls <= self.failures:
            if self.mode == "raise":
                raise RuntimeError(f"injected failure #{self.calls}")
            return ""  # falsy → failed attempt
        return f"ok@{self.calls}"


class TestRetrySemantics:
    def test_first_attempt_success(self):
        flaky = Flaky(failures=0)
        outcome = RetryPolicy(max_attempts=3).run(flaky)
        assert isinstance(outcome, RetryOutcome)
        assert outcome.result == "ok@1"
        assert outcome.attempts == 1
        assert flaky.calls == 1

    def test_fails_n_then_succeeds_within_budget(self):
        flaky = Flaky(failures=2)
        outcome = RetryPolicy(max_attempts=4).run(flaky)
        assert outcome.result == "ok@3"
        assert outcome.attempts == 3
        assert flaky.calls == 3

    def test_exceptions_count_as_failures_and_are_retried(self):
        flaky = Flaky(failures=2, mode="raise")
        outcome = RetryPolicy(max_attempts=3).run(flaky)
        assert outcome.result == "ok@3"
        assert outcome.attempts == 3

    def test_max_attempts_respected_exactly(self):
        flaky = Flaky(failures=10)
        with pytest.raises(RetryExhaustedError):
            RetryPolicy(max_attempts=3).run(flaky)
        assert flaky.calls == 3  # never a fourth call

    def test_exhaustion_raises_typed_error_with_last_result(self):
        flaky = Flaky(failures=10)
        with pytest.raises(RetryExhaustedError) as excinfo:
            RetryPolicy(max_attempts=2).run(flaky, description="stub solve")
        err = excinfo.value
        assert err.attempts == 2
        assert err.last_result == ""
        assert err.last_exception is None
        assert "stub solve" in str(err)

    def test_exhaustion_carries_last_exception(self):
        flaky = Flaky(failures=10, mode="raise")
        with pytest.raises(RetryExhaustedError) as excinfo:
            RetryPolicy(max_attempts=2).run(flaky)
        assert isinstance(excinfo.value.last_exception, RuntimeError)
        assert excinfo.value.last_result is None

    def test_succeeded_predicate_honors_ok_attribute(self):
        class WithOk:
            def __init__(self, ok):
                self.ok = ok

        calls = []

        def attempt(index):
            calls.append(index)
            return WithOk(ok=index >= 2)

        outcome = RetryPolicy(max_attempts=3).run(attempt)
        assert outcome.attempts == 2
        assert calls == [1, 2]


class TestBackoffSchedule:
    def test_schedule_is_geometric_and_capped(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_initial=0.1, backoff_factor=2.0, backoff_max=0.3
        )
        assert policy.backoff_delays() == pytest.approx([0.1, 0.2, 0.3, 0.3])

    def test_default_policy_never_sleeps(self):
        sleeps = []
        flaky = Flaky(failures=2)
        RetryPolicy(max_attempts=3).run(flaky, sleep=sleeps.append)
        assert sleeps == []

    def test_sleep_called_with_schedule_between_attempts(self):
        sleeps = []
        flaky = Flaky(failures=2)
        policy = RetryPolicy(
            max_attempts=4, backoff_initial=0.05, backoff_factor=3.0, backoff_max=1.0
        )
        outcome = policy.run(flaky, sleep=sleeps.append)
        assert sleeps == pytest.approx([0.05, 0.15])  # only before retries
        assert outcome.waited == pytest.approx(0.20)

    def test_no_sleep_after_final_attempt(self):
        sleeps = []
        with pytest.raises(RetryExhaustedError):
            RetryPolicy(max_attempts=3, backoff_initial=0.01).run(
                Flaky(failures=10), sleep=sleeps.append
            )
        assert len(sleeps) == 2  # between attempts only, never trailing


class TestPerAttemptTimeout:
    def test_overdue_attempt_counts_as_failure(self):
        durations = [0.5, 0.0]  # first attempt overruns, second is instant

        def attempt(index):
            time.sleep(durations[index - 1])
            return f"done@{index}"

        policy = RetryPolicy(max_attempts=2, attempt_timeout=0.1)
        outcome = policy.run(attempt)
        assert outcome.result == "done@2"
        assert outcome.attempts == 2

    def test_all_attempts_time_out_raises_typed_error(self):
        def attempt(index):
            time.sleep(0.5)
            return "never"

        policy = RetryPolicy(max_attempts=2, attempt_timeout=0.05)
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.run(attempt)
        assert isinstance(excinfo.value.last_exception, AttemptTimeout)
        assert excinfo.value.last_result is None

    def test_fast_attempts_unaffected_by_timeout(self):
        outcome = RetryPolicy(max_attempts=1, attempt_timeout=5.0).run(
            lambda i: "quick"
        )
        assert outcome.result == "quick"


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"attempt_timeout": 0.0},
            {"attempt_timeout": -1.0},
            {"backoff_initial": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_max": -1.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestSolverIntegration:
    """The policy is the SMT solver's robustness layer (src/repro/smt/solver.py)."""

    def _flaky_driver_solver(self, failures: int, max_attempts: int):
        from repro.smt.solver import QuantumSMTSolver

        solver = QuantumSMTSolver(
            seed=3,
            num_reads=16,
            sampler_params={"num_sweeps": 200},
            retry_policy=RetryPolicy(max_attempts=max_attempts),
        )
        x = solver.declare_const("x")
        from repro.smt import ast

        solver.add_assertion(ast.Eq(x, ast.StrLit("ab")))

        real_solve = solver._driver.solve
        state = {"calls": 0}

        def flaky_solve(formulation, **params):
            state["calls"] += 1
            result = real_solve(formulation, **params)
            if state["calls"] <= failures:
                object.__setattr__(result, "ok", False)
            return result

        solver._driver.solve = flaky_solve
        return solver, state

    def test_recovers_within_attempts(self):
        solver, state = self._flaky_driver_solver(failures=2, max_attempts=3)
        result = solver.check_sat()
        assert result.status == "sat"
        assert state["calls"] == 3

    def test_exhaustion_yields_unknown_with_reason_not_silence(self):
        solver, state = self._flaky_driver_solver(failures=99, max_attempts=2)
        result = solver.check_sat()
        assert result.status == "unknown"
        assert "2 attempts" in result.reason
        assert state["calls"] == 2

    def test_max_attempts_shorthand_builds_policy(self):
        from repro.smt.solver import QuantumSMTSolver

        solver = QuantumSMTSolver(max_attempts=5)
        assert solver.retry_policy.max_attempts == 5
        assert solver.max_attempts == 5
