"""Self-tests for the perf runner (repro.perf.runner).

Uses tiny unregistered specs (short strings, few reads) so the tier-1
suite stays fast while still exercising the real pipeline end to end.
"""

import pytest

from repro.perf.registry import BenchmarkSpec
from repro.perf.runner import (
    STAGES,
    BenchmarkResult,
    WorkloadDeterminismError,
    run_spec,
    run_suite,
)
from repro.perf.workloads import Workload, build_workload
from repro.service.metrics import MetricsRegistry

pytestmark = pytest.mark.perf


def _tiny_solve_spec(name="tiny-equality"):
    return BenchmarkSpec(
        name=name,
        suite="core",
        kind="solve",
        params={
            "formulation": "equality", "target": "hi",
            "num_reads": 8, "num_sweeps": 100, "seed": 11,
        },
    )


def _tiny_kernel_spec():
    return BenchmarkSpec(
        name="tiny-kernel",
        suite="sparse",
        kind="kernel",
        params={
            "length": 4, "coupling_mode": "dense",
            "num_reads": 8, "num_sweeps": 32, "seed": 3,
        },
    )


class TestRunSpec:
    def test_shapes_and_stages(self):
        result = run_spec(_tiny_solve_spec(), repeats=3, warmup=1)
        assert isinstance(result, BenchmarkResult)
        assert len(result.wall_times) == 3
        assert all(t > 0 for t in result.wall_times)
        # Stage series align with the wall series, one total per repeat.
        for name, series in result.stage_times.items():
            assert len(series) == 3, name
        assert set(result.stage_times) & set(STAGES)

    def test_workload_fingerprint(self):
        result = run_spec(_tiny_solve_spec(), repeats=2, warmup=0)
        assert result.workload["output"] == "hi"
        assert result.workload["ok"] is True

    def test_metadata_model_shape(self):
        result = run_spec(_tiny_kernel_spec(), repeats=1, warmup=0)
        assert result.metadata["num_variables"] == 28  # 7 bits x 4 chars
        assert result.metadata["coupling_form"] == "dense"
        assert result.counters.get("kernel.reads") == 8

    def test_determinism_across_invocations(self):
        # The acceptance criterion: two runs at the fixed seed agree on
        # everything except the timing fields.
        a = run_spec(_tiny_solve_spec(), repeats=2, warmup=0).to_dict()
        b = run_spec(_tiny_solve_spec(), repeats=2, warmup=0).to_dict()
        for doc in (a, b):
            doc.pop("wall_times")
            doc.pop("wall")
            doc.pop("stage_median")
        assert a == b

    def test_run_by_name_uses_registry(self):
        with pytest.raises(KeyError):
            run_spec("not-a-registered-benchmark", repeats=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_spec(_tiny_solve_spec(), repeats=0)
        with pytest.raises(ValueError):
            run_spec(_tiny_solve_spec(), warmup=-1)

    def test_nondeterministic_workload_rejected(self, monkeypatch):
        # A workload whose fingerprint drifts between repeats cannot be
        # regression-gated; the runner must refuse it loudly.
        calls = {"n": 0}

        def drifting(metrics):
            calls["n"] += 1
            return {"value": calls["n"]}

        spec = _tiny_solve_spec("drifting")
        workload = Workload(spec, drifting, metadata={})
        monkeypatch.setattr(
            "repro.perf.runner.build_workload", lambda _spec: workload
        )
        with pytest.raises(WorkloadDeterminismError):
            run_spec(spec, repeats=2, warmup=0)


class TestRunSuite:
    def test_explicit_specs(self):
        results = run_suite(
            "core", repeats=1, warmup=0, specs=[_tiny_solve_spec()]
        )
        assert [r.name for r in results] == ["tiny-equality"]

    def test_progress_callback(self):
        seen = []
        run_suite("core", repeats=1, warmup=0,
                  specs=[_tiny_solve_spec()], progress=seen.append)
        assert [spec.name for spec in seen] == ["tiny-equality"]

    def test_unknown_suite(self):
        with pytest.raises(ValueError):
            run_suite("bogus")


class TestWorkloadBuild:
    def test_unknown_kind_rejected(self):
        spec = BenchmarkSpec("x", "core", "solve")
        object.__setattr__(spec, "kind", "mystery")
        with pytest.raises(ValueError):
            build_workload(spec)

    def test_batch_warm_cache_all_hits(self):
        spec = BenchmarkSpec(
            name="tiny-batch-warm",
            suite="service",
            kind="batch",
            params={
                "words": ["hi", "ok"], "repeats": 2, "warm": True,
                "executor": "serial", "num_workers": 1,
                "num_reads": 8, "num_sweeps": 100, "seed": 5,
            },
        )
        workload = build_workload(spec)
        metrics = MetricsRegistry()
        fingerprint = workload.run(metrics)
        assert fingerprint["statuses"] == ["sat"] * 4
        counters = metrics.export()["counters"]
        assert counters.get("cache.hits") == 4
        assert "cache.misses" not in counters
