"""Baseline comparator and CLI self-tests.

Two layers:

* :func:`compare_results` is pure over data, so synthetic timings prove
  the gate logic (a 3x-slowed benchmark fails, jitter does not) without
  rerunning workloads;
* the CLI smoke runs a real ``update`` → ``compare`` cycle on one tiny
  registered spec in a temp directory, then tampers with the stored
  baseline to demonstrate the non-zero exit on a 3x regression — the
  acceptance-criterion scenario.
"""

import copy
import json

import pytest

from repro.perf.__main__ import main
from repro.perf.baseline import (
    SCHEMA_VERSION,
    baseline_path,
    compare_results,
    load_baseline,
    results_to_baseline,
    write_baseline,
)
from repro.perf.registry import BenchmarkSpec
from repro.perf.runner import BenchmarkResult

pytestmark = pytest.mark.perf


def _result(name="eq-n2", wall=None, workload=None, suite="core"):
    return BenchmarkResult(
        name=name,
        suite=suite,
        kind="solve",
        tolerance=0.5,
        repeats=4,
        warmup=1,
        wall_times=wall if wall is not None else [0.10, 0.11, 0.10, 0.12],
        stage_times={"anneal": [0.08, 0.09, 0.08, 0.09]},
        counters={"kernel.reads": 32},
        workload=workload if workload is not None else {"output": "hi", "ok": True},
        metadata={"num_variables": 14},
        params={"seed": 1},
    )


def _baseline(results=None, suite="core"):
    return results_to_baseline(suite, results or [_result()])


class TestCompareResults:
    def test_identical_is_ok(self):
        report = compare_results(_baseline(), [_result()], "core")
        assert report.ok
        assert [row.status for row in report.rows] == ["ok"]

    def test_three_x_slowdown_fails(self):
        slowed = _result(wall=[0.30, 0.33, 0.30, 0.36])
        report = compare_results(_baseline(), [slowed], "core")
        assert not report.ok
        assert report.rows[0].status == "regression"
        assert report.rows[0].ratio == pytest.approx(3.0, rel=0.1)

    def test_jitter_within_band_is_ok(self):
        jittered = _result(wall=[0.11, 0.12, 0.11, 0.13])
        assert compare_results(_baseline(), [jittered], "core").ok

    def test_improvement_reported_not_failed(self):
        faster = _result(wall=[0.03, 0.035, 0.03, 0.04])
        report = compare_results(_baseline(), [faster], "core")
        assert report.ok
        assert report.rows[0].status == "improved"

    def test_tolerance_scale_widens_band(self):
        slowed = _result(wall=[0.30, 0.33, 0.30, 0.36])
        assert not compare_results(_baseline(), [slowed], "core").ok
        assert compare_results(
            _baseline(), [slowed], "core", tolerance_scale=6.0
        ).ok

    def test_workload_drift_fails(self):
        drifted = _result(workload={"output": "ho", "ok": True})
        report = compare_results(_baseline(), [drifted], "core")
        assert not report.ok
        assert report.rows[0].status == "workload-drift"

    def test_workload_drift_allowed(self):
        drifted = _result(workload={"output": "ho", "ok": True})
        report = compare_results(
            _baseline(), [drifted], "core", allow_workload_drift=True
        )
        assert report.ok

    def test_new_benchmark_informational(self):
        report = compare_results(_baseline(), [_result(), _result("brand-new")],
                                 "core")
        assert report.ok
        assert {row.status for row in report.rows} == {"ok", "new"}

    def test_missing_benchmark_informational(self):
        baseline = _baseline([_result(), _result("retired")])
        report = compare_results(baseline, [_result()], "core")
        assert report.ok
        assert {row.status for row in report.rows} == {"ok", "missing"}

    def test_empty_baseline_all_new(self):
        report = compare_results(None, [_result()], "core")
        assert report.ok
        assert report.rows[0].status == "new"

    def test_text_report_mentions_every_row(self):
        slowed = _result(wall=[0.30, 0.33, 0.30, 0.36])
        text = compare_results(_baseline(), [slowed], "core").text_report()
        assert "eq-n2" in text
        assert "regression" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_results(_baseline(), [_result()], "core", tolerance_scale=0)


class TestBaselineFiles:
    def test_round_trip(self, tmp_path):
        path = write_baseline("core", [_result()], root=str(tmp_path))
        assert path == baseline_path("core", str(tmp_path))
        document = load_baseline("core", root=str(tmp_path))
        assert document["schema"] == SCHEMA_VERSION
        assert "eq-n2" in document["benchmarks"]

    def test_deterministic_bytes(self, tmp_path):
        # No timestamps: rewriting the same results is byte-identical, so
        # `update` diffs stay reviewable.
        a = tmp_path / "a"
        b = tmp_path / "b"
        a.mkdir(); b.mkdir()
        write_baseline("core", [_result()], root=str(a))
        write_baseline("core", [_result()], root=str(b))
        assert (a / "BENCH_core.json").read_bytes() == (
            b / "BENCH_core.json"
        ).read_bytes()

    def test_missing_file_is_none(self, tmp_path):
        assert load_baseline("core", root=str(tmp_path)) is None

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_core.json"
        path.write_text(json.dumps({"schema": 999, "benchmarks": {}}))
        with pytest.raises(ValueError):
            load_baseline("core", root=str(tmp_path))

    def test_wrong_suite_rejected(self):
        with pytest.raises(ValueError):
            results_to_baseline("sparse", [_result(suite="core")])


#: The cheapest registered spec — the CLI smoke pipeline runs only this.
_SMOKE_SPEC = "equality-n16"


@pytest.mark.slow
class TestCliSmoke:
    """update → compare on a real registered workload (one tiny spec)."""

    def _update(self, bench_dir):
        return main([
            "update", "--suite", "core", "--spec", _SMOKE_SPEC,
            "--repeats", "2", "--warmup", "0", "--bench-dir", bench_dir,
        ])

    def _compare(self, bench_dir, *extra):
        return main([
            "compare", "--suite", "core", "--spec", _SMOKE_SPEC,
            "--repeats", "2", "--warmup", "0", "--bench-dir", bench_dir,
            *extra,
        ])

    def test_update_then_compare_reports_zero_regressions(self, tmp_path, capsys):
        bench_dir = str(tmp_path)
        assert self._update(bench_dir) == 0
        assert self._compare(bench_dir) == 0
        out = capsys.readouterr().out
        assert "OK: no statistically significant regressions" in out

    def test_tampered_baseline_trips_the_gate(self, tmp_path, capsys):
        # Divide the stored samples by 3: the fresh run now looks 3x
        # slower than its baseline and compare must exit non-zero.
        bench_dir = str(tmp_path)
        assert self._update(bench_dir) == 0
        path = baseline_path("core", bench_dir)
        document = json.loads(open(path).read())
        entry = document["benchmarks"][_SMOKE_SPEC]
        entry["wall_times"] = [t / 3.0 for t in entry["wall_times"]]
        with open(path, "w") as handle:
            json.dump(document, handle)
        assert self._compare(bench_dir) == 1
        captured = capsys.readouterr()
        assert "FAIL: significant perf regression" in captured.err
        assert _SMOKE_SPEC in captured.err

    def test_workload_drift_trips_and_can_be_allowed(self, tmp_path):
        bench_dir = str(tmp_path)
        assert self._update(bench_dir) == 0
        path = baseline_path("core", bench_dir)
        document = json.loads(open(path).read())
        tampered = copy.deepcopy(document)
        tampered["benchmarks"][_SMOKE_SPEC]["workload"]["output"] = "not-it"
        with open(path, "w") as handle:
            json.dump(tampered, handle)
        assert self._compare(bench_dir) == 1
        assert self._compare(bench_dir, "--allow-workload-drift") == 0

    def test_json_report_written(self, tmp_path):
        bench_dir = str(tmp_path)
        assert self._update(bench_dir) == 0
        report_path = tmp_path / "report.json"
        assert self._compare(bench_dir, "--json", str(report_path)) == 0
        document = json.loads(report_path.read_text())
        assert document["ok"] is True
        assert document["comparisons"][0]["suite"] == "core"


class TestCliList:
    def test_list_shows_specs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("smt-legacy-mix", "kernel-sparse-n64", "batch-warm-serial"):
            assert name in out

    def test_unknown_spec_filter_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--spec", "no-such-benchmark", "--repeats", "1"])
