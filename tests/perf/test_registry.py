"""Unit tests for the benchmark registry (repro.perf.registry)."""

import json

import pytest

from repro.perf.registry import (
    KINDS,
    SUITES,
    BenchmarkSpec,
    all_specs,
    baseline_filename,
    get_spec,
    suite_specs,
)

pytestmark = pytest.mark.perf


class TestBenchmarkSpec:
    def test_params_frozen(self):
        spec = BenchmarkSpec("x", "core", "solve", params={"a": 1})
        with pytest.raises(TypeError):
            spec.params["a"] = 2  # type: ignore[index]

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchmarkSpec("", "core", "solve")
        with pytest.raises(ValueError):
            BenchmarkSpec("x", "nope", "solve")
        with pytest.raises(ValueError):
            BenchmarkSpec("x", "core", "nope")
        with pytest.raises(ValueError):
            BenchmarkSpec("x", "core", "solve", tolerance=0.0)

    def test_baseline_file(self):
        assert BenchmarkSpec("x", "sparse", "kernel").baseline_file == (
            "BENCH_sparse.json"
        )


class TestBaselineFilename:
    def test_mapping(self):
        assert baseline_filename("core") == "BENCH_core.json"
        assert baseline_filename("sparse") == "BENCH_sparse.json"
        assert baseline_filename("service") == "BENCH_service.json"

    def test_unknown_suite(self):
        with pytest.raises(ValueError):
            baseline_filename("bogus")


class TestRegisteredSpecs:
    def test_every_suite_populated(self):
        for suite in SUITES:
            assert suite_specs(suite), f"suite {suite} has no specs"

    def test_names_unique(self):
        names = [spec.name for spec in all_specs()]
        assert len(names) == len(set(names))

    def test_kinds_valid(self):
        for spec in all_specs():
            assert spec.kind in KINDS

    def test_params_json_serializable(self):
        # Params are echoed into the committed baseline file; they must
        # survive a JSON round trip losslessly enough to be diffable.
        for spec in all_specs():
            json.dumps(dict(spec.params), sort_keys=True)

    def test_get_spec(self):
        spec = get_spec("palindrome-n12")
        assert spec.suite == "core"
        assert spec.kind == "solve"

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError):
            get_spec("definitely-not-registered")

    def test_suite_specs_unknown(self):
        with pytest.raises(ValueError):
            suite_specs("bogus")

    def test_seeds_pinned(self):
        # Every registered spec must fix its randomness explicitly so the
        # committed baselines are reproducible across machines.
        for spec in all_specs():
            assert any("seed" in key for key in spec.params), spec.name
