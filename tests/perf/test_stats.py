"""Unit tests for the perf harness statistics (repro.perf.stats)."""

import numpy as np
import pytest

from repro.perf.stats import bootstrap_ci, describe, is_regression, mad, median

pytestmark = pytest.mark.perf


class TestPointEstimates:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0]) == 4.0

    def test_mad(self):
        assert mad([1.0, 1.0, 1.0]) == 0.0
        assert mad([1.0, 2.0, 3.0]) == 1.0

    def test_outlier_robustness(self):
        # One descheduled-core repeat must not move the point estimate —
        # the reason the harness gates on medians, not means.
        clean = [0.100, 0.101, 0.099, 0.102, 0.100]
        contaminated = clean[:-1] + [3.0]
        assert median(contaminated) == pytest.approx(median(clean), rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            median([])
        with pytest.raises(ValueError):
            median([float("nan")])
        with pytest.raises(ValueError):
            mad([-1.0])


class TestBootstrapCI:
    def test_deterministic(self):
        values = [0.1, 0.12, 0.11, 0.13, 0.1]
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values, seed=7)

    def test_contains_median(self):
        values = list(np.random.default_rng(0).uniform(0.1, 0.2, size=9))
        lo, hi = bootstrap_ci(values)
        assert lo <= median(values) <= hi

    def test_single_sample_collapses(self):
        assert bootstrap_ci([0.5]) == (0.5, 0.5)

    def test_tighter_with_confidence(self):
        values = list(np.random.default_rng(1).uniform(0.1, 0.3, size=12))
        lo80, hi80 = bootstrap_ci(values, confidence=0.80)
        lo99, hi99 = bootstrap_ci(values, confidence=0.99)
        assert hi80 - lo80 <= hi99 - lo99

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([0.1], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([0.1], n_boot=0)


class TestDescribe:
    def test_fields(self):
        block = describe([0.2, 0.3, 0.25])
        assert set(block) == {
            "count", "median", "mad", "mean", "min", "max",
            "ci_low", "ci_high",
        }
        assert block["count"] == 3
        assert block["min"] <= block["median"] <= block["max"]


class TestIsRegression:
    BASE = [0.100, 0.102, 0.098, 0.101, 0.099]

    def test_three_x_slowdown_flags(self):
        # The acceptance-criterion case: an artificially 3x-slowed
        # benchmark must trip the default gate.
        slowed = [3 * t for t in self.BASE]
        assert is_regression(self.BASE, slowed)

    def test_identical_does_not_flag(self):
        assert not is_regression(self.BASE, list(self.BASE))

    def test_jitter_within_band_does_not_flag(self):
        jittered = [t * 1.2 for t in self.BASE]  # inside the 1.5x band
        assert not is_regression(self.BASE, jittered)

    def test_improvement_is_not_regression(self):
        faster = [t / 3 for t in self.BASE]
        assert not is_regression(self.BASE, faster)
        assert is_regression(faster, self.BASE)

    def test_min_abs_floor_vetoes_microbenchmarks(self):
        # 3x on microseconds is scheduler noise, not a regression.
        base = [1e-5, 1.1e-5, 0.9e-5]
        assert not is_regression(base, [3 * t for t in base])
        assert is_regression(base, [3 * t for t in base], min_abs=0.0)

    def test_overlapping_noise_does_not_flag(self):
        # Wildly noisy candidate whose interval overlaps the baseline's:
        # the separation gate vetoes even though the median ratio is big.
        base = [0.1, 0.1, 0.1, 0.1]
        noisy = [0.05, 0.08, 0.35, 0.40]
        assert not is_regression(base, noisy)

    def test_tolerance_widens_band(self):
        doubled = [2 * t for t in self.BASE]
        assert is_regression(self.BASE, doubled, tolerance=0.5)
        assert not is_regression(self.BASE, doubled, tolerance=2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            is_regression(self.BASE, self.BASE, tolerance=-1.0)
        with pytest.raises(ValueError):
            is_regression(self.BASE, self.BASE, min_abs=-1.0)
        with pytest.raises(ValueError):
            is_regression([], self.BASE)
