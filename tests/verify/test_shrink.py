"""Delta-debugging shrinker unit tests."""

import pytest

from repro.smt import ast
from repro.verify import shrink

X = ast.StrVar("x")


def _len_eq(n):
    return ast.Eq(ast.Length(X), ast.IntLit(n))


def _bulk(n=6):
    """A conjunction with one 'culprit' plus n bystanders."""
    culprit = ast.Eq(X, ast.StrLit("deadbeef"))
    bystanders = [
        ast.Contains(X, ast.StrLit(c)) for c in "deadbe"[:n]
    ]
    return [culprit] + bystanders, culprit


def _has_culprit(assertions):
    return any(
        isinstance(a, ast.Eq)
        and isinstance(a.rhs, ast.StrLit)
        and "deadbeef" in a.rhs.value
        for a in assertions
    )


class TestAssertionMinimization:
    def test_bystanders_dropped(self):
        assertions, culprit = _bulk()
        result = shrink(assertions, _has_culprit, shrink_literals=False)
        assert result.assertions == [culprit]
        assert result.original_count == 7

    def test_seeded_injected_bug_reduces_to_at_most_two(self):
        # The acceptance-criteria shape: a planted 'bug' that needs two
        # interacting assertions, buried under bystanders.
        needed = {repr(_len_eq(3)), repr(ast.PrefixOf(ast.StrLit("q"), X))}

        def fails(assertions):
            return needed <= {repr(a) for a in assertions}

        conjunction = [
            _len_eq(3),
            ast.Contains(X, ast.StrLit("a")),
            ast.PrefixOf(ast.StrLit("q"), X),
            ast.Not(ast.Eq(X, ast.StrLit("zzz"))),
            ast.SuffixOf(ast.StrLit("b"), X),
        ]
        result = shrink(conjunction, fails, shrink_literals=False)
        assert len(result.assertions) <= 2
        assert fails(result.assertions)

    def test_raises_when_predicate_does_not_hold_initially(self):
        with pytest.raises(ValueError):
            shrink([_len_eq(1)], lambda a: False)

    def test_result_script_is_smtlib(self):
        assertions, _ = _bulk(2)
        result = shrink(assertions, _has_culprit, shrink_literals=False)
        assert result.script.startswith("(declare-const x String)")
        assert result.script.rstrip().endswith("(check-sat)")


class TestLiteralShrinking:
    def test_string_literal_canonicalized(self):
        def fails(assertions):
            # Failure depends only on the literal's *length*.
            (a,) = assertions
            return (
                isinstance(a, ast.Eq)
                and isinstance(a.rhs, ast.StrLit)
                and len(a.rhs.value) >= 2
            )

        result = shrink([ast.Eq(X, ast.StrLit("wxyz"))], fails)
        (final,) = result.assertions
        assert final.rhs.value == "aa"

    def test_int_literal_pulled_to_zero(self):
        def fails(assertions):
            (a,) = assertions
            return isinstance(a, ast.Eq) and isinstance(a.rhs, ast.IntLit)

        result = shrink([_len_eq(9)], fails)
        (final,) = result.assertions
        assert final.rhs.value == 0

    def test_nested_literal_sites_reached(self):
        term = ast.Eq(
            X,
            ast.Concat(
                (ast.StrLit("hello"), ast.Reverse(ast.StrLit("world")))
            ),
        )

        def fails(assertions):
            return len(assertions) == 1

        result = shrink([term], fails)
        (final,) = result.assertions
        # Both nested literals canonicalized toward minimal 'a'-strings.
        assert final.rhs.parts[0].value == "a"
        assert final.rhs.parts[1].source.value == "a"


class TestRobustness:
    def test_predicate_exception_treated_as_not_failing(self):
        calls = []

        def fails(assertions):
            calls.append(len(assertions))
            if len(assertions) < 3:
                raise RuntimeError("boom")
            return True

        result = shrink([_len_eq(i) for i in range(5)], fails,
                        shrink_literals=False)
        assert len(result.assertions) == 3  # could not go below the boom line
        assert calls  # predicate was exercised

    def test_budget_exhaustion_flagged(self):
        assertions, _ = _bulk(6)
        result = shrink(assertions, _has_culprit, max_evaluations=3)
        assert result.exhausted_budget
        assert result.evaluations <= 3
        assert _has_culprit(result.assertions)

    def test_predicate_cannot_mutate_caller_assertions(self):
        def fails(assertions):
            assertions.clear()  # hostile predicate
            return True

        original = [_len_eq(1), _len_eq(2)]
        snapshot = list(original)
        shrink(original, fails, shrink_literals=False, max_evaluations=10)
        assert original == snapshot
