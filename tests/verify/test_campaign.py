"""Campaign driver: coverage, determinism, budgets, cache interaction."""

import json

import pytest

from repro.service.cache import CompileCache
from repro.service.metrics import MetricsRegistry
from repro.verify import CampaignConfig, Verdict, run_campaign

FAST = dict(num_reads=32, num_sweeps=200)


def _config(**kw):
    base = dict(instances=12, seed=1, **FAST)
    base.update(kw)
    return CampaignConfig(**base)


class TestCampaignBasics:
    def test_runs_and_counts(self):
        report = run_campaign(_config())
        assert report.instances_run == 12
        assert report.completed
        assert sum(report.verdicts.values()) == 12
        assert report.soundness_bugs == 0

    def test_coverage_tracks_ops(self):
        report = run_campaign(_config(instances=25))
        assert report.coverage  # at least some ops drawn
        assert all(count > 0 for count in report.coverage.values())
        assert "length" in report.coverage

    def test_ops_subset(self):
        report = run_campaign(
            _config(ops=["equality", "length"], unsat_ratio=0.0)
        )
        assert set(report.coverage) <= {"equality", "length"}

    def test_metrics_wiring(self):
        metrics = MetricsRegistry()
        run_campaign(_config(instances=5), metrics=metrics)
        assert metrics.counter("campaign.instances").value == 5
        assert metrics.counter("campaign.runs").value == 1
        assert metrics.counter("oracle.checks").value == 5

    def test_text_report_mentions_result(self):
        report = run_campaign(_config(instances=4))
        text = report.text_report()
        assert "verdicts" in text
        assert ("OK" in text) or ("FAILING" in text)

    def test_bad_ops_string_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(_config(ops="some"))


class TestDeterminism:
    def test_same_seed_byte_identical_json(self):
        a = run_campaign(_config())
        b = run_campaign(_config())
        assert a.to_json() == b.to_json()

    def test_cold_vs_warm_cache_byte_identical_json(self):
        # The PR's acceptance criterion: cache hits must never change a
        # verdict, so a warm second run reports identical JSON bytes.
        cache = CompileCache(maxsize=512)
        cold = run_campaign(_config(), cache=cache)
        warm = run_campaign(_config(), cache=cache)
        assert cold.to_json() == warm.to_json()
        assert warm.cache_hits > cold.cache_hits  # cache actually used

    def test_serial_matches_parallel(self):
        serial = run_campaign(_config(num_workers=1))
        parallel = run_campaign(_config(num_workers=3))
        assert serial.to_json() == parallel.to_json()

    def test_json_has_no_timing_fields(self):
        payload = json.loads(run_campaign(_config(instances=3)).to_json())
        flat = json.dumps(payload)
        assert "wall" not in flat
        assert "cache" not in flat


class TestBudgetsAndFailures:
    def test_wall_time_budget_stops_early(self):
        report = run_campaign(
            _config(instances=500, max_wall_time=0.0)
        )
        assert not report.completed
        assert report.instances_run < 500

    def test_completeness_misses_are_shrunk(self):
        # Starve the annealer so misses occur, then require every miss
        # to carry a shrunk script.
        report = run_campaign(
            CampaignConfig(
                instances=20,
                seed=3,
                num_reads=2,
                num_sweeps=4,
                max_attempts=1,
                max_length=4,
                unsat_ratio=0.0,
            )
        )
        misses = [
            f for f in report.failures
            if f.kind == Verdict.COMPLETENESS_MISS.value
        ]
        assert report.completeness_misses > 0
        assert misses
        for record in misses:
            if record.shrunk_script:  # flaky re-runs may keep it unshrunk
                assert record.shrunk_assertions <= record.original_assertions
                assert "(check-sat)" in record.shrunk_script
        assert any(record.shrunk_script for record in misses)

    def test_shrunk_failures_written_to_corpus(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        report = run_campaign(
            CampaignConfig(
                instances=20,
                seed=3,
                num_reads=2,
                num_sweeps=4,
                max_attempts=1,
                max_length=4,
                unsat_ratio=0.0,
                corpus_dir=str(corpus_dir),
            )
        )
        written = sorted(p.name for p in corpus_dir.glob("*.smt2"))
        recorded = sorted(
            f.corpus_file for f in report.failures if f.corpus_file
        )
        assert written == recorded
        assert written  # at least one miss landed in the corpus
        text = (corpus_dir / written[0]).read_text()
        assert "; expect: sat" in text

    def test_metamorphic_mode_counts_checks(self):
        report = run_campaign(
            _config(instances=8, metamorphic=True, unsat_ratio=0.0)
        )
        assert report.metamorphic_checks > 0
        assert report.metamorphic_violations == 0
        assert report.ok
