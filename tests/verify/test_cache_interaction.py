"""CompileCache x DifferentialOracle: a cache hit must never change a verdict.

Satellite of the verification-harness PR: the compile cache is keyed on
the full content hash (assertions repr + penalty + seed), so a hit
returns the *identical* compiled problem and the solve path proceeds
bit-for-bit as on a miss. These tests pin that contract at the oracle
and campaign levels.
"""

from repro.service.cache import CompileCache
from repro.smt import ast
from repro.smt.generator import InstanceGenerator
from repro.verify import DifferentialOracle

FAST = dict(num_reads=48, sampler_params={"num_sweeps": 300})


def _oracle(cache):
    return DifferentialOracle(seed=0, cache=cache, **FAST)


class TestColdVsWarm:
    def test_verdict_identical_cold_vs_warm(self):
        cache = CompileCache(maxsize=64)
        gen = InstanceGenerator(seed=13, ops="all", max_length=3)
        for _ in range(6):
            inst = gen.generate()
            cold = _oracle(cache).check(inst.assertions, witness=inst.witness)
            warm = _oracle(cache).check(inst.assertions, witness=inst.witness)
            assert not cold.cache_hit
            assert warm.cache_hit
            assert cold.to_dict() == warm.to_dict()

    def test_shared_cache_across_oracles_same_reports(self):
        cache = CompileCache(maxsize=64)
        uncached = DifferentialOracle(seed=0, **FAST)
        cached = _oracle(cache)
        inst = InstanceGenerator(seed=14, ops="all").generate()
        a = uncached.check(inst.assertions, witness=inst.witness)
        b = cached.check(inst.assertions, witness=inst.witness)
        c = cached.check(inst.assertions, witness=inst.witness)
        assert a.to_dict() == b.to_dict() == c.to_dict()

    def test_cache_key_distinguishes_seeds(self):
        cache = CompileCache(maxsize=64)
        inst = InstanceGenerator(seed=15, ops="all").generate()
        DifferentialOracle(seed=0, cache=cache, **FAST).check(
            inst.assertions, witness=inst.witness
        )
        report = DifferentialOracle(seed=1, cache=cache, **FAST).check(
            inst.assertions, witness=inst.witness
        )
        # Different solver seed -> different cache key -> no false hit.
        assert not report.cache_hit

    def test_hit_skips_recompilation(self):
        cache = CompileCache(maxsize=64)
        oracle = _oracle(cache)
        assertions = [ast.Eq(ast.Length(ast.StrVar("x")), ast.IntLit(2))]
        oracle.check(assertions)
        before = cache.stats.misses
        oracle.check(assertions)
        assert cache.stats.misses == before
        assert cache.stats.hits >= 1
