"""Metamorphic relations: applicability, preservation, violation detection."""

import pytest

from repro.smt import ast
from repro.smt.generator import InstanceGenerator
from repro.smt.theory import eval_formula
from repro.verify import (
    MetamorphicRelation,
    MetamorphicViolation,
    RELATIONS,
    check_relation,
)
from repro.verify.metamorphic import relation_by_name

X = ast.StrVar("x")


class TestRelationMechanics:
    def test_all_relations_named_and_described(self):
        names = [r.name for r in RELATIONS]
        assert names == [
            "double_reverse",
            "concat_reassociation",
            "equality_symmetry",
            "palindrome_reverse",
            "replace_absent_noop",
        ]
        assert all(r.description for r in RELATIONS)

    def test_relation_by_name(self):
        assert relation_by_name("double_reverse") is RELATIONS[0]
        with pytest.raises(KeyError):
            relation_by_name("nope")

    def test_not_applicable_returns_none(self):
        # No literal, no equality: nothing for palindrome_reverse to do.
        relation = relation_by_name("palindrome_reverse")
        assert relation.apply([ast.Contains(X, X)]) is None

    def test_identity_transform_treated_as_not_applicable(self):
        relation = relation_by_name("equality_symmetry")
        # No Eq anywhere -> transform is the identity -> None.
        assert relation.apply([ast.Contains(X, ast.StrLit("a"))]) is None


class TestTransformShapes:
    def test_double_reverse_wraps_literals(self):
        relation = relation_by_name("double_reverse")
        (out,) = relation.apply([ast.Eq(X, ast.StrLit("abc"))])
        assert isinstance(out.rhs, ast.Reverse)
        assert out.rhs.source.value == "cba"
        assert eval_formula(out, {"x": "abc"})

    def test_concat_reassociation_splits_literal_rhs(self):
        relation = relation_by_name("concat_reassociation")
        (out,) = relation.apply([ast.Eq(X, ast.StrLit("abcd"))])
        assert isinstance(out.rhs, ast.Concat)
        assert [p.value for p in out.rhs.parts] == ["ab", "cd"]

    def test_equality_symmetry_flips_both_orientations(self):
        relation = relation_by_name("equality_symmetry")
        eq = ast.Eq(ast.Length(X), ast.IntLit(2))
        out = relation.apply([eq, ast.Not(eq)])
        assert isinstance(out[0].lhs, ast.IntLit)
        assert isinstance(out[1].operand.lhs, ast.IntLit)

    def test_palindrome_reverse_only_on_palindromes(self):
        relation = relation_by_name("palindrome_reverse")
        assert relation.apply([ast.Eq(X, ast.StrLit("ab"))]) is None
        (out,) = relation.apply([ast.Eq(X, ast.StrLit("abba"))])
        assert isinstance(out.rhs, ast.Reverse)

    def test_replace_absent_noop_pattern_is_absent(self):
        relation = relation_by_name("replace_absent_noop")
        (out,) = relation.apply([ast.Eq(X, ast.StrLit("az"))])
        assert isinstance(out.rhs, ast.Replace)
        pattern = out.rhs.old.value
        assert pattern not in "az"
        assert eval_formula(out, {"x": "az"})


class TestCheckRelation:
    def test_all_relations_hold_on_generated_instances(self):
        gen = InstanceGenerator(seed=9, ops="all", max_length=3)
        applied = 0
        for _ in range(15):
            inst = gen.generate()
            for relation in RELATIONS:
                out = check_relation(relation, inst.assertions, inst.witness)
                if out is not None:
                    applied += 1
        assert applied > 10

    def test_broken_transform_caught_by_witness_layer(self):
        broken = MetamorphicRelation(
            "broken",
            "flips a literal (not semantics-preserving)",
            lambda assertions: [
                ast.Eq(X, ast.StrLit("zz")) for _ in assertions
            ],
        )
        with pytest.raises(MetamorphicViolation):
            check_relation(
                broken, [ast.Eq(X, ast.StrLit("ab"))], {"x": "ab"}
            )

    def test_broken_ground_transform_caught(self):
        broken = MetamorphicRelation(
            "broken_ground",
            "changes ground truth",
            lambda assertions: [ast.Eq(ast.StrLit("a"), ast.StrLit("b"))],
        )
        with pytest.raises(MetamorphicViolation):
            check_relation(
                broken, [ast.Eq(ast.StrLit("a"), ast.StrLit("a"))], None
            )

    def test_witness_energy_preserved_across_transform(self):
        # The cross-compilation invariant: recompiled QUBOs assign the
        # witness the same energy before and after the rewrite.
        assertions = [
            ast.Eq(ast.Length(X), ast.IntLit(2)),
            ast.PrefixOf(ast.StrLit("a"), X),
        ]
        for relation in RELATIONS:
            out = check_relation(relation, assertions, {"x": "ab"})
            if out is not None:
                for original, rewritten in zip(assertions, out):
                    assert eval_formula(rewritten, {"x": "ab"})
