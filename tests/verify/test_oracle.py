"""DifferentialOracle: classification taxonomy and end-to-end checks."""

import pytest

from repro.smt import ast
from repro.smt.solver import SmtResult
from repro.smt.status import SolveStatus
from repro.verify import DifferentialOracle, Verdict

X = ast.StrVar("x")


def _len_eq(n):
    return ast.Eq(ast.Length(X), ast.IntLit(n))


def _assertions():
    return [_len_eq(2), ast.PrefixOf(ast.StrLit("a"), X)]


@pytest.fixture(scope="module")
def oracle():
    return DifferentialOracle(
        seed=0, num_reads=48, sampler_params={"num_sweeps": 300}
    )


class TestClassify:
    """Pure classification over synthetic (quantum, reference) pairs."""

    def test_agree_sat_with_audited_model(self, oracle):
        q = SmtResult(status="sat", model={"x": "ab"})
        r = SmtResult(status="sat", model={"x": "ab"})
        report = oracle.classify(_assertions(), q, r)
        assert report.verdict is Verdict.AGREE_SAT
        assert report.checked_assertions == 2
        assert report.verdict.is_agreement and not report.verdict.is_bug

    def test_sat_with_bad_model_is_soundness_bug(self, oracle):
        q = SmtResult(status="sat", model={"x": "bb"})  # violates prefixof
        r = SmtResult(status="sat", model={"x": "ab"})
        report = oracle.classify(_assertions(), q, r)
        assert report.verdict is Verdict.SOUNDNESS_BUG
        assert "violates" in report.reason
        assert report.verdict.is_bug

    def test_sat_vs_reference_unsat_is_soundness_bug(self, oracle):
        # Model passes the audit, but the reference claims unsat: one of
        # the two engines must be wrong — flagged either way.
        q = SmtResult(status="sat", model={"x": "ab"})
        r = SmtResult(status="unsat")
        report = oracle.classify(_assertions(), q, r)
        assert report.verdict is Verdict.SOUNDNESS_BUG

    def test_agree_unsat(self, oracle):
        q = SmtResult(status="unsat")
        r = SmtResult(status="unsat")
        report = oracle.classify([_len_eq(1), _len_eq(2)], q, r)
        assert report.verdict is Verdict.AGREE_UNSAT

    def test_quantum_unsat_on_witnessed_instance_is_soundness_bug(self, oracle):
        q = SmtResult(status="unsat")
        r = SmtResult(status="unknown")
        report = oracle.classify(_assertions(), q, r, witness={"x": "ab"})
        assert report.verdict is Verdict.SOUNDNESS_BUG

    def test_unknown_on_planted_sat_is_completeness_miss(self, oracle):
        q = SmtResult(status="unknown", reason="no verified witness")
        r = SmtResult(status="unknown")
        report = oracle.classify(_assertions(), q, r, witness={"x": "ab"})
        assert report.verdict is Verdict.COMPLETENESS_MISS

    def test_unknown_on_expected_sat_is_completeness_miss(self, oracle):
        q = SmtResult(status="unknown")
        r = SmtResult(status="unknown")
        report = oracle.classify(
            _assertions(), q, r, expected=SolveStatus.SAT
        )
        assert report.verdict is Verdict.COMPLETENESS_MISS

    def test_unknown_everywhere_is_unresolved(self, oracle):
        q = SmtResult(status="unknown")
        r = SmtResult(status="unknown")
        report = oracle.classify(_assertions(), q, r)
        assert report.verdict is Verdict.UNRESOLVED

    def test_bogus_witness_does_not_plant_sat(self, oracle):
        q = SmtResult(status="unknown")
        r = SmtResult(status="unknown")
        report = oracle.classify(_assertions(), q, r, witness={"x": "zz"})
        assert report.verdict is Verdict.UNRESOLVED

    def test_to_dict_is_json_friendly(self, oracle):
        import json

        q = SmtResult(status="sat", model={"x": "ab"})
        r = SmtResult(status="sat", model={"x": "ab"})
        payload = oracle.classify(_assertions(), q, r).to_dict()
        assert json.loads(json.dumps(payload))["verdict"] == "agree_sat"


class TestEndToEnd:
    def test_simple_sat_instance_agrees(self, oracle):
        report = oracle.check(_assertions(), witness={"x": "ab"})
        assert report.verdict in (
            Verdict.AGREE_SAT,
            Verdict.COMPLETENESS_MISS,
        )
        if report.verdict is Verdict.AGREE_SAT:
            assert report.quantum_model["x"].startswith("a")

    def test_ground_false_assertion(self, oracle):
        report = oracle.check(
            [ast.Eq(ast.StrLit("a"), ast.StrLit("b"))],
            expected=SolveStatus.UNSAT,
        )
        assert report.verdict in (Verdict.AGREE_UNSAT, Verdict.UNRESOLVED)
        assert report.verdict is not Verdict.SOUNDNESS_BUG

    def test_dpllt_reference(self):
        oracle = DifferentialOracle(
            seed=0,
            num_reads=48,
            sampler_params={"num_sweeps": 300},
            reference="dpllt",
        )
        report = oracle.check(_assertions(), witness={"x": "ab"})
        assert report.verdict is not Verdict.SOUNDNESS_BUG

    def test_bad_reference_name_rejected(self):
        with pytest.raises(ValueError):
            DifferentialOracle(reference="z3")

    def test_non_int_seed_rejected(self):
        import random

        with pytest.raises(TypeError):
            DifferentialOracle(seed=random.Random(0))

    def test_metrics_counters_recorded(self):
        from repro.service.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        oracle = DifferentialOracle(
            seed=0,
            num_reads=48,
            sampler_params={"num_sweeps": 300},
            metrics=metrics,
        )
        oracle.check(_assertions(), witness={"x": "ab"})
        assert metrics.counter("oracle.checks").value == 1
