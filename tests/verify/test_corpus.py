"""Regression corpus: save/load round trips and oracle replay."""

import pytest

from repro.smt import ast
from repro.smt.status import SolveStatus
from repro.verify import (
    DifferentialOracle,
    load_corpus,
    replay_corpus,
    save_case,
)

X = ast.StrVar("x")
FAST_ORACLE = dict(num_reads=48, sampler_params={"num_sweeps": 300})


def _case_assertions():
    return [
        ast.Eq(ast.Length(X), ast.IntLit(2)),
        ast.PrefixOf(ast.StrLit("a"), X),
    ]


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        path = save_case(
            str(tmp_path),
            "case-0001",
            _case_assertions(),
            expected=SolveStatus.SAT,
            comment="hand-written seed case",
        )
        text = open(path).read()
        assert text.startswith("; expect: sat\n; hand-written seed case\n")
        (case,) = load_corpus(str(tmp_path))
        assert case.name == "case-0001"
        assert case.expected is SolveStatus.SAT
        assert [repr(a) for a in case.assertions] == [
            repr(a) for a in _case_assertions()
        ]

    def test_expected_optional(self, tmp_path):
        save_case(str(tmp_path), "noexpect", _case_assertions())
        (case,) = load_corpus(str(tmp_path))
        assert case.expected is None

    def test_unsafe_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_case(str(tmp_path), "../escape", _case_assertions())

    def test_missing_directory_loads_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []

    def test_non_smt2_files_ignored(self, tmp_path):
        (tmp_path / "README.md").write_text("not a case")
        save_case(str(tmp_path), "real", _case_assertions())
        assert [c.name for c in load_corpus(str(tmp_path))] == ["real"]

    def test_cases_sorted_by_name(self, tmp_path):
        save_case(str(tmp_path), "b-case", _case_assertions())
        save_case(str(tmp_path), "a-case", _case_assertions())
        assert [c.name for c in load_corpus(str(tmp_path))] == [
            "a-case",
            "b-case",
        ]


class TestReplay:
    def test_replay_counts_verdicts(self, tmp_path):
        save_case(
            str(tmp_path), "sat-case", _case_assertions(),
            expected=SolveStatus.SAT,
        )
        oracle = DifferentialOracle(seed=0, **FAST_ORACLE)
        report = replay_corpus(str(tmp_path), oracle)
        assert report.total == 1
        assert sum(report.verdicts.values()) == 1
        assert report.ok  # no soundness bug possible here
        assert report.cases[0]["expected"] == "sat"

    def test_replay_empty_directory(self, tmp_path):
        report = replay_corpus(str(tmp_path))
        assert report.total == 0
        assert report.ok

    def test_checked_in_corpus_replays_clean(self):
        # The repository's own corpus (seeded + shrunk campaign misses)
        # must never produce a soundness bug.
        import pathlib

        corpus = pathlib.Path(__file__).resolve().parent.parent / "corpus"
        oracle = DifferentialOracle(seed=0, **FAST_ORACLE)
        report = replay_corpus(str(corpus), oracle)
        assert report.total > 0
        assert report.ok, report.text_report()


MULTI_QUERY_TEXT = """\
; expect: sat
; expect: unsat
; expect: sat
(declare-const x String)
(assert (= (str.len x) 2))
(check-sat)
(push 1)
(assert (= x "aa"))
(assert (= x "bb"))
(check-sat)
(pop 1)
(check-sat)
"""


class _StubOracle:
    """Canned per-query reports, recorded calls — no annealing."""

    def __init__(self, reports):
        from collections import deque

        self.reports = deque(reports)
        self.calls = []

    def check(self, assertions, expected=None):
        self.calls.append((list(assertions), expected))
        return self.reports.popleft()


def _report(verdict, quantum="sat", reference="sat"):
    from repro.verify.oracle import OracleReport, Verdict

    return OracleReport(
        verdict=Verdict(verdict),
        quantum_status=SolveStatus.from_value(quantum),
        reference_status=SolveStatus.from_value(reference),
    )


class TestMultiQueryCases:
    def test_load_parses_one_expect_per_query(self, tmp_path):
        (tmp_path / "multi.smt2").write_text(MULTI_QUERY_TEXT)
        (case,) = load_corpus(str(tmp_path))
        assert case.expected is SolveStatus.SAT
        assert case.expected_statuses == [
            SolveStatus.SAT,
            SolveStatus.UNSAT,
            SolveStatus.SAT,
        ]
        # Queries are the flattened stack at each check-sat.
        assert [len(q) for q in case.queries] == [1, 3, 1]
        assert case.queries[0] == case.queries[2]

    def test_replay_walks_every_query_with_its_expectation(self, tmp_path):
        from repro.verify.corpus import _replay_case

        (tmp_path / "multi.smt2").write_text(MULTI_QUERY_TEXT)
        (case,) = load_corpus(str(tmp_path))
        oracle = _StubOracle(
            [
                _report("agree_sat"),
                _report("agree_unsat", quantum="unsat", reference="unsat"),
                _report("agree_sat"),
            ]
        )
        record = _replay_case(case, oracle)
        assert [expected for _a, expected in oracle.calls] == [
            SolveStatus.SAT,
            SolveStatus.UNSAT,
            SolveStatus.SAT,
        ]
        assert oracle.calls[1][0] == case.queries[1]
        # Worst-of ranks agreements below misses; between the two
        # agreements the later severity entry (agree_unsat) wins.
        assert record["verdict"] == "agree_unsat"
        assert [q["verdict"] for q in record["queries"]] == [
            "agree_sat",
            "agree_unsat",
            "agree_sat",
        ]

    def test_case_verdict_is_worst_per_query_verdict(self, tmp_path):
        from repro.verify.corpus import _replay_case

        (tmp_path / "multi.smt2").write_text(MULTI_QUERY_TEXT)
        (case,) = load_corpus(str(tmp_path))
        oracle = _StubOracle(
            [
                _report("agree_sat"),
                _report("soundness_bug", quantum="sat", reference="unsat"),
                _report("unresolved", quantum="unknown"),
            ]
        )
        record = _replay_case(case, oracle)
        assert record["verdict"] == "soundness_bug"

    def test_soundness_bug_at_depth_fails_the_report(self, tmp_path):
        (tmp_path / "multi.smt2").write_text(MULTI_QUERY_TEXT)
        oracle = _StubOracle(
            [
                _report("agree_sat"),
                _report("soundness_bug", quantum="sat", reference="unsat"),
                _report("agree_sat"),
            ]
        )
        report = replay_corpus(str(tmp_path), oracle)
        assert report.total == 1
        assert report.soundness_bugs == 1
        assert not report.ok

    def test_single_query_replay_is_unchanged(self, tmp_path):
        from repro.verify.corpus import _replay_case

        save_case(
            str(tmp_path), "single", _case_assertions(),
            expected=SolveStatus.SAT,
        )
        (case,) = load_corpus(str(tmp_path))
        assert case.expected_statuses == [SolveStatus.SAT]
        assert len(case.queries) == 1
        oracle = _StubOracle([_report("agree_sat")])
        record = _replay_case(case, oracle)
        assert "queries" not in record  # single-query keeps the flat record
        assert oracle.calls == [(case.assertions, SolveStatus.SAT)]

    def test_checked_in_pushpop_seeds_load(self):
        import pathlib

        corpus = pathlib.Path(__file__).resolve().parent.parent / "corpus"
        by_name = {c.name: c for c in load_corpus(str(corpus))}
        case = by_name["seed-pushpop-deep-repush"]
        assert len(case.queries) == 4
        assert [s.value for s in case.expected_statuses] == [
            "sat", "unsat", "sat", "unsat",
        ]
        case = by_name["seed-pushpop-contradict-pop"]
        assert len(case.queries) == 3
        assert case.queries[0] == case.queries[2]
