"""Regression corpus: save/load round trips and oracle replay."""

import pytest

from repro.smt import ast
from repro.smt.status import SolveStatus
from repro.verify import (
    DifferentialOracle,
    load_corpus,
    replay_corpus,
    save_case,
)

X = ast.StrVar("x")
FAST_ORACLE = dict(num_reads=48, sampler_params={"num_sweeps": 300})


def _case_assertions():
    return [
        ast.Eq(ast.Length(X), ast.IntLit(2)),
        ast.PrefixOf(ast.StrLit("a"), X),
    ]


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        path = save_case(
            str(tmp_path),
            "case-0001",
            _case_assertions(),
            expected=SolveStatus.SAT,
            comment="hand-written seed case",
        )
        text = open(path).read()
        assert text.startswith("; expect: sat\n; hand-written seed case\n")
        (case,) = load_corpus(str(tmp_path))
        assert case.name == "case-0001"
        assert case.expected is SolveStatus.SAT
        assert [repr(a) for a in case.assertions] == [
            repr(a) for a in _case_assertions()
        ]

    def test_expected_optional(self, tmp_path):
        save_case(str(tmp_path), "noexpect", _case_assertions())
        (case,) = load_corpus(str(tmp_path))
        assert case.expected is None

    def test_unsafe_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_case(str(tmp_path), "../escape", _case_assertions())

    def test_missing_directory_loads_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []

    def test_non_smt2_files_ignored(self, tmp_path):
        (tmp_path / "README.md").write_text("not a case")
        save_case(str(tmp_path), "real", _case_assertions())
        assert [c.name for c in load_corpus(str(tmp_path))] == ["real"]

    def test_cases_sorted_by_name(self, tmp_path):
        save_case(str(tmp_path), "b-case", _case_assertions())
        save_case(str(tmp_path), "a-case", _case_assertions())
        assert [c.name for c in load_corpus(str(tmp_path))] == [
            "a-case",
            "b-case",
        ]


class TestReplay:
    def test_replay_counts_verdicts(self, tmp_path):
        save_case(
            str(tmp_path), "sat-case", _case_assertions(),
            expected=SolveStatus.SAT,
        )
        oracle = DifferentialOracle(seed=0, **FAST_ORACLE)
        report = replay_corpus(str(tmp_path), oracle)
        assert report.total == 1
        assert sum(report.verdicts.values()) == 1
        assert report.ok  # no soundness bug possible here
        assert report.cases[0]["expected"] == "sat"

    def test_replay_empty_directory(self, tmp_path):
        report = replay_corpus(str(tmp_path))
        assert report.total == 0
        assert report.ok

    def test_checked_in_corpus_replays_clean(self):
        # The repository's own corpus (seeded + shrunk campaign misses)
        # must never produce a soundness bug.
        import pathlib

        corpus = pathlib.Path(__file__).resolve().parent.parent / "corpus"
        oracle = DifferentialOracle(seed=0, **FAST_ORACLE)
        report = replay_corpus(str(corpus), oracle)
        assert report.total > 0
        assert report.ok, report.text_report()
