"""The classical optimality oracle, fuzz campaign, corpus replay, CLI."""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.opt.driver import AnytimeOptimizer
from repro.opt.result import OptimizeResult, OptStatus
from repro.verify.__main__ import main as verify_main
from repro.verify.optimality import (
    OptCampaignConfig,
    OptimalityOracle,
    OptVerdict,
    certificate_violation,
    replay_opt_corpus,
    run_opt_campaign,
)
from repro.smt.parser import parse_script

pytestmark = pytest.mark.opt

CORPUS_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "corpus", "opt"
)


def _split(text: str):
    script = parse_script(text)
    return list(script.assertions), list(script.soft_assertions)


class TestCertificateViolation:
    def test_valid_certificate_passes(self):
        assert certificate_violation(
            {"hard_scale": 10.0, "hard_gap": 1.0, "soft_budget": 5.0,
             "num_soft_encoded": 2}
        ) is None

    def test_violation_reported(self):
        message = certificate_violation(
            {"hard_scale": 2.0, "hard_gap": 1.0, "soft_budget": 5.0,
             "num_soft_encoded": 2}
        )
        assert message is not None and "violated" in message

    def test_empty_or_soft_free_certificates_vacuous(self):
        assert certificate_violation({}) is None
        assert certificate_violation(
            {"hard_scale": 0.0, "hard_gap": 0.0, "soft_budget": 0.0,
             "num_soft_encoded": 0}
        ) is None


class TestReferenceOptimize:
    def setup_method(self):
        self.oracle = OptimalityOracle()

    def test_small_instance_optimal(self):
        hard, soft = _split(
            "(declare-const x String)"
            "(assert (= (str.len x) 1))"
            '(assert-soft (= x "a") :weight 1)'
            '(assert-soft (= x "b") :weight 3)'
        )
        reference = self.oracle.reference_optimize(hard, soft)
        assert reference.status is OptStatus.OPTIMAL
        assert reference.objective == 1.0
        assert reference.model == {"x": "b"}
        assert reference.complete

    def test_ground_false_hard_infeasible(self):
        hard, soft = _split(
            '(assert (= "a" "b"))'
            "(declare-const x String)"
            '(assert-soft (= x "a"))'
        )
        reference = self.oracle.reference_optimize(hard, soft)
        assert reference.status is OptStatus.INFEASIBLE

    def test_ground_soft_cost_included(self):
        hard, soft = _split(
            '(assert-soft (= "a" "b") :weight 2)'
            '(assert-soft (= "a" "a") :weight 1)'
        )
        reference = self.oracle.reference_optimize(hard, soft)
        assert reference.status is OptStatus.OPTIMAL
        assert reference.objective == 2.0

    def test_node_budget_degrades_to_incomplete(self):
        # Conflicting softs keep the minimum cost above zero, so the
        # enumeration cannot short-circuit and must hit the node budget.
        oracle = OptimalityOracle(node_budget=1)
        hard, soft = _split(
            "(declare-const x String)"
            "(assert (= (str.len x) 2))"
            '(assert-soft (= (str.at x 0) "a") :weight 1)'
            '(assert-soft (= (str.at x 0) "b") :weight 1)'
        )
        reference = oracle.reference_optimize(hard, soft)
        assert not reference.complete
        assert reference.status in (OptStatus.FEASIBLE, OptStatus.UNKNOWN)


class TestClassify:
    INSTANCE = (
        "(declare-const x String)"
        "(assert (= (str.len x) 1))"
        '(assert (= (str.at x 0) "a"))'
        '(assert-soft (= x "b") :weight 2)'
    )

    def setup_method(self):
        self.oracle = OptimalityOracle()
        self.hard, self.soft = _split(self.INSTANCE)
        self.reference = self.oracle.reference_optimize(self.hard, self.soft)

    def _classify(self, result):
        return self.oracle.classify(
            self.hard, self.soft, result, self.reference
        )

    def test_agree_optimal_end_to_end(self):
        result = AnytimeOptimizer(seed=0).optimize(self.hard, self.soft)
        report = self.oracle.check(self.hard, self.soft, result)
        assert report.verdict is OptVerdict.AGREE_OPTIMAL

    def test_hard_violation_is_soundness_bug(self):
        report = self._classify(
            OptimizeResult(
                status=OptStatus.FEASIBLE, model={"x": "b"},
                objective=0.0, lower_bound=0.0, upper_bound=0.0,
            )
        )
        assert report.verdict is OptVerdict.SOUNDNESS_BUG
        assert "hard" in report.reason

    def test_misreported_objective_is_soundness_bug(self):
        report = self._classify(
            OptimizeResult(
                status=OptStatus.FEASIBLE, model={"x": "a"},
                objective=0.0, lower_bound=0.0, upper_bound=0.0,
            )
        )
        assert report.verdict is OptVerdict.SOUNDNESS_BUG
        assert "re-audits" in report.reason

    def test_false_optimality_claim_is_soundness_bug(self):
        # "a" really costs 2; claiming that is optimal is fine — but a
        # lower bound above the reference optimum is not possible here,
        # so fake a higher-cost instance instead: claim optimal while the
        # reference (cost 2) is the same — use a bogus bound bracket.
        report = self._classify(
            OptimizeResult(
                status=OptStatus.FEASIBLE, model={"x": "a"},
                objective=2.0, lower_bound=3.0, upper_bound=2.0,
            )
        )
        assert report.verdict is OptVerdict.SOUNDNESS_BUG
        assert "bracket" in report.reason

    def test_false_infeasibility_is_soundness_bug(self):
        report = self._classify(OptimizeResult(status=OptStatus.INFEASIBLE))
        assert report.verdict is OptVerdict.SOUNDNESS_BUG

    def test_unknown_with_feasible_reference_is_completeness_miss(self):
        report = self._classify(
            OptimizeResult(status=OptStatus.UNKNOWN, reason="budget")
        )
        assert report.verdict is OptVerdict.COMPLETENESS_MISS

    def test_agree_infeasible(self):
        hard, soft = _split('(assert (= "a" "b"))')
        reference = self.oracle.reference_optimize(hard, soft)
        report = self.oracle.classify(
            hard, soft, OptimizeResult(status=OptStatus.INFEASIBLE), reference
        )
        assert report.verdict is OptVerdict.AGREE_INFEASIBLE

    def test_feasible_without_optimality_claim_agrees(self):
        report = self._classify(
            OptimizeResult(
                status=OptStatus.FEASIBLE, model={"x": "a"},
                objective=2.0, lower_bound=0.0, upper_bound=2.0,
            )
        )
        assert report.verdict is OptVerdict.AGREE_FEASIBLE


class TestCampaign:
    CONFIG = dict(
        instances=6, seed=3, soft=2, max_length=2,
        num_reads=16, max_restarts=1,
    )

    def test_small_campaign_clean(self):
        report = run_opt_campaign(OptCampaignConfig(**self.CONFIG))
        assert report.instances_run == 6
        assert report.ok
        assert report.soundness_bugs == 0
        assert report.certificate_violations == 0
        assert sum(report.verdicts.values()) == 6

    def test_campaign_deterministic(self):
        one = run_opt_campaign(OptCampaignConfig(**self.CONFIG)).to_dict()
        two = run_opt_campaign(OptCampaignConfig(**self.CONFIG)).to_dict()
        assert one == two
        # The dict form is JSON-stable (no timings, no inf/nan).
        assert json.loads(json.dumps(one)) == one

    def test_infeasible_ratio_produces_refutations(self):
        report = run_opt_campaign(
            OptCampaignConfig(
                instances=8, seed=1, soft=1, max_length=2,
                infeasible_ratio=1.0, num_reads=16, max_restarts=1,
            )
        )
        assert report.ok
        assert report.verdicts.get("agree_infeasible", 0) >= 1


class TestCorpusReplay:
    def test_committed_corpus_replays_clean(self):
        report = replay_opt_corpus(CORPUS_DIR)
        assert report["total"] >= 7
        assert report["failures"] == 0

    def test_missing_directory_is_empty(self):
        report = replay_opt_corpus("/nonexistent/opt-corpus")
        assert report["total"] == 0
        assert report["failures"] == 0


class TestCli:
    def test_opt_subcommand(self, capsys, tmp_path):
        json_path = tmp_path / "report.json"
        code = verify_main(
            [
                "opt", "--instances", "3", "--seed", "5", "--soft", "1",
                "--max-length", "2", "--num-reads", "16",
                "--max-restarts", "1", "--corpus-dir", CORPUS_DIR,
                "--json", str(json_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "opt campaign: 3 instances" in out
        assert "opt corpus replay" in out
        # With --corpus-dir the JSON payload nests campaign + corpus.
        payload = json.loads(json_path.read_text())
        assert payload["campaign"]["ok"] is True
        assert payload["campaign"]["instances_run"] == 3
        assert payload["corpus"]["failures"] == 0
        assert not any(
            isinstance(v, float) and not math.isfinite(v)
            for v in payload["campaign"]["verdicts"].values()
        )
