"""Weighted instance draws and the legacy RNG stream digest pin."""

from __future__ import annotations

import hashlib

import pytest

from repro.smt import ast
from repro.smt.generator import InstanceGenerator
from repro.smt.printer import render_script

pytestmark = pytest.mark.opt

#: sha256 over the rendered hard side of the first 10 instances at
#: seed=42 with the historical defaults. Weighted mode must never perturb
#: this stream — soft draws happen strictly after every legacy draw.
LEGACY_DIGEST = "66a70e2c98abccc4d905a42cff35c6a907bae1f4cc77fabd020e8f446450adee"


def _hard_digest(generator: InstanceGenerator, count: int = 10) -> str:
    digest = hashlib.sha256()
    for _ in range(count):
        instance = generator.generate()
        digest.update(render_script(instance.assertions).encode())
    return digest.hexdigest()


class TestLegacyStreamPin:
    def test_unweighted_digest_pinned(self):
        assert _hard_digest(InstanceGenerator(seed=42)) == LEGACY_DIGEST

    def test_first_weighted_instance_hard_side_byte_identical(self):
        # Soft draws come after the legacy draws, so the first weighted
        # instance's hard side matches the unweighted one byte for byte.
        plain = InstanceGenerator(seed=42).generate()
        weighted = InstanceGenerator(seed=42, soft=3).generate()
        assert render_script(weighted.assertions) == render_script(
            plain.assertions
        )
        assert weighted.witness == plain.witness


class TestSoftDraws:
    def test_soft_count_and_validity(self):
        instance = InstanceGenerator(seed=5, soft=4).generate()
        assert len(instance.soft_assertions) == 4
        for soft in instance.soft_assertions:
            assert isinstance(soft, ast.SoftAssertion)
            assert soft.weight > 0
            assert ast.free_string_variables(soft.term) <= {"x"}

    def test_deterministic_at_fixed_seed(self):
        one = InstanceGenerator(seed=11, soft=3).generate()
        two = InstanceGenerator(seed=11, soft=3).generate()
        assert one.script == two.script
        assert one.soft_assertions == two.soft_assertions

    def test_script_contains_assert_soft(self):
        instance = InstanceGenerator(seed=2, soft=2).generate()
        assert instance.script.count("(assert-soft ") == 2

    def test_zero_soft_is_plain_mode(self):
        instance = InstanceGenerator(seed=2, soft=0).generate()
        assert instance.soft_assertions == []
        assert "(assert-soft" not in instance.script

    def test_negative_soft_rejected(self):
        with pytest.raises(ValueError, match="soft"):
            InstanceGenerator(soft=-1)


class TestUnsatWeighted:
    def test_refutations_carry_softs(self):
        # The optimizer must answer infeasible no matter how much soft
        # weight is dangled; the generator attaches softs to unsat cores.
        instance = InstanceGenerator(seed=7, soft=2).generate_unsat()
        assert not instance.satisfiable
        assert len(instance.soft_assertions) == 2
        assert instance.script.count("(assert-soft ") == 2

    def test_unsat_deterministic(self):
        one = InstanceGenerator(seed=9, soft=2).generate_unsat()
        two = InstanceGenerator(seed=9, soft=2).generate_unsat()
        assert one.script == two.script
