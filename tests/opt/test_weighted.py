"""The weighted compiler pass: calibration, certificates, degradation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encoding import encode_string
from repro.opt.weighted import WeightedFormulation, compile_weighted, model_spread
from repro.service.cache import compile_cache_key
from repro.smt import ast
from repro.smt.compiler import CompilationError, compile_assertions
from repro.smt.parser import parse_script

pytestmark = pytest.mark.opt


def _parsed(text: str):
    script = parse_script("(declare-const x String)" + text)
    return list(script.assertions), list(script.soft_assertions)


def _energy(model, value: str) -> float:
    bits = encode_string(value)
    state = np.zeros(model.num_variables, dtype=np.int8)
    state[: len(bits)] = bits
    return float(model.energy(state))


class TestCompile:
    def test_deterministic_at_fixed_seed(self):
        hard, soft = _parsed(
            '(assert (= (str.len x) 2))'
            '(assert-soft (= (str.at x 0) "a") :weight 2)'
            '(assert-soft (= (str.at x 1) "b"))'
        )
        one = compile_weighted(hard, soft, seed=11).formulations["x"]
        two = compile_weighted(hard, soft, seed=11).formulations["x"]
        assert one.build_model().to_dict() == two.build_model().to_dict()

    def test_hard_blocks_match_unweighted_compile(self):
        # The hard conjunction must compile bit-identically to an
        # unweighted compile at the same seed (same RNG discipline).
        hard, soft = _parsed(
            '(assert (= x "ab"))'
            '(assert-soft (str.prefixof "a" x) :weight 2)'
        )
        weighted = compile_weighted(hard, soft, seed=5)
        unweighted = compile_assertions(hard, seed=5)
        assert (
            weighted.formulations["x"].hard.build_model().to_dict()
            == unweighted.formulations["x"].build_model().to_dict()
        )

    def test_gap_certificate_property(self):
        hard, soft = _parsed(
            '(assert (= (str.len x) 2))'
            '(assert-soft (= (str.at x 0) "a") :weight 4)'
            '(assert-soft (= (str.at x 1) "b") :weight 0.5)'
        )
        problem = compile_weighted(hard, soft, seed=0)
        cert = problem.certificate
        assert cert["num_soft_encoded"] == 2
        assert cert["hard_scale"] * cert["hard_gap"] > cert["soft_budget"]
        # The budget is the weighted sum of per-block spreads.
        expected = sum(
            float(s.weight) * model_spread(child.build_model())
            for s, child in problem.formulations["x"].soft_children
        )
        assert cert["soft_budget"] == pytest.approx(expected)

    def test_ground_soft_fixed_before_solve(self):
        hard, soft = _parsed(
            '(assert-soft (= "a" "b") :weight 2)'
            '(assert-soft (= "a" "a") :weight 1)'
        )
        problem = compile_weighted(hard, soft)
        truths = {s.weight: truth for s, truth in problem.ground_soft}
        assert truths == {2.0: False, 1.0: True}
        assert problem.ground_cost == 2.0

    def test_out_of_fragment_soft_degrades_to_audit_only(self):
        # A soft length fact contradicting the hard-pinned length cannot
        # compile at that length; it must degrade to audit-only, never
        # fail the whole compile.
        hard, soft = _parsed(
            '(assert (= (str.len x) 1))'
            '(assert-soft (= (str.len x) 5) :weight 2)'
        )
        problem = compile_weighted(hard, soft)
        assert problem.audit_only == soft
        assert problem.certificate["num_soft_audit_only"] == 1
        assert problem.formulations["x"].soft_children == []

    def test_multi_variable_soft_rejected(self):
        script = parse_script(
            "(declare-const x String)(declare-const y String)"
            "(assert-soft (= x y))"
        )
        with pytest.raises(CompilationError, match="several string variables"):
            compile_weighted(
                list(script.assertions), list(script.soft_assertions)
            )

    def test_soft_only_variable_gets_length_from_softs(self):
        hard, soft = _parsed('(assert-soft (= x "abc") :weight 1)')
        problem = compile_weighted(hard, soft)
        assert problem.formulations["x"].length == 3


class TestGuidance:
    """Regression: the weighted QUBO must rank candidates by objective.

    ``StringLength`` in decodable mode carries a random printable content
    preference; scaled by ``hard_scale`` it used to dominate the soft
    blocks and steer the annealer to its arbitrary target instead of the
    MaxSMT objective.
    """

    def _closest_problem(self, seed=2025):
        hard, soft = _parsed(
            "(assert (= (str.len x) 4))"
            + "".join(
                f'(assert-soft (= (str.at x {i}) "{c}") :weight 1 :id ref{r})'
                for r, ref in enumerate(("kale", "male", "mole"))
                for i, c in enumerate(ref)
            )
        )
        return compile_weighted(hard, soft, seed=seed)

    def test_majority_string_beats_length_preference_target(self):
        problem = self._closest_problem()
        formulation = problem.formulations["x"]
        model = formulation.build_model()
        # "male" is the true optimum (objective 2); the length block's
        # random content preference is some other printable string.
        target = formulation.hard.content_characters()
        if target != "male":
            assert _energy(model, "male") < _energy(model, target)

    def test_energy_order_tracks_objective(self):
        problem = self._closest_problem()
        model = problem.formulations["x"].build_model()
        # objective("male")=2 < objective("kale")=4 <= objective("zzzz")=12
        assert _energy(model, "male") < _energy(model, "kale")
        assert _energy(model, "kale") < _energy(model, "zzzz")

    def test_pad_pinning_still_scaled(self):
        # With a buffer longer than the pinned length the NUL pad pinning
        # is a real constraint and must stay above the soft budget.
        hard, soft = _parsed(
            "(assert (str.prefixof \"ab\" x))"
            "(assert (= (str.len x) 2))"
            '(assert-soft (= (str.at x 0) "z") :weight 1)'
        )
        problem = compile_weighted(hard, soft, seed=3)
        formulation = problem.formulations["x"]
        assert isinstance(formulation, WeightedFormulation)
        cert = problem.certificate
        assert cert["hard_scale"] * cert["hard_gap"] > cert["soft_budget"]


class TestCacheKey:
    ASSERTS, SOFT = (), ()

    def setup_method(self):
        hard, soft = _parsed(
            '(assert (= x "ab"))(assert-soft (str.contains x "a") :weight 2)'
        )
        self.hard, self.soft = hard, soft

    def test_unweighted_keys_byte_compatible(self):
        base = compile_cache_key(self.hard, 1.0, 7)
        assert compile_cache_key(self.hard, 1.0, 7, soft=None) == base
        assert compile_cache_key(self.hard, 1.0, 7, soft=[]) == base

    def test_soft_changes_key(self):
        base = compile_cache_key(self.hard, 1.0, 7)
        weighted = compile_cache_key(self.hard, 1.0, 7, soft=self.soft)
        assert weighted != base

    def test_weight_changes_key(self):
        reweighted = [
            ast.SoftAssertion(s.term, weight=s.weight + 1, group=s.group)
            for s in self.soft
        ]
        assert compile_cache_key(
            self.hard, 1.0, 7, soft=self.soft
        ) != compile_cache_key(self.hard, 1.0, 7, soft=reweighted)
