"""The anytime optimizer driver: statuses, bounds, budgets, metrics."""

from __future__ import annotations

import pytest

from repro.opt.driver import AnytimeOptimizer, audit_cost
from repro.opt.result import OptStatus, solve_status_for
from repro.service.metrics import MetricsRegistry
from repro.smt.parser import parse_script

pytestmark = pytest.mark.opt

CLOSEST_L2 = (
    "(declare-const x String)"
    "(assert (= (str.len x) 2))"
    '(assert-soft (= (str.at x 0) "h") :weight 1 :id ref0)'
    '(assert-soft (= (str.at x 1) "i") :weight 1 :id ref0)'
    '(assert-soft (= (str.at x 0) "h") :weight 1 :id ref1)'
    '(assert-soft (= (str.at x 1) "o") :weight 1 :id ref1)'
    '(assert-soft (= (str.at x 0) "m") :weight 1 :id ref2)'
    '(assert-soft (= (str.at x 1) "y") :weight 1 :id ref2)'
)


def _split(text: str):
    script = parse_script(text)
    return list(script.assertions), list(script.soft_assertions)


class TestExhaustive:
    def test_true_optimum_with_breakdown(self):
        optimizer = AnytimeOptimizer(seed=0)
        result = optimizer.optimize_script(CLOSEST_L2)
        assert result.status is OptStatus.OPTIMAL
        # Majority vote per position: "h?" ties broken by enumeration
        # order, but the objective is pinned at 3 regardless.
        assert result.objective == 3.0
        assert result.lower_bound == result.upper_bound == 3.0
        assert len(result.breakdown) == 6
        assert result.total_weight == 6.0
        assert result.satisfied_weight == 3.0
        satisfied = [entry for entry in result.breakdown if entry.satisfied]
        assert sum(entry.weight for entry in satisfied) == 3.0
        assert result.certificate["num_soft_encoded"] == 6

    def test_deterministic(self):
        one = AnytimeOptimizer(seed=9).optimize_script(CLOSEST_L2)
        two = AnytimeOptimizer(seed=9).optimize_script(CLOSEST_L2)
        assert one.to_dict() == two.to_dict()

    def test_zero_cost_model_short_circuits(self):
        result = AnytimeOptimizer(seed=1).optimize_script(
            "(declare-const x String)"
            "(assert (= (str.len x) 1))"
            '(assert-soft (= x "q") :weight 4)'
        )
        assert result.status is OptStatus.OPTIMAL
        assert result.objective == 0.0
        assert result.model == {"x": "q"}


class TestInfeasibleAndUnknown:
    def test_ground_false_hard_is_infeasible(self):
        result = AnytimeOptimizer(seed=0).optimize_script(
            '(assert (= "a" "b"))'
            '(declare-const x String)'
            '(assert-soft (= x "a") :weight 5)'
        )
        assert result.status is OptStatus.INFEASIBLE
        assert result.objective is None
        assert result.model == {}
        assert result.satisfied_weight is None

    def test_exhausted_pinned_length_is_infeasible(self):
        # Length exactly pinned to 1 and every 1-char string refuted:
        # exhaustive enumeration is a sound refutation.
        result = AnytimeOptimizer(seed=0).optimize_script(
            "(declare-const x String)"
            "(assert (= (str.len x) 1))"
            '(assert (= (str.at x 0) "a"))'
            '(assert (not (= x "a")))'
            '(assert-soft (str.contains x "a") :weight 1)'
        )
        assert result.status is OptStatus.INFEASIBLE

    def test_lower_bound_only_length_stays_unknown(self):
        # prefixof only bounds the length from below; an exhausted sweep
        # at the minimum buffer is NOT a refutation.
        result = AnytimeOptimizer(seed=0).optimize_script(
            "(declare-const x String)"
            '(assert (str.prefixof "ab" x))'
            '(assert (not (= x "ab")))'
            '(assert-soft (= (str.at x 0) "a") :weight 1)'
        )
        assert result.status is OptStatus.UNKNOWN
        assert result.objective is None

    def test_ground_soft_costs_still_audited(self):
        result = AnytimeOptimizer(seed=0).optimize_script(
            '(assert-soft (= "a" "b") :weight 2)'
            '(assert-soft (= "a" "a") :weight 1)'
        )
        assert result.status is OptStatus.OPTIMAL
        assert result.objective == 2.0
        assert result.lower_bound == 2.0


class TestAnytime:
    def _run(self, **kwargs):
        params = dict(
            seed=2025, num_reads=16, exhaustive_bits=0,
            sampler_params={"num_sweeps": 200},
        )
        params.update(kwargs)
        return AnytimeOptimizer(**params).optimize_script(
            "(declare-const x String)"
            "(assert (= (str.len x) 4))"
            + "".join(
                f'(assert-soft (= (str.at x {i}) "{c}") :weight 1 :id ref{r})'
                for r, ref in enumerate(("kale", "male", "mole"))
                for i, c in enumerate(ref)
            )
        )

    def test_restarts_no_worse_than_direct_at_equal_reads(self):
        direct = self._run(max_restarts=1, num_reads=64)
        anytime = self._run(max_restarts=4, num_reads=16)
        assert direct.status.is_feasible and anytime.status.is_feasible
        assert anytime.objective <= direct.objective
        assert anytime.reads_used == direct.reads_used == 64

    def test_bounds_bracket_objective(self):
        result = self._run(max_restarts=2)
        assert result.status is OptStatus.FEASIBLE
        assert result.lower_bound <= result.objective <= result.upper_bound
        assert result.upper_bound == result.objective

    def test_deadline_limits_restarts(self):
        # A sub-millisecond deadline is spent by the first restart (which
        # always runs); the deadline check stops every later one.
        result = self._run(max_restarts=8, deadline_ms=0.001)
        assert result.restarts == 1
        assert result.status.is_feasible

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            AnytimeOptimizer(seed=0, deadline_ms=0)

    def test_restart_accounting(self):
        result = self._run(max_restarts=3)
        assert 1 <= result.restarts <= 3
        assert result.reads_used == 16 * result.restarts


class TestCtorValidation:
    def test_max_restarts_positive(self):
        with pytest.raises(ValueError, match="max_restarts"):
            AnytimeOptimizer(seed=0, max_restarts=0)


class TestMetrics:
    def test_counters_and_series(self):
        metrics = MetricsRegistry()
        AnytimeOptimizer(seed=0, metrics=metrics).optimize_script(CLOSEST_L2)
        assert metrics.counter("opt.optimize").value == 1
        assert metrics.counter("opt.optimal").value == 1
        assert metrics.counter("opt.exhaustive_vars").value == 1
        assert metrics.values("opt.objective") == [3.0]
        assert len(metrics.values("opt.wall")) == 1


class TestAuditCost:
    def test_counts_violated_weight(self):
        hard, soft = _split(
            "(declare-const x String)"
            "(assert (= (str.len x) 2))"
            '(assert-soft (= (str.at x 0) "a") :weight 2)'
            '(assert-soft (= (str.at x 1) "b") :weight 1)'
        )
        pairs = [(float(s.weight), s.term) for s in soft]
        feasible, violated = audit_cost(hard, pairs, {"x": "ax"})
        assert feasible is True
        assert violated == 1.0
        feasible, violated = audit_cost(hard, pairs, {"x": "xxx"})
        assert feasible is False


class TestStatusProjection:
    @pytest.mark.parametrize(
        "status, expected",
        [
            (OptStatus.OPTIMAL, "sat"),
            (OptStatus.FEASIBLE, "sat"),
            (OptStatus.INFEASIBLE, "unsat"),
            (OptStatus.UNKNOWN, "unknown"),
        ],
    )
    def test_solve_status_for(self, status, expected):
        assert solve_status_for(status) == expected

    def test_aliases(self):
        assert OptStatus.from_value("sat") is OptStatus.FEASIBLE
        assert OptStatus.from_value("timeout") is OptStatus.UNKNOWN
        with pytest.raises(ValueError):
            OptStatus.from_value("bogus")
