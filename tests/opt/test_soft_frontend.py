"""Front-end coverage for ``assert-soft``: AST, parser, printer."""

from __future__ import annotations

import pytest

from repro.smt import ast
from repro.smt.parser import ParseError, parse_script
from repro.smt.printer import (
    render_full_script,
    render_script,
    render_soft_assertion,
    render_weight,
)

pytestmark = pytest.mark.opt


class TestSoftAssertionAst:
    def test_defaults(self):
        soft = ast.SoftAssertion(ast.Eq(ast.StrVar("x"), ast.StrLit("a")))
        assert soft.weight == 1.0
        assert soft.group == ""

    def test_weight_must_be_positive(self):
        term = ast.Eq(ast.StrVar("x"), ast.StrLit("a"))
        with pytest.raises(ValueError):
            ast.SoftAssertion(term, weight=0.0)
        with pytest.raises(ValueError):
            ast.SoftAssertion(term, weight=-2.0)


class TestParser:
    def test_minimal_soft(self):
        script = parse_script(
            '(declare-const x String)(assert-soft (= x "a"))'
        )
        assert len(script.assertions) == 0
        assert len(script.soft_assertions) == 1
        soft = script.soft_assertions[0]
        assert soft.weight == 1.0
        assert soft.group == ""

    def test_weight_and_id(self):
        script = parse_script(
            '(declare-const x String)'
            '(assert-soft (str.contains x "ab") :weight 2.5 :id grp)'
        )
        (soft,) = script.soft_assertions
        assert soft.weight == 2.5
        assert soft.group == "grp"
        assert isinstance(soft.term, ast.Contains)

    def test_hard_asserts_unaffected(self):
        script = parse_script(
            '(declare-const x String)'
            '(assert (= (str.len x) 2))'
            '(assert-soft (= x "ab") :weight 3)'
            "(check-sat)"
        )
        assert len(script.assertions) == 1
        assert len(script.soft_assertions) == 1

    def test_and_inside_soft_rejected(self):
        with pytest.raises(ParseError, match="and"):
            parse_script(
                "(declare-const x String)"
                '(assert-soft (and (= x "a") (= x "b")))'
            )

    def test_unknown_keyword_rejected(self):
        with pytest.raises(ParseError, match="keyword"):
            parse_script(
                '(declare-const x String)(assert-soft (= x "a") :priority 1)'
            )

    def test_missing_keyword_value_rejected(self):
        with pytest.raises(ParseError):
            parse_script(
                '(declare-const x String)(assert-soft (= x "a") :weight)'
            )


class TestPrinter:
    def _round_trip(self, soft: ast.SoftAssertion) -> ast.SoftAssertion:
        text = "(declare-const x String)" + render_soft_assertion(soft)
        (parsed,) = parse_script(text).soft_assertions
        return parsed

    def test_round_trip_weight_and_group(self):
        soft = ast.SoftAssertion(
            ast.Eq(ast.StrVar("x"), ast.StrLit("ab")), weight=2.0, group="g1"
        )
        parsed = self._round_trip(soft)
        assert parsed == soft

    def test_round_trip_fractional_weight_ungrouped(self):
        soft = ast.SoftAssertion(
            ast.PrefixOf(ast.StrLit("a"), ast.StrVar("x")), weight=0.25
        )
        parsed = self._round_trip(soft)
        assert parsed == soft
        assert ":id" not in render_soft_assertion(soft)

    def test_integral_weights_render_without_point(self):
        assert render_weight(3.0) == "3"
        assert render_weight(0.5) == "0.5"

    def test_render_script_declares_soft_only_variables(self):
        soft = ast.SoftAssertion(ast.Eq(ast.StrVar("y"), ast.StrLit("b")))
        text = render_script([], soft_assertions=[soft])
        assert "(declare-const y String)" in text
        reparsed = parse_script(text)
        assert reparsed.soft_assertions == [soft]

    def test_render_full_script_command_exact(self):
        text = (
            "(declare-const x String)\n"
            '(assert (= (str.len x) 1))\n'
            '(assert-soft (= x "a") :weight 2 :id g)\n'
            "(check-sat)\n"
        )
        script = parse_script(text)
        assert parse_script(render_full_script(script)) == script
