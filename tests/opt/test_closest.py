"""ClosestStringFormulation: both metrics, optima, energy identities."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.closest import ClosestStringFormulation
from repro.core.encoding import encode_string
from repro.core.formulation import FormulationError
from repro.utils.asciitab import CHAR_BITS

pytestmark = pytest.mark.opt


def _string_state(formulation, value, extra=0):
    state = np.zeros(formulation.num_string_bits + extra, dtype=np.int8)
    state[: formulation.num_string_bits] = encode_string(value)
    return state


class TestValidation:
    def test_empty_references_rejected(self):
        with pytest.raises(FormulationError, match="at least one"):
            ClosestStringFormulation([])

    def test_mixed_lengths_rejected(self):
        with pytest.raises(FormulationError, match="one length"):
            ClosestStringFormulation(["ab", "abc"])

    def test_empty_strings_rejected(self):
        with pytest.raises(FormulationError, match="non-empty"):
            ClosestStringFormulation(["", ""])

    def test_unknown_metric_rejected(self):
        with pytest.raises(FormulationError, match="metric"):
            ClosestStringFormulation(["ab"], metric="median")


class TestTotalMetric:
    def test_model_is_diagonal(self):
        model = ClosestStringFormulation(["hi", "ho", "my"]).build_model()
        assert model.num_variables == 2 * CHAR_BITS
        assert model.num_interactions == 0

    def test_energy_equals_scaled_total_distance(self):
        formulation = ClosestStringFormulation(
            ["hi", "ho", "my"], penalty_strength=2.0
        )
        model = formulation.build_model()
        for candidate in ("hi", "ho", "my", "hy", "zz"):
            energy = model.energy(_string_state(formulation, candidate))
            assert energy == pytest.approx(
                2.0 * formulation.objective(candidate)
            )

    def test_majority_vote_optimum(self):
        formulation = ClosestStringFormulation(["hi", "ho", "my"])
        # Per encoded bit the best choice is the majority vote; with two
        # "h?" references the bitwise majority decodes to "hi".
        assert formulation.objective("hi") == formulation.optimum()
        # No reference string can beat the closed-form optimum.
        assert all(
            formulation.objective(r) >= formulation.optimum()
            for r in formulation.references
        )

    def test_ground_energy_matches_optimum(self):
        formulation = ClosestStringFormulation(["ab", "ad"], penalty_strength=3.0)
        assert formulation.ground_energy() == 3.0 * formulation.optimum()

    def test_identical_references_have_zero_optimum(self):
        formulation = ClosestStringFormulation(["ab", "ab"])
        assert formulation.optimum() == 0
        assert formulation.objective("ab") == 0


class TestMaxMetric:
    def test_model_width(self):
        formulation = ClosestStringFormulation(["hi", "ho"], metric="max")
        n = formulation.num_string_bits
        b = n.bit_length()
        # x | bound U | one slack block per reference.
        assert formulation.build_model().num_variables == n + b * (1 + 2)

    def test_min_energy_over_aux_is_scaled_max_distance(self):
        formulation = ClosestStringFormulation(["ab", "ad"], metric="max")
        model = formulation.build_model()
        n = formulation.num_string_bits
        aux = model.num_variables - n
        for candidate in ("ab", "ad", "af"):
            best = min(
                model.energy(
                    np.concatenate(
                        [
                            _string_state(formulation, candidate),
                            np.array(bits, dtype=np.int8),
                        ]
                    )
                )
                for bits in itertools.product((0, 1), repeat=aux)
            )
            assert best == pytest.approx(
                formulation.penalty_strength * formulation.objective(candidate)
            )

    def test_single_reference_optimum_is_zero(self):
        assert ClosestStringFormulation(["abc"], metric="max").optimum() == 0

    def test_small_contested_optimum_bracketed(self):
        formulation = ClosestStringFormulation(["ab", "ad", "af"], metric="max")
        optimum = formulation.optimum()
        # The optimum cannot beat half the reference diameter and one of
        # the references itself gives an upper bound.
        assert optimum <= min(
            formulation.objective(r) for r in formulation.references
        )
        assert optimum >= 1  # the references genuinely disagree

    def test_objective_max_vs_total(self):
        refs = ["ab", "ad"]
        total = ClosestStringFormulation(refs, metric="total")
        maximum = ClosestStringFormulation(refs, metric="max")
        assert maximum.objective("ab") == max(total.distances("ab"))
        assert total.objective("ab") == sum(total.distances("ab"))


class TestDecodeAndVerify:
    def test_round_trip(self):
        formulation = ClosestStringFormulation(["hi", "ho"])
        assert formulation.decode(_string_state(formulation, "hi")) == "hi"

    def test_distances_require_reference_length(self):
        formulation = ClosestStringFormulation(["hi", "ho"])
        with pytest.raises(FormulationError, match="length"):
            formulation.distances("hip")

    def test_verify_accepts_any_reference_length_string(self):
        formulation = ClosestStringFormulation(["hi", "ho"])
        assert formulation.verify("zz")
        assert not formulation.verify("z")

    def test_describe_mentions_shape(self):
        text = ClosestStringFormulation(["hi", "ho"], metric="max").describe()
        assert "K=2" in text and "L=2" in text and "max" in text
