"""Objective threading: sessions, batch executors, worker outcomes."""

from __future__ import annotations

import math

import pytest

from repro.opt.result import OptimizeResult, OptStatus
from repro.server.workers import outcome_from_optimize
from repro.service.batch import BatchSolver
from repro.smt import ast
from repro.smt.session import SolverSession

pytestmark = pytest.mark.opt

WEIGHTED_SCRIPT = (
    "(declare-const x String)"
    "(assert (= (str.len x) 1))"
    '(assert-soft (= x "a") :weight 1)'
    '(assert-soft (= x "b") :weight 3)'
)
PLAIN_SCRIPT = '(declare-const y String)(assert (= y "ok"))'

FAST = dict(num_reads=16, sampler_params={"num_sweeps": 100}, seed=7)


class TestSession:
    def _session(self, **overrides):
        params = dict(FAST)
        params.update(overrides)
        return SolverSession(**params)

    def test_assert_soft_and_optimize(self):
        session = self._session()
        session.assert_text(WEIGHTED_SCRIPT)
        result = session.optimize()
        assert result.status is OptStatus.OPTIMAL
        assert result.model == {"x": "b"}
        assert result.objective == 1.0

    def test_softs_never_influence_check_sat(self):
        plain = self._session()
        plain.assert_text("(declare-const x String)(assert (= (str.len x) 1))")
        weighted = self._session()
        weighted.assert_text(
            "(declare-const x String)(assert (= (str.len x) 1))"
        )
        weighted.assert_soft(
            ast.Eq(ast.StrVar("x"), ast.StrLit("z")), weight=9.0
        )
        # The sat-side state key (and thus memo/cache identity) is
        # byte-identical with or without softs …
        assert weighted.state_key() == plain.state_key()
        # … while the weighted key sees them.
        assert weighted.opt_state_key() != plain.opt_state_key()
        assert weighted.check_sat().status == "sat"

    def test_opt_memo_round_trip(self):
        session = self._session()
        session.assert_text(WEIGHTED_SCRIPT)
        first = session.optimize()
        second = session.optimize()
        assert second is first
        assert session.stats.optimizes == 2
        assert session.stats.opt_memo_hits == 1

    def test_soft_frames_pop_with_their_frame(self):
        session = self._session()
        session.assert_text(WEIGHTED_SCRIPT)
        base_key = session.opt_state_key()
        base = session.optimize()

        session.push()
        session.assert_soft(
            ast.Eq(ast.StrVar("x"), ast.StrLit("c")), weight=10.0
        )
        pushed = session.optimize()
        assert session.opt_state_key() != base_key
        assert pushed.model == {"x": "c"}

        session.pop()
        assert session.opt_state_key() == base_key
        # The re-pushed weighted state is answered from the memo.
        hits = session.stats.opt_memo_hits
        assert session.optimize() is base
        assert session.stats.opt_memo_hits == hits + 1

    def test_assert_text_counts_soft_commands(self):
        session = self._session()
        added = session.assert_text(WEIGHTED_SCRIPT)
        assert added == 3
        assert len(session.flattened()) == 1
        assert len(session.flattened_soft()) == 2


class TestBatch:
    @pytest.mark.parametrize("executor", ["serial", "thread", "fused"])
    def test_mixed_batch_routes_weighted_items(self, executor):
        solver = BatchSolver(executor=executor, **FAST)
        report = solver.solve_scripts(
            [PLAIN_SCRIPT, WEIGHTED_SCRIPT, PLAIN_SCRIPT]
        )
        assert report.ok
        assert report.statuses == ["sat", "sat", "sat"]
        plain_one, weighted, plain_two = report.items
        # Plain items keep the null optimization defaults.
        assert plain_one.opt_status == "" and plain_one.objective is None
        assert plain_two.model == {"y": "ok"}
        # The weighted item rides the optimize path, in submission order.
        assert weighted.index == 1
        assert weighted.opt_status == "optimal"
        assert weighted.objective == 1.0
        assert weighted.lower_bound == weighted.upper_bound == 1.0
        assert weighted.model == {"x": "b"}

    def test_optimize_counter(self):
        solver = BatchSolver(executor="serial", **FAST)
        solver.solve_scripts([WEIGHTED_SCRIPT, WEIGHTED_SCRIPT])
        assert solver.metrics.counter("batch.optimizes").value == 2

    def test_weighted_infeasible_maps_to_unsat(self):
        solver = BatchSolver(executor="serial", **FAST)
        report = solver.solve_scripts(
            ['(assert (= "a" "b"))'
             '(declare-const x String)(assert-soft (= x "a") :weight 5)']
        )
        item = report[0]
        assert item.status == "unsat"
        assert item.opt_status == "infeasible"
        assert item.objective is None


class TestWorkerOutcome:
    def test_feasible_projection(self):
        outcome = outcome_from_optimize(
            OptimizeResult(
                status=OptStatus.OPTIMAL, model={"x": "b"},
                objective=1.0, lower_bound=1.0, upper_bound=1.0,
            ),
            wall_time=0.25,
        )
        assert outcome.result.status == "sat"
        assert outcome.opt_status == "optimal"
        assert outcome.objective == 1.0
        assert outcome.lower_bound == 1.0
        assert outcome.upper_bound == 1.0
        assert outcome.wall_time == 0.25

    def test_infinite_upper_bound_becomes_none(self):
        outcome = outcome_from_optimize(
            OptimizeResult(status=OptStatus.UNKNOWN, upper_bound=math.inf)
        )
        assert outcome.result.status == "unknown"
        assert outcome.upper_bound is None

    def test_infeasible_projection(self):
        outcome = outcome_from_optimize(
            OptimizeResult(status=OptStatus.INFEASIBLE, reason="refuted")
        )
        assert outcome.result.status == "unsat"
        assert outcome.result.reason == "refuted"
