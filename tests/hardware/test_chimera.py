import networkx as nx
import pytest

from repro.hardware.chimera import chimera_coordinates, chimera_graph, chimera_index


class TestChimeraGraph:
    def test_node_count(self):
        g = chimera_graph(2, 3, 4)
        assert g.number_of_nodes() == 2 * 4 * 2 * 3

    def test_edge_count_formula(self):
        # Edges: m*n*t^2 intra-cell + (m-1)*n*t vertical + m*(n-1)*t horizontal.
        m, n, t = 3, 2, 4
        g = chimera_graph(m, n, t)
        expected = m * n * t * t + (m - 1) * n * t + m * (n - 1) * t
        assert g.number_of_edges() == expected

    def test_default_square(self):
        assert chimera_graph(3).number_of_nodes() == chimera_graph(3, 3).number_of_nodes()

    def test_connected(self):
        assert nx.is_connected(chimera_graph(3))

    def test_bipartite_cell(self):
        g = chimera_graph(1, 1, 4)
        # Single cell: K_{4,4} — no edge within a shore.
        for k1 in range(4):
            for k2 in range(k1 + 1, 4):
                assert not g.has_edge(k1, k2)
                assert not g.has_edge(4 + k1, 4 + k2)

    def test_interior_degree(self):
        g = chimera_graph(3, 3, 4)
        # The center cell's qubits all have degree t + 2 = 6.
        center = [chimera_index(1, 1, side, k, 3, 4) for side in (0, 1) for k in range(4)]
        assert all(g.degree(q) == 6 for q in center)

    def test_inter_cell_coupling_pattern(self):
        g = chimera_graph(2, 2, 4)
        # Vertical qubit (0,0,0,k) couples to (1,0,0,k), not to (1,0,0,k').
        a = chimera_index(0, 0, 0, 1, 2, 4)
        below_same = chimera_index(1, 0, 0, 1, 2, 4)
        below_other = chimera_index(1, 0, 0, 2, 2, 4)
        assert g.has_edge(a, below_same)
        assert not g.has_edge(a, below_other)

    def test_graph_attributes(self):
        g = chimera_graph(2, 3, 4)
        assert g.graph["family"] == "chimera"
        assert (g.graph["rows"], g.graph["cols"], g.graph["tile"]) == (2, 3, 4)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            chimera_graph(0)
        with pytest.raises(ValueError):
            chimera_graph(2, 2, 0)


class TestIndexing:
    def test_round_trip(self):
        n, t = 5, 4
        for row in range(3):
            for col in range(n):
                for side in (0, 1):
                    for k in range(t):
                        idx = chimera_index(row, col, side, k, n, t)
                        assert chimera_coordinates(idx, n, t) == (row, col, side, k)

    def test_indices_dense(self):
        g = chimera_graph(2, 2, 4)
        assert sorted(g.nodes()) == list(range(32))
