import networkx as nx
import numpy as np
import pytest

from repro.anneal.exact import ExactSolver
from repro.hardware.chimera import chimera_graph
from repro.hardware.embedding import (
    EmbeddingComposite,
    EmbeddingError,
    embed_bqm,
    find_embedding,
    verify_embedding,
)
from repro.hardware.qpu import SimulatedQPU
from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.model import QuboModel
from repro.qubo.vartypes import SPIN


class TestFindEmbedding:
    def test_path_graph_trivially_embeds(self):
        source = nx.path_graph(5)
        target = chimera_graph(2)
        emb = find_embedding(source, target, seed=0)
        verify_embedding(emb, source, target)

    def test_cycle_embeds(self):
        source = nx.cycle_graph(6)
        target = chimera_graph(2)
        emb = find_embedding(source, target, seed=1)
        verify_embedding(emb, source, target)

    def test_k5_embeds_with_chains(self):
        source = nx.complete_graph(5)
        target = chimera_graph(3)
        emb = find_embedding(source, target, seed=2)
        verify_embedding(emb, source, target)
        # K5 is not a subgraph of Chimera: some chain must be longer than 1.
        assert max(len(chain) for chain in emb.values()) >= 2

    def test_dense_source_falls_back_to_clique_embedding(self):
        source = nx.complete_graph(12)
        target = chimera_graph(4)
        emb = find_embedding(source, target, seed=3)
        verify_embedding(emb, source, target)

    def test_empty_source(self):
        assert find_embedding(nx.Graph(), chimera_graph(1)) == {}

    def test_source_larger_than_target_rejected(self):
        with pytest.raises(EmbeddingError):
            find_embedding(nx.complete_graph(40), chimera_graph(1, 1, 4))

    def test_impossible_embedding_raises(self):
        # K5 cannot embed into a 4-qubit path.
        with pytest.raises(EmbeddingError):
            find_embedding(nx.complete_graph(5), nx.path_graph(5), tries=4)

    def test_reproducible_with_seed(self):
        source = nx.cycle_graph(5)
        target = chimera_graph(2)
        a = find_embedding(source, target, seed=11)
        b = find_embedding(source, target, seed=11)
        assert a == b

    def test_isolated_source_nodes(self):
        source = nx.Graph()
        source.add_nodes_from(["a", "b", "c"])
        target = chimera_graph(1)
        emb = find_embedding(source, target, seed=0)
        verify_embedding(emb, source, target)
        assert all(len(chain) == 1 for chain in emb.values())


class TestVerifyEmbedding:
    def _setup(self):
        source = nx.path_graph(3)
        target = chimera_graph(2)
        emb = find_embedding(source, target, seed=0)
        return source, target, emb

    def test_overlapping_chains_rejected(self):
        source, target, emb = self._setup()
        keys = list(emb)
        emb[keys[0]] = list(emb[keys[1]])  # duplicate a chain
        with pytest.raises(ValueError, match="shared"):
            verify_embedding(emb, source, target)

    def test_missing_node_rejected(self):
        source, target, emb = self._setup()
        emb.pop(list(emb)[0])
        with pytest.raises(ValueError, match="misses"):
            verify_embedding(emb, source, target)

    def test_disconnected_chain_rejected(self):
        source = nx.Graph()
        source.add_node("x")
        target = chimera_graph(2)
        # Two qubits in different cells with no edge between them.
        with pytest.raises(ValueError, match="not connected"):
            verify_embedding({"x": [0, 9]}, source, target)

    def test_uncoupled_edge_rejected(self):
        source = nx.path_graph(2)
        target = chimera_graph(2)
        # Two shore-0 qubits of the same cell are not adjacent.
        with pytest.raises(ValueError, match="no physical coupler"):
            verify_embedding({0: [0], 1: [1]}, source, target)

    def test_empty_chain_rejected(self):
        source = nx.Graph()
        source.add_node("x")
        with pytest.raises(ValueError, match="empty chain"):
            verify_embedding({"x": []}, source, chimera_graph(1))

    def test_unknown_qubit_rejected(self):
        source = nx.Graph()
        source.add_node("x")
        with pytest.raises(ValueError, match="unknown qubit"):
            verify_embedding({"x": [999]}, source, chimera_graph(1))


class TestEmbedBqm:
    def test_unbroken_chain_energy_matches_logical(self):
        target = chimera_graph(2)
        bqm = BinaryQuadraticModel.from_ising(
            {"a": 0.5, "b": -1.0}, {("a", "b"): 0.75}
        )
        emb = find_embedding(bqm.interaction_graph(), target, seed=0)
        physical = embed_bqm(bqm, emb, target, chain_strength=2.0)
        # Build a physical state where every chain agrees.
        for sa in (-1, 1):
            for sb in (-1, 1):
                sample = {}
                for q in emb["a"]:
                    sample[q] = sa
                for q in emb["b"]:
                    sample[q] = sb
                assert physical.energy(sample) == pytest.approx(
                    bqm.energy({"a": sa, "b": sb})
                )

    def test_chain_break_costs_energy(self):
        target = chimera_graph(2)
        source = nx.complete_graph(3)
        bqm = BinaryQuadraticModel.from_ising(
            {0: 0.0, 1: 0.0, 2: 0.0}, {(0, 1): 0.1, (1, 2): 0.1, (0, 2): 0.1}
        )
        emb = find_embedding(source, target, seed=1)
        long_chains = {v: c for v, c in emb.items() if len(c) > 1}
        if not long_chains:
            pytest.skip("embedding found with unit chains")
        physical = embed_bqm(bqm, emb, target, chain_strength=5.0)
        aligned = {q: 1 for chain in emb.values() for q in chain}
        broken = dict(aligned)
        v, chain = next(iter(long_chains.items()))
        broken[chain[0]] = -1
        assert physical.energy(broken) > physical.energy(aligned)

    def test_bad_chain_strength(self):
        bqm = BinaryQuadraticModel.from_ising({"a": 1.0}, {})
        with pytest.raises(ValueError):
            embed_bqm(bqm, {"a": [0]}, chimera_graph(1), chain_strength=0.0)


class TestEmbeddingComposite:
    def test_end_to_end_ground_state(self):
        rng = np.random.default_rng(0)
        m = QuboModel.from_dense(np.triu(rng.normal(size=(6, 6))))
        _, ground = ExactSolver().ground_state(m)
        comp = EmbeddingComposite(SimulatedQPU(topology=chimera_graph(4)))
        ss = comp.sample_model(m, num_reads=24, num_sweeps=300, seed=4)
        assert ss.first.energy == pytest.approx(ground, abs=1e-9)

    def test_info_contains_embedding_stats(self):
        m = QuboModel(3, {(0, 1): -1.0, (1, 2): -1.0})
        comp = EmbeddingComposite(SimulatedQPU(topology=chimera_graph(2)))
        ss = comp.sample_model(m, num_reads=4, num_sweeps=50, seed=0)
        assert ss.info["max_chain_length"] >= 1
        assert 0.0 <= ss.info["chain_break_fraction"] <= 1.0
        assert ss.info["chain_strength"] > 0

    def test_discard_resolution(self):
        m = QuboModel(3, {(0, 1): -1.0, (1, 2): -1.0, (0, 0): -0.5})
        comp = EmbeddingComposite(
            SimulatedQPU(topology=chimera_graph(2)), resolve="discard"
        )
        ss = comp.sample_model(m, num_reads=8, num_sweeps=100, seed=1)
        # Discarding may drop rows, never add.
        assert len(ss) <= 8

    def test_fixed_chain_strength_respected(self):
        m = QuboModel(2, {(0, 1): -1.0})
        comp = EmbeddingComposite(
            SimulatedQPU(topology=chimera_graph(2)), chain_strength=3.5
        )
        ss = comp.sample_model(m, num_reads=2, num_sweeps=20, seed=0)
        assert ss.info["chain_strength"] == 3.5

    def test_requires_topology(self):
        with pytest.raises(TypeError):
            EmbeddingComposite(object())
