import numpy as np
import pytest

from repro.hardware.chains import (
    chain_break_fraction,
    majority_vote,
    resolve_chain_breaks,
    uniform_torque_compensation,
)
from repro.qubo.bqm import BinaryQuadraticModel


class TestUniformTorqueCompensation:
    def test_scales_with_coupling_magnitude(self):
        weak = BinaryQuadraticModel({}, {("a", "b"): 0.1}, vartype="SPIN")
        strong = BinaryQuadraticModel({}, {("a", "b"): 10.0}, vartype="SPIN")
        assert uniform_torque_compensation(strong) > uniform_torque_compensation(weak)

    def test_linear_only_model_uses_max_bias(self):
        bqm = BinaryQuadraticModel({"a": -3.0, "b": 1.0}, vartype="SPIN")
        assert uniform_torque_compensation(bqm, prefactor=1.0) == pytest.approx(3.0)

    def test_empty_model_positive(self):
        assert uniform_torque_compensation(BinaryQuadraticModel()) > 0

    def test_prefactor(self):
        bqm = BinaryQuadraticModel({}, {("a", "b"): 1.0}, vartype="SPIN")
        one = uniform_torque_compensation(bqm, prefactor=1.0)
        two = uniform_torque_compensation(bqm, prefactor=2.0)
        assert two == pytest.approx(2 * one)

    def test_bad_prefactor(self):
        with pytest.raises(ValueError):
            uniform_torque_compensation(BinaryQuadraticModel(), prefactor=0.0)


class TestChainBreakFraction:
    def test_no_breaks(self):
        states = np.array([[1, 1, 0, 0]], dtype=np.int8)
        emb = {"x": ["q0", "q1"], "y": ["q2", "q3"]}
        frac = chain_break_fraction(states, emb, ["q0", "q1", "q2", "q3"])
        assert frac[0] == 0.0

    def test_one_break(self):
        states = np.array([[1, 0, 0, 0]], dtype=np.int8)
        emb = {"x": ["q0", "q1"], "y": ["q2", "q3"]}
        frac = chain_break_fraction(states, emb, ["q0", "q1", "q2", "q3"])
        assert frac[0] == 0.5

    def test_multiple_rows(self):
        states = np.array([[1, 1], [1, 0]], dtype=np.int8)
        emb = {"x": ["a", "b"]}
        frac = chain_break_fraction(states, emb, ["a", "b"])
        np.testing.assert_allclose(frac, [0.0, 1.0])

    def test_unknown_qubit_raises(self):
        with pytest.raises(KeyError):
            chain_break_fraction(np.zeros((1, 1)), {"x": ["nope"]}, ["a"])

    def test_empty_chain_raises(self):
        with pytest.raises(ValueError):
            chain_break_fraction(np.zeros((1, 1)), {"x": []}, ["a"])


class TestMajorityVote:
    def test_unbroken_chain_passthrough(self):
        states = np.array([[1, 1, 0]], dtype=np.int8)
        emb = {"x": ["a", "b"], "y": ["c"]}
        logical, order = majority_vote(states, emb, ["a", "b", "c"])
        assert order == ["x", "y"]
        np.testing.assert_array_equal(logical[0], [1, 0])

    def test_majority_wins(self):
        states = np.array([[1, 1, 0]], dtype=np.int8)
        emb = {"x": ["a", "b", "c"]}
        logical, _ = majority_vote(states, emb, ["a", "b", "c"])
        assert logical[0, 0] == 1

    def test_tie_broken_randomly_but_validly(self):
        states = np.array([[1, 0]], dtype=np.int8)
        emb = {"x": ["a", "b"]}
        logical, _ = majority_vote(states, emb, ["a", "b"], seed=0)
        assert logical[0, 0] in (0, 1)

    def test_spin_states_resolve_to_spins(self):
        states = np.array([[-1, -1, 1]], dtype=np.int8)
        emb = {"x": ["a", "b"], "y": ["c"]}
        logical, _ = majority_vote(states, emb, ["a", "b", "c"])
        np.testing.assert_array_equal(logical[0], [-1, 1])


class TestResolveChainBreaks:
    def test_majority_keeps_all_rows(self):
        states = np.array([[1, 0], [1, 1]], dtype=np.int8)
        emb = {"x": ["a", "b"]}
        logical, order, kept = resolve_chain_breaks(
            states, emb, ["a", "b"], method="majority", seed=0
        )
        assert len(kept) == 2
        assert logical.shape == (2, 1)

    def test_discard_drops_broken_rows(self):
        states = np.array([[1, 0], [1, 1], [0, 0]], dtype=np.int8)
        emb = {"x": ["a", "b"]}
        logical, order, kept = resolve_chain_breaks(
            states, emb, ["a", "b"], method="discard"
        )
        np.testing.assert_array_equal(kept, [1, 2])
        np.testing.assert_array_equal(logical[:, 0], [1, 0])

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            resolve_chain_breaks(np.zeros((1, 1)), {"x": ["a"]}, ["a"], method="pray")

    def test_single_qubit_chain_passthrough(self):
        # A length-1 chain can never break; both methods are the identity.
        states = np.array([[1], [0]], dtype=np.int8)
        emb = {"x": ["q"]}
        for method in ("majority", "discard"):
            logical, order, kept = resolve_chain_breaks(
                states, emb, ["q"], method=method, seed=0
            )
            assert order == ["x"]
            np.testing.assert_array_equal(kept, [0, 1])
            np.testing.assert_array_equal(logical[:, 0], [1, 0])

    def test_discard_all_broken_returns_empty(self):
        # Every row broken -> discard keeps nothing but stays well-shaped.
        states = np.array([[1, 0], [0, 1]], dtype=np.int8)
        emb = {"x": ["a", "b"]}
        logical, order, kept = resolve_chain_breaks(
            states, emb, ["a", "b"], method="discard"
        )
        assert order == ["x"]
        assert kept.size == 0
        assert logical.shape == (0, 1)


class TestSeededTieBreaks:
    def test_majority_vote_seed_deterministic(self):
        # Even-length broken chains tie; a fixed seed must resolve them
        # identically across calls (the embedding composite relies on this).
        rng = np.random.default_rng(0)
        states = rng.integers(0, 2, size=(32, 4), dtype=np.int8)
        emb = {"x": ["a", "b"], "y": ["c", "d"]}
        qubits = ["a", "b", "c", "d"]
        first, _ = majority_vote(states, emb, qubits, seed=123)
        second, _ = majority_vote(states, emb, qubits, seed=123)
        np.testing.assert_array_equal(first, second)

    def test_majority_vote_seeds_differ(self):
        # Different seeds must be able to break an exact tie differently.
        states = np.tile(np.array([[1, 0]], dtype=np.int8), (64, 1))
        emb = {"x": ["a", "b"]}
        draws = {
            majority_vote(states, emb, ["a", "b"], seed=s)[0].tobytes()
            for s in range(8)
        }
        assert len(draws) > 1

    def test_resolve_chain_breaks_seed_deterministic(self):
        rng = np.random.default_rng(1)
        states = rng.integers(0, 2, size=(16, 4), dtype=np.int8)
        emb = {"x": ["a", "b"], "y": ["c", "d"]}
        qubits = ["a", "b", "c", "d"]
        a = resolve_chain_breaks(states, emb, qubits, method="majority", seed=9)
        b = resolve_chain_breaks(states, emb, qubits, method="majority", seed=9)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[2], b[2])
