import networkx as nx
import numpy as np
import pytest

from repro.hardware.chimera import chimera_graph
from repro.hardware.pegasus import pegasus_like_graph


class TestPegasusLikeGraph:
    def test_superset_of_chimera(self):
        c = chimera_graph(3, 3, 4)
        p = pegasus_like_graph(3, 4)
        assert set(c.nodes()) == set(p.nodes())
        assert all(p.has_edge(*e) for e in c.edges())

    def test_strictly_more_edges(self):
        c = chimera_graph(3, 3, 4)
        p = pegasus_like_graph(3, 4)
        assert p.number_of_edges() > c.number_of_edges()

    def test_higher_mean_degree(self):
        c = chimera_graph(4, 4, 4)
        p = pegasus_like_graph(4, 4)
        c_mean = np.mean([d for _, d in c.degree()])
        p_mean = np.mean([d for _, d in p.degree()])
        assert p_mean > c_mean + 1.5

    def test_odd_couplers_present(self):
        p = pegasus_like_graph(2, 4)
        # Shore-0 qubits 0 and 1 of cell (0,0) are now paired.
        assert p.has_edge(0, 1)
        assert p.has_edge(2, 3)

    def test_connected(self):
        assert nx.is_connected(pegasus_like_graph(3))

    def test_family_attribute(self):
        assert pegasus_like_graph(2).graph["family"] == "pegasus-like"

    def test_odd_shore_size_rejected(self):
        with pytest.raises(ValueError):
            pegasus_like_graph(2, t=3)

    def test_shorter_chains_than_chimera(self):
        """The headline hardware effect: richer topology -> shorter chains."""
        import networkx as nxx

        from repro.hardware.embedding import find_embedding

        k6 = nxx.complete_graph(6)
        c_emb = find_embedding(k6, chimera_graph(4), seed=0)
        p_emb = find_embedding(k6, pegasus_like_graph(4), seed=0)
        c_total = sum(len(ch) for ch in c_emb.values())
        p_total = sum(len(ch) for ch in p_emb.values())
        assert p_total <= c_total
