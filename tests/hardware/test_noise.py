import numpy as np
import pytest

from repro.hardware.noise import GaussianNoiseModel
from repro.qubo.bqm import BinaryQuadraticModel


def _bqm():
    return BinaryQuadraticModel(
        {"a": 1.0, "b": -0.5}, {("a", "b"): 0.25}, vartype="SPIN"
    )


class TestGaussianNoiseModel:
    def test_input_untouched(self):
        bqm = _bqm()
        GaussianNoiseModel(0.5, 0.5).apply(bqm, seed=0)
        assert bqm.get_linear("a") == 1.0
        assert bqm.get_quadratic("a", "b") == 0.25

    def test_zero_sigma_is_identity(self):
        noisy = GaussianNoiseModel(0.0, 0.0).apply(_bqm(), seed=0)
        assert noisy.get_linear("a") == 1.0
        assert noisy.get_quadratic("a", "b") == 0.25

    def test_perturbation_magnitude(self):
        rng_draws = [
            GaussianNoiseModel(0.1, 0.0).apply(_bqm(), seed=s).get_linear("a")
            for s in range(200)
        ]
        deviations = np.array(rng_draws) - 1.0
        assert abs(deviations.mean()) < 0.05
        assert 0.05 < deviations.std() < 0.2

    def test_coupling_noise(self):
        noisy = GaussianNoiseModel(0.0, 0.5).apply(_bqm(), seed=1)
        assert noisy.get_quadratic("a", "b") != 0.25
        assert noisy.get_linear("a") == 1.0

    def test_range_clamping(self):
        model = GaussianNoiseModel(0.0, 0.0, h_range=0.5, j_range=0.1)
        noisy = model.apply(_bqm(), seed=0)
        assert noisy.get_linear("a") == 0.5  # clamped from 1.0
        assert noisy.get_quadratic("a", "b") == pytest.approx(0.1)

    def test_reproducible(self):
        a = GaussianNoiseModel(0.2, 0.2).apply(_bqm(), seed=42)
        b = GaussianNoiseModel(0.2, 0.2).apply(_bqm(), seed=42)
        assert a.get_linear("a") == b.get_linear("a")
        assert a.get_quadratic("a", "b") == b.get_quadratic("a", "b")

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianNoiseModel(h_sigma=-0.1)
        with pytest.raises(ValueError):
            GaussianNoiseModel(h_range=0.0)
        with pytest.raises(ValueError):
            GaussianNoiseModel(j_range=-1.0)

    def test_repr(self):
        assert "GaussianNoiseModel" in repr(GaussianNoiseModel())

    def test_seeds_differ(self):
        model = GaussianNoiseModel(0.2, 0.2)
        a = model.apply(_bqm(), seed=1)
        b = model.apply(_bqm(), seed=2)
        assert a.get_linear("a") != b.get_linear("a")

    def test_structure_preserved(self):
        # Noise perturbs coefficients only: same variables, same couplings,
        # same vartype.
        noisy = GaussianNoiseModel(0.3, 0.3).apply(_bqm(), seed=5)
        clean = _bqm()
        assert set(noisy.variables) == set(clean.variables)
        assert noisy.vartype == clean.vartype
        assert set(map(frozenset, noisy.quadratic)) == set(
            map(frozenset, clean.quadratic)
        )

    def test_sigma_scales_spread(self):
        def spread(sigma):
            draws = [
                GaussianNoiseModel(sigma, 0.0).apply(_bqm(), seed=s).get_linear("a")
                for s in range(100)
            ]
            return np.std(draws)

        assert spread(0.4) > 2 * spread(0.05)

    def test_empty_model(self):
        from repro.qubo.bqm import BinaryQuadraticModel

        noisy = GaussianNoiseModel(0.1, 0.1).apply(
            BinaryQuadraticModel(), seed=0
        )
        assert len(list(noisy.variables)) == 0
