import numpy as np
import pytest

from repro.anneal.exact import ExactSolver
from repro.anneal.sqa import PathIntegralAnnealer
from repro.hardware.chimera import chimera_graph
from repro.hardware.noise import GaussianNoiseModel
from repro.hardware.qpu import SimulatedQPU
from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.model import QuboModel


def _native_bqm():
    """A model living directly on Chimera cell (0,0)."""
    return BinaryQuadraticModel(
        {0: -1.0, 4: 0.5}, {(0, 4): -2.0}, vartype="BINARY"
    )


class TestSimulatedQPU:
    def test_counts(self):
        qpu = SimulatedQPU(topology=chimera_graph(2))
        assert qpu.num_qubits == 32
        assert qpu.num_couplers == chimera_graph(2).number_of_edges()

    def test_native_model_sampled(self):
        qpu = SimulatedQPU(topology=chimera_graph(1))
        ss = qpu.sample_bqm(_native_bqm(), num_reads=16, num_sweeps=100, seed=0)
        # Ground state of -x0 + 0.5 x4 - 2 x0 x4 is x0=x4=1 with E=-2.5.
        assert ss.first.energy == pytest.approx(-2.5)

    def test_non_native_variable_rejected(self):
        qpu = SimulatedQPU(topology=chimera_graph(1))
        bqm = BinaryQuadraticModel({"not-a-qubit": 1.0})
        with pytest.raises(ValueError, match="not a qubit"):
            qpu.sample_bqm(bqm)

    def test_non_native_coupler_rejected(self):
        qpu = SimulatedQPU(topology=chimera_graph(1))
        bqm = BinaryQuadraticModel({0: 0.0, 1: 0.0}, {(0, 1): 1.0})
        with pytest.raises(ValueError, match="no coupler"):
            qpu.sample_bqm(bqm)

    def test_energies_scored_against_clean_model(self):
        qpu = SimulatedQPU(
            topology=chimera_graph(1), noise=GaussianNoiseModel(0.3, 0.3)
        )
        bqm = _native_bqm()
        ss = qpu.sample_bqm(bqm, num_reads=8, num_sweeps=100, seed=1)
        recomputed = bqm.energies(ss.states, order=ss.variables)
        np.testing.assert_allclose(ss.energies, recomputed, atol=1e-9)

    def test_noise_degrades_success(self):
        # With huge noise the annealer optimizes the wrong Hamiltonian.
        clean = SimulatedQPU(topology=chimera_graph(1))
        noisy = SimulatedQPU(
            topology=chimera_graph(1), noise=GaussianNoiseModel(5.0, 5.0)
        )
        bqm = _native_bqm()
        hits_clean = 0
        hits_noisy = 0
        for seed in range(10):
            c = clean.sample_bqm(bqm, num_reads=4, num_sweeps=100, seed=seed)
            n = noisy.sample_bqm(bqm, num_reads=4, num_sweeps=100, seed=seed)
            hits_clean += c.first.energy == pytest.approx(-2.5)
            hits_noisy += n.first.energy == pytest.approx(-2.5)
        assert hits_clean > hits_noisy

    def test_sqa_backend(self):
        qpu = SimulatedQPU(
            topology=chimera_graph(1), backend=PathIntegralAnnealer()
        )
        ss = qpu.sample_bqm(_native_bqm(), num_reads=4, num_sweeps=64, seed=2)
        assert ss.first.energy == pytest.approx(-2.5)

    def test_sample_model_uses_indices_as_qubits(self):
        qpu = SimulatedQPU(topology=chimera_graph(1))
        m = QuboModel(2, {(0, 0): -1.0})  # variables 0 and 1 are real qubits
        ss = qpu.sample_model(m, num_reads=4, num_sweeps=50, seed=0)
        assert ss.first.energy == pytest.approx(-1.0)

    def test_info(self):
        qpu = SimulatedQPU(topology=chimera_graph(1), name="test-qpu")
        ss = qpu.sample_bqm(_native_bqm(), num_reads=2, num_sweeps=10, seed=0)
        assert ss.info["device"] == "test-qpu"
        assert ss.info["noisy"] is False

    def test_repr(self):
        assert "SimulatedQPU" in repr(SimulatedQPU())
