import networkx as nx
import numpy as np
import pytest

from repro.hardware.chimera import chimera_graph
from repro.hardware.embedding import find_embedding, verify_embedding
from repro.hardware.pegasus import pegasus_like_graph
from repro.hardware.zephyr import zephyr_like_graph


class TestZephyrLikeGraph:
    def test_superset_of_pegasus_like(self):
        p = pegasus_like_graph(3, 4)
        z = zephyr_like_graph(3, 4)
        assert set(p.nodes()) == set(z.nodes())
        assert all(z.has_edge(*e) for e in p.edges())

    def test_degree_ordering_across_generations(self):
        """The hardware story: each generation strictly raises connectivity."""
        degrees = {}
        for name, g in [
            ("chimera", chimera_graph(4)),
            ("pegasus", pegasus_like_graph(4)),
            ("zephyr", zephyr_like_graph(4)),
        ]:
            degrees[name] = np.mean([d for _, d in g.degree()])
        assert degrees["chimera"] < degrees["pegasus"] < degrees["zephyr"]

    def test_connected(self):
        assert nx.is_connected(zephyr_like_graph(3))

    def test_family_attribute(self):
        assert zephyr_like_graph(2).graph["family"] == "zephyr-like"

    def test_odd_shore_rejected(self):
        with pytest.raises(ValueError):
            zephyr_like_graph(2, t=3)

    def test_chains_shrink_with_generation(self):
        k7 = nx.complete_graph(7)
        totals = {}
        for name, g in [
            ("chimera", chimera_graph(4)),
            ("zephyr", zephyr_like_graph(4)),
        ]:
            emb = find_embedding(k7, g, seed=0)
            verify_embedding(emb, k7, g)
            totals[name] = sum(len(c) for c in emb.values())
        assert totals["zephyr"] <= totals["chimera"]

    def test_clique_fallback_works(self):
        k12 = nx.complete_graph(12)
        g = zephyr_like_graph(4)
        emb = find_embedding(k12, g, seed=1)
        verify_embedding(emb, k12, g)

    def test_construction_deterministic(self):
        # Graph construction takes no RNG: repeated builds must agree
        # exactly (node set and edge set), which is what makes committed
        # embedding-dependent baselines meaningful.
        a = zephyr_like_graph(3, 4)
        b = zephyr_like_graph(3, 4)
        assert set(a.nodes()) == set(b.nodes())
        assert {frozenset(e) for e in a.edges()} == {
            frozenset(e) for e in b.edges()
        }

    def test_node_count_formula(self):
        # Same unit-cell layout as the Chimera base: 2 * t * m^2 qubits.
        for m, t in [(2, 2), (3, 4)]:
            assert zephyr_like_graph(m, t).number_of_nodes() == 2 * t * m * m

    def test_single_cell_degenerates_to_pegasus_cell(self):
        # m=1 has no room for the second diagonal family: the edge set is
        # exactly the Pegasus-like cell (K_{t,t} plus odd couplers), only
        # the family tag changes.
        g = zephyr_like_graph(1, t=2)
        p = pegasus_like_graph(1, 2)
        assert {frozenset(e) for e in g.edges()} == {
            frozenset(e) for e in p.edges()
        }
        assert g.graph["family"] == "zephyr-like"

    def test_smaller_shore_supported(self):
        g = zephyr_like_graph(3, t=2)
        assert nx.is_connected(g)
