import networkx as nx
import numpy as np
import pytest

from repro.hardware.chimera import chimera_graph
from repro.hardware.embedding import find_embedding, verify_embedding
from repro.hardware.pegasus import pegasus_like_graph
from repro.hardware.zephyr import zephyr_like_graph


class TestZephyrLikeGraph:
    def test_superset_of_pegasus_like(self):
        p = pegasus_like_graph(3, 4)
        z = zephyr_like_graph(3, 4)
        assert set(p.nodes()) == set(z.nodes())
        assert all(z.has_edge(*e) for e in p.edges())

    def test_degree_ordering_across_generations(self):
        """The hardware story: each generation strictly raises connectivity."""
        degrees = {}
        for name, g in [
            ("chimera", chimera_graph(4)),
            ("pegasus", pegasus_like_graph(4)),
            ("zephyr", zephyr_like_graph(4)),
        ]:
            degrees[name] = np.mean([d for _, d in g.degree()])
        assert degrees["chimera"] < degrees["pegasus"] < degrees["zephyr"]

    def test_connected(self):
        assert nx.is_connected(zephyr_like_graph(3))

    def test_family_attribute(self):
        assert zephyr_like_graph(2).graph["family"] == "zephyr-like"

    def test_odd_shore_rejected(self):
        with pytest.raises(ValueError):
            zephyr_like_graph(2, t=3)

    def test_chains_shrink_with_generation(self):
        k7 = nx.complete_graph(7)
        totals = {}
        for name, g in [
            ("chimera", chimera_graph(4)),
            ("zephyr", zephyr_like_graph(4)),
        ]:
            emb = find_embedding(k7, g, seed=0)
            verify_embedding(emb, k7, g)
            totals[name] = sum(len(c) for c in emb.values())
        assert totals["zephyr"] <= totals["chimera"]

    def test_clique_fallback_works(self):
        k12 = nx.complete_graph(12)
        g = zephyr_like_graph(4)
        emb = find_embedding(k12, g, seed=1)
        verify_embedding(emb, k12, g)
