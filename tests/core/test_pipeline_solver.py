import pytest

from repro.anneal.random_sampler import RandomSampler
from repro.core.equality import StringEquality
from repro.core.pipeline import ConstraintPipeline, PipelineResult, PipelineStage
from repro.core.replace import StringReplaceAll
from repro.core.reverse import StringReversal
from repro.core.solver import StringQuboSolver


class TestStringQuboSolver:
    def test_solve_result_fields(self, solver):
        result = solver.solve(StringEquality("ok"))
        assert result.output == "ok"
        assert result.ok
        assert result.energy == result.ground_energy
        assert result.success_rate > 0
        assert result.wall_time > 0
        assert result.reached_ground is True

    def test_success_rate_weighted_over_reads(self, solver):
        result = solver.solve(StringEquality("a"))
        assert 0.0 < result.success_rate <= 1.0

    def test_weak_sampler_fails_verification(self):
        # A random sampler almost surely cannot hit a 35-bit target.
        weak = StringQuboSolver(sampler=RandomSampler(), num_reads=4, seed=0)
        result = weak.solve(StringEquality("hello"))
        assert not result.ok
        assert result.reached_ground is False

    def test_per_call_overrides(self, solver):
        result = solver.solve(StringEquality("x"), num_reads=3)
        assert len(result.sampleset) == 3

    def test_seed_sequence_differs_across_solves(self):
        s = StringQuboSolver(num_reads=4, seed=1, sampler_params={"num_sweeps": 20})
        a = s.solve(StringEquality("ab"))
        b = s.solve(StringEquality("ab"))
        # Different spawned seeds: usually different samplesets; at minimum
        # the solver must not crash and must keep verifying.
        assert a.ok and b.ok

    def test_bad_num_reads(self):
        with pytest.raises(ValueError):
            StringQuboSolver(num_reads=0)

    def test_info_propagated(self, solver):
        result = solver.solve(StringEquality("q"))
        assert result.info.get("sampler") == "SimulatedAnnealingSampler"


class TestConstraintPipeline:
    def test_table1_row1(self, solver):
        pipeline = ConstraintPipeline(
            [
                PipelineStage("reverse", lambda prev: StringReversal(prev)),
                PipelineStage(
                    "replace_all", lambda prev: StringReplaceAll(prev, "e", "a")
                ),
            ]
        )
        result = pipeline.run(solver, initial="hello")
        assert result.output == "ollah"
        assert result.ok
        assert len(result.stages) == 2
        assert result.stages[0].output == "olleh"

    def test_output_threading(self, solver):
        pipeline = ConstraintPipeline(
            [
                PipelineStage("upper1", lambda prev: StringEquality(prev + "b")),
                PipelineStage("upper2", lambda prev: StringEquality(prev + "c")),
            ]
        )
        result = pipeline.run(solver, initial="a")
        assert result.output == "abc"

    def test_total_wall_time(self, solver):
        pipeline = ConstraintPipeline(
            [PipelineStage("one", lambda prev: StringEquality("z"))]
        )
        result = pipeline.run(solver)
        assert result.total_wall_time > 0

    def test_default_solver_constructed(self):
        pipeline = ConstraintPipeline(
            [PipelineStage("eq", lambda prev: StringEquality("a"))]
        )
        result = pipeline.run(num_reads=8, num_sweeps=100, seed=0)
        assert result.ok

    def test_failure_propagates_to_ok(self):
        weak = StringQuboSolver(sampler=RandomSampler(), num_reads=2, seed=0)
        pipeline = ConstraintPipeline(
            [PipelineStage("eq", lambda prev: StringEquality("impossible?"))]
        )
        result = pipeline.run(weak)
        assert not result.ok

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstraintPipeline([])
        with pytest.raises(ValueError):
            ConstraintPipeline(
                [
                    PipelineStage("dup", lambda prev: StringEquality("a")),
                    PipelineStage("dup", lambda prev: StringEquality("b")),
                ]
            )
        with pytest.raises(ValueError):
            _ = PipelineResult().output
