import numpy as np
import pytest

from repro.core.encoding import (
    bits_to_char,
    char_to_bits,
    decode_state,
    encode_string,
    state_to_string,
    variable_index,
)


class TestCharToBits:
    def test_paper_example_a(self):
        # The paper: 'a' = 97 = 1100001 (MSB first).
        np.testing.assert_array_equal(char_to_bits("a"), [1, 1, 0, 0, 0, 0, 1])

    def test_nul(self):
        np.testing.assert_array_equal(char_to_bits("\x00"), np.zeros(7))

    def test_del_is_all_ones(self):
        np.testing.assert_array_equal(char_to_bits("\x7f"), np.ones(7))

    def test_rejects_multichar(self):
        with pytest.raises(ValueError):
            char_to_bits("ab")

    def test_rejects_non_ascii(self):
        with pytest.raises(ValueError):
            char_to_bits("é")

    def test_round_trip_all_codepoints(self):
        for code in range(128):
            c = chr(code)
            assert bits_to_char(char_to_bits(c)) == c

    def test_bits_to_char_shape_check(self):
        with pytest.raises(ValueError):
            bits_to_char(np.zeros(8))


class TestEncodeString:
    def test_empty(self):
        assert encode_string("").shape == (0,)
        assert state_to_string(np.zeros(0)) == ""

    def test_length(self):
        assert encode_string("hello").shape == (35,)

    def test_concatenation_structure(self):
        # f(s) = bin(s1) || bin(s2) || ...
        bits = encode_string("ab")
        np.testing.assert_array_equal(bits[:7], char_to_bits("a"))
        np.testing.assert_array_equal(bits[7:], char_to_bits("b"))

    def test_round_trip(self):
        for text in ["", "a", "hello world", "OnFFnO", "\x00\x7f!"]:
            assert state_to_string(encode_string(text)) == text

    def test_rejects_non_ascii(self):
        with pytest.raises(ValueError):
            encode_string("héllo")

    def test_dtype(self):
        assert encode_string("x").dtype == np.int8


class TestStateToString:
    def test_rejects_non_multiple_of_seven(self):
        with pytest.raises(ValueError):
            state_to_string(np.zeros(10))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            state_to_string(np.zeros((2, 7)))

    def test_alias(self):
        assert decode_state is state_to_string


class TestVariableIndex:
    def test_layout(self):
        assert variable_index(0, 0) == 0
        assert variable_index(0, 6) == 6
        assert variable_index(1, 0) == 7
        assert variable_index(3, 2) == 23

    def test_validation(self):
        with pytest.raises(ValueError):
            variable_index(0, 7)
        with pytest.raises(ValueError):
            variable_index(-1, 0)
