import numpy as np
import pytest

from repro.anneal.exact import ExactSolver
from repro.core.formulation import FormulationError
from repro.core.includes import StringIncludes


class TestModelStructure:
    def test_variable_count(self):
        # |T| - |S| + 1 indicator variables.
        f = StringIncludes("abcd", "cat")
        assert f.num_variables == 2

    def test_match_counts(self):
        f = StringIncludes("the cat", "cat")
        counts = f.match_counts()
        assert counts[4] == 3  # full match at index 4
        assert counts.max() == 3

    def test_one_hot_penalty_on_every_pair(self):
        f = StringIncludes("abcdef", "ab")
        model = f.build_model()
        n = f.num_positions
        for i in range(n):
            for j in range(i + 1, n):
                assert model.get(i, j) == f.one_hot_penalty

    def test_cumulative_penalty_recurrence(self):
        # Matches at 0 and 2: C_0 = 0 (i=0 branch), C_2 = D.
        f = StringIncludes("aaa", "a", first_match_increment=0.5)
        np.testing.assert_allclose(f.cumulative_penalties(), [0.0, 0.5, 1.0])

    def test_first_position_match_carries_no_penalty(self):
        f = StringIncludes("ab", "a")
        model = f.build_model()
        assert model.get(0) == -1.0  # pure reward, no C penalty


class TestGroundState:
    def test_ground_selects_earliest_full_match(self):
        f = StringIncludes("xcatcat", "cat")
        state, energy = ExactSolver().ground_state(f.build_model())
        assert f.decode(state) == 1
        assert energy == pytest.approx(f.ground_energy())

    def test_match_at_zero(self):
        f = StringIncludes("cats", "cat")
        state, _ = ExactSolver().ground_state(f.build_model())
        assert f.decode(state) == 0

    def test_no_match_no_overlap_selects_nothing(self):
        f = StringIncludes("xyz", "ab")
        state, energy = ExactSolver().ground_state(f.build_model())
        assert f.decode(state) == -1
        assert energy == pytest.approx(0.0)

    def test_partial_match_weakness_documented(self):
        # Paper-faithful quirk: partial matches are rewarded, so an absent
        # needle sharing characters with a window still gets selected.
        f = StringIncludes("abc", "ad")
        state, _ = ExactSolver().ground_state(f.build_model())
        assert f.decode(state) == 0  # window 'ab' shares the 'a'
        assert not f.verify(f.decode(state))  # and verification flags it

    def test_one_hot_actually_enforced(self):
        f = StringIncludes("catcatcat", "cat")
        state, _ = ExactSolver().ground_state(f.build_model())
        assert int(np.sum(state)) == 1


class TestSolverIntegration:
    def test_annealed(self, solver):
        result = solver.solve(StringIncludes("the cat sat", "cat"))
        assert result.ok
        assert result.output == 4

    def test_verify_uses_find_semantics(self):
        f = StringIncludes("abab", "ab")
        assert f.verify(0)
        assert not f.verify(2)  # later match is not str.find's answer
        assert not f.verify(-1)


class TestValidation:
    def test_empty_needle_rejected(self):
        with pytest.raises(FormulationError):
            StringIncludes("abc", "")

    def test_needle_longer_than_haystack_rejected(self):
        with pytest.raises(FormulationError):
            StringIncludes("ab", "abc")

    def test_bad_penalties_rejected(self):
        with pytest.raises(FormulationError):
            StringIncludes("abc", "a", one_hot_penalty=0.0)
        with pytest.raises(FormulationError):
            StringIncludes("abc", "a", first_match_increment=-0.1)

    def test_weak_one_hot_gives_unknown_ground_energy(self):
        f = StringIncludes("catcat", "cat", one_hot_penalty=0.5)
        assert f.ground_energy() is None
