"""Tests for the extended regex operators (* ? .) — the paper's future-work
"more formulations" realized on the same fixed-length scheme."""

import re

import pytest

from repro.core.formulation import FormulationError
from repro.core.regex import (
    DOT_CHARS,
    RegexMatching,
    expand_to_length,
    parse_pattern,
    regex_matches,
)


class TestParsing:
    def test_star(self):
        (a, b) = parse_pattern("ab*")
        assert b.min_count == 0 and b.max_count is None

    def test_question(self):
        (a, b) = parse_pattern("ab?")
        assert b.min_count == 0 and b.max_count == 1

    def test_dot(self):
        (token,) = parse_pattern(".")
        assert token.chars == DOT_CHARS

    def test_dot_with_modifier(self):
        (token,) = parse_pattern(".*")
        assert token.chars == DOT_CHARS and token.min_count == 0

    def test_describe_round_trip(self):
        tokens = parse_pattern("a[bc]*d?.+")
        assert "".join(t.describe() for t in tokens) == "a[bc]*d?.+"

    def test_double_modifier_rejected(self):
        for bad in ["a**", "a+?", "a?*", "a++"]:
            with pytest.raises(FormulationError):
                parse_pattern(bad)

    def test_leading_modifier_rejected(self):
        for bad in ["*a", "?a"]:
            with pytest.raises(FormulationError):
                parse_pattern(bad)


class TestMatching:
    @pytest.mark.parametrize(
        "pattern,text,expected",
        [
            ("ab*c", "ac", True),
            ("ab*c", "abbbc", True),
            ("ab*c", "adc", False),
            ("a?b", "b", True),
            ("a?b", "ab", True),
            ("a?b", "aab", False),
            ("a.c", "axc", True),
            ("a.c", "ac", False),
            (".*", "", True),
            (".*", "anything", True),
            ("a.*z", "az", True),
            ("a.*z", "a123z", True),
        ],
    )
    def test_against_python_re(self, pattern, text, expected):
        assert regex_matches(pattern, text) is expected
        assert bool(re.fullmatch(pattern, text)) is expected

    def test_star_backtracking(self):
        assert regex_matches("a*ab", "aaab")

    def test_question_backtracking(self):
        assert regex_matches("a?a", "a")


class TestExpansion:
    def test_star_can_take_zero(self):
        positions = expand_to_length(parse_pattern("ab*c"), 2)
        assert [sorted(p)[0] for p in positions] == ["a", "c"]

    def test_star_absorbs_slack(self):
        positions = expand_to_length(parse_pattern("ab*c"), 5)
        assert [sorted(p)[0] for p in positions] == ["a", "b", "b", "b", "c"]

    def test_question_capped_at_one(self):
        positions = expand_to_length(parse_pattern("ab?c"), 3)
        assert len(positions) == 3
        with pytest.raises(FormulationError):
            expand_to_length(parse_pattern("ab?c"), 4)

    def test_question_dropped_when_tight(self):
        positions = expand_to_length(parse_pattern("ab?c"), 2)
        assert [sorted(p)[0] for p in positions] == ["a", "c"]

    def test_spread_policy_with_mixed_modifiers(self):
        positions = expand_to_length(parse_pattern("a*b*"), 4, "spread")
        assert len(positions) == 4

    def test_bounded_capacity_enforced(self):
        # a?b? matches at most 2 characters.
        with pytest.raises(FormulationError, match="at most"):
            expand_to_length(parse_pattern("a?b?"), 3)


class TestFormulation:
    def test_star_generation(self, solver):
        result = solver.solve(RegexMatching("ab*c", 5))
        assert result.ok
        assert re.fullmatch("ab*c", result.output)

    def test_question_generation(self, solver):
        result = solver.solve(RegexMatching("ab?c", 3))
        assert result.ok
        assert result.output == "abc"

    def test_dot_generation(self, solver):
        result = solver.solve(RegexMatching("a.c", 3))
        assert result.ok
        assert result.output[0] == "a" and result.output[2] == "c"

    def test_mixed_pattern(self, solver):
        result = solver.solve(RegexMatching("[xy]+z?", 4))
        assert result.ok
        assert re.fullmatch("[xy]+z?", result.output)
