import numpy as np
import pytest

from repro.core.encoding import encode_string
from repro.core.formulation import FormulationError
from repro.core.substring import SubstringMatching


class TestPaperSemantics:
    def test_ccat_example(self):
        """The paper's §4.3 worked example: 'cat' in 4 chars encodes 'ccat'."""
        f = SubstringMatching(4, "cat")
        assert f.expected_prefix() == "ccat"
        model = f.build_model()
        expected_diag = np.where(encode_string("ccat") == 1, -1.0, 1.0)
        np.testing.assert_allclose(model.linear_vector(), expected_diag)

    def test_overwrite_cascade_longer(self):
        f = SubstringMatching(6, "cat")
        # last_start = 3; prefix = 'c'*3 + 'cat' = 'ccccat'
        assert f.expected_prefix() == "ccccat"

    def test_exact_fit_no_overwrites(self):
        f = SubstringMatching(3, "cat")
        assert f.expected_prefix() == "cat"
        assert f.last_start == 0

    def test_unconstrained_positions_absent_from_matrix(self):
        # When total_length == len(substring) the matrix covers everything;
        # otherwise earlier positions are written by the cascade, so with
        # this construction every diagonal entry is populated.
        model = SubstringMatching(5, "ab").build_model()
        assert np.all(model.linear_vector() != 0.0)


class TestBehaviour:
    def test_verify(self):
        f = SubstringMatching(4, "cat")
        assert f.verify("ccat")
        assert f.verify("catx")
        assert not f.verify("cxat")
        assert not f.verify("cat")  # wrong length

    def test_solved_contains_substring(self, solver):
        result = solver.solve(SubstringMatching(4, "cat"))
        assert result.ok
        assert "cat" in result.output
        assert result.output == "ccat"  # deterministic ground state

    def test_ground_energy_matches_prefix_encoding(self):
        f = SubstringMatching(4, "cat")
        ones = int(encode_string(f.expected_prefix()).sum())
        assert f.ground_energy() == -float(ones)

    def test_single_char_substring(self, solver):
        result = solver.solve(SubstringMatching(2, "z"))
        assert result.ok
        assert "z" in result.output


class TestValidation:
    def test_empty_substring_rejected(self):
        with pytest.raises(FormulationError):
            SubstringMatching(3, "")

    def test_too_long_substring_rejected(self):
        with pytest.raises(FormulationError):
            SubstringMatching(2, "cat")

    def test_non_ascii_rejected(self):
        with pytest.raises(FormulationError):
            SubstringMatching(4, "cät")
