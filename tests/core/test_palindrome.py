import numpy as np
import pytest

from repro.anneal.exact import ExactSolver
from repro.core.encoding import encode_string
from repro.core.formulation import FormulationError
from repro.core.palindrome import PalindromeGeneration
from repro.utils.asciitab import CHAR_BITS


class TestModelStructure:
    def test_table1_matrix_fragment(self):
        """Paper Table 1 row 2: diag +1.00, mirror coupling -2.00."""
        f = PalindromeGeneration(6)
        model = f.build_model()
        # First bit of char 0 pairs with first bit of char 5.
        a, b = 0, 5 * CHAR_BITS
        assert model.get(a) == pytest.approx(1.0)
        assert model.get(b) == pytest.approx(1.0)
        assert model.get(a, b) == pytest.approx(-2.0)

    def test_middle_char_unconstrained_for_odd_length(self):
        f = PalindromeGeneration(3)
        model = f.build_model()
        mid = slice(CHAR_BITS, 2 * CHAR_BITS)
        assert np.all(model.linear_vector()[mid] == 0.0)

    def test_num_couplings(self):
        f = PalindromeGeneration(6)
        assert f.build_model().num_interactions == 3 * CHAR_BITS

    def test_single_char_trivial(self):
        f = PalindromeGeneration(1)
        assert f.build_model().num_interactions == 0
        assert f.verify("x")


class TestSemantics:
    def test_every_mirrored_string_is_ground_state(self):
        f = PalindromeGeneration(2)
        model = f.build_model()
        for text in ["aa", "bb", "%%", "\x00\x00"]:
            assert model.energy(encode_string(text)) == pytest.approx(0.0)

    def test_non_palindrome_has_positive_energy(self):
        f = PalindromeGeneration(2)
        model = f.build_model()
        assert model.energy(encode_string("ab")) > 0.0

    def test_energy_counts_disagreeing_bits(self):
        f = PalindromeGeneration(2)
        model = f.build_model()
        # 'a'=1100001, 'b'=1100010 differ in 2 bits -> energy 2A.
        assert model.energy(encode_string("ab")) == pytest.approx(2.0)

    def test_ground_energy_zero(self):
        assert PalindromeGeneration(4).ground_energy() == 0.0

    def test_verify(self):
        f = PalindromeGeneration(4)
        assert f.verify("abba")
        assert not f.verify("abab")
        assert not f.verify("aba")  # wrong length

    def test_solved(self, solver):
        result = solver.solve(PalindromeGeneration(6))
        assert result.ok
        assert result.output == result.output[::-1]
        assert result.energy == pytest.approx(0.0)

    def test_odd_length_solved(self, solver):
        result = solver.solve(PalindromeGeneration(5))
        assert result.ok


class TestPrintableBias:
    def test_template_is_mirrored(self):
        f = PalindromeGeneration(6, printable_bias=0.1, seed=0)
        t = f.template()
        assert t == t[::-1]
        assert len(t) == 6

    def test_template_odd_length(self):
        f = PalindromeGeneration(5, printable_bias=0.1, seed=1)
        assert f.template() == f.template()[::-1]

    def test_biased_ground_state_is_template(self):
        f = PalindromeGeneration(2, printable_bias=0.2, seed=2)
        state, energy = ExactSolver().ground_state(f.build_model())
        assert f.decode(state) == f.template()
        assert energy == pytest.approx(f.ground_energy())

    def test_biased_solve_is_printable_palindrome(self, solver):
        from repro.utils.asciitab import is_printable

        result = solver.solve(PalindromeGeneration(4, printable_bias=0.2, seed=3))
        assert result.ok
        assert is_printable(result.output)

    def test_validation(self):
        with pytest.raises(FormulationError):
            PalindromeGeneration(0)
        with pytest.raises(FormulationError):
            PalindromeGeneration(4, printable_bias=0.6)
        with pytest.raises(FormulationError):
            PalindromeGeneration(4, printable_bias=-0.1)
