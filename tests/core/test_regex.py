import numpy as np
import pytest

from repro.core.formulation import FormulationError
from repro.core.regex import (
    RegexMatching,
    RegexToken,
    expand_to_length,
    parse_pattern,
    regex_matches,
)
from repro.utils.asciitab import CHAR_BITS


class TestParsePattern:
    def test_literals(self):
        tokens = parse_pattern("abc")
        assert [t.chars for t in tokens] == [
            frozenset("a"),
            frozenset("b"),
            frozenset("c"),
        ]
        assert not any(t.plus for t in tokens)

    def test_class(self):
        (token,) = parse_pattern("[bc]")
        assert token.chars == frozenset("bc")

    def test_class_range(self):
        (token,) = parse_pattern("[a-e]")
        assert token.chars == frozenset("abcde")

    def test_paper_example(self):
        tokens = parse_pattern("a[tyz]+b")
        assert len(tokens) == 3
        assert tokens[0].chars == frozenset("a") and not tokens[0].plus
        assert tokens[1].chars == frozenset("tyz") and tokens[1].plus
        assert tokens[2].chars == frozenset("b") and not tokens[2].plus

    def test_plus_on_literal(self):
        tokens = parse_pattern("a+")
        assert tokens[0].plus

    def test_escapes(self):
        tokens = parse_pattern(r"\+\[")
        assert [next(iter(t.chars)) for t in tokens] == ["+", "["]

    def test_escape_inside_class(self):
        (token,) = parse_pattern(r"[\]a]")
        assert token.chars == frozenset("]a")

    def test_errors(self):
        for bad in ["", "+a", "a++", "[", "[]", "a]", "\\", "[a", r"[z-a]"]:
            with pytest.raises(FormulationError):
                parse_pattern(bad)


class TestRegexMatches:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("atytyzb", True),
            ("azb", True),
            ("atyzb", True),
            ("ab", False),        # plus needs at least one
            ("atyz", False),      # missing trailing literal
            ("btyzb", False),
            ("atyzbx", False),
        ],
    )
    def test_paper_examples(self, text, expected):
        assert regex_matches("a[tyz]+b", text) is expected

    def test_plain_literal_match(self):
        assert regex_matches("cat", "cat")
        assert not regex_matches("cat", "car")

    def test_greedy_plus_backtracks(self):
        # a+ then 'a': must give one 'a' back.
        assert regex_matches("a+a", "aaa")

    def test_adjacent_plus_tokens(self):
        assert regex_matches("a+b+", "aabbb")
        assert not regex_matches("a+b+", "bba")

    def test_full_match_semantics(self):
        assert not regex_matches("a", "aa")

    def test_empty_text(self):
        assert not regex_matches("a", "")

    def test_token_list_input(self):
        tokens = [RegexToken(frozenset("x"))]
        assert regex_matches(tokens, "x")


class TestExpandToLength:
    def test_minimal_length(self):
        tokens = parse_pattern("a[bc]+")
        positions = expand_to_length(tokens, 2)
        assert positions == [frozenset("a"), frozenset("bc")]

    def test_last_policy_gives_slack_to_last_plus(self):
        tokens = parse_pattern("a+b+")
        positions = expand_to_length(tokens, 5, "last")
        assert positions == [frozenset("a")] + [frozenset("b")] * 4

    def test_spread_policy(self):
        tokens = parse_pattern("a+b+")
        positions = expand_to_length(tokens, 4, "spread")
        assert positions == [frozenset("a")] * 2 + [frozenset("b")] * 2

    def test_too_short_rejected(self):
        with pytest.raises(FormulationError):
            expand_to_length(parse_pattern("abc"), 2)

    def test_unstretchable_rejected(self):
        with pytest.raises(FormulationError):
            expand_to_length(parse_pattern("ab"), 3)

    def test_bad_policy(self):
        with pytest.raises(FormulationError):
            expand_to_length(parse_pattern("a+"), 3, "zigzag")


class TestRegexMatchingFormulation:
    def test_table1_row3(self, solver):
        result = solver.solve(RegexMatching("a[bc]+", 5))
        assert result.ok
        assert result.output[0] == "a"
        assert all(c in "bc" for c in result.output[1:])

    def test_class_weight_sharing(self):
        # [bc]: shared MSB bits get full A, disagreeing final bit cancels.
        f = RegexMatching("[bc]", 1)
        diag = f.build_model().linear_vector()
        # b=1100010, c=1100011: first six bits agree, last bit cancels to 0.
        assert diag[0] == pytest.approx(-1.0)
        assert diag[6] == pytest.approx(0.0)

    def test_literal_position_full_strength(self):
        f = RegexMatching("a", 1)
        np.testing.assert_allclose(
            f.build_model().linear_vector(), [-1, -1, 1, 1, 1, 1, -1]
        )

    def test_every_class_member_is_ground_state(self):
        from repro.core.encoding import encode_string

        f = RegexMatching("[bc]", 1)
        model = f.build_model()
        assert model.energy(encode_string("b")) == pytest.approx(
            model.energy(encode_string("c"))
        )

    def test_verify_uses_real_matcher(self):
        f = RegexMatching("a[bc]+", 4)
        assert f.verify("abcb")
        assert not f.verify("axcb")
        assert not f.verify("abc")  # wrong length

    def test_bad_length_rejected_at_construction(self):
        with pytest.raises(FormulationError):
            RegexMatching("abc", 2)

    def test_pretty_describe_from_tokens(self):
        tokens = parse_pattern("a[bc]+")
        f = RegexMatching(tokens, 3)
        assert "[bc]+" in f.describe()

    def test_larger_alphabet_class(self, solver):
        result = solver.solve(RegexMatching("[a-d]+x", 4))
        assert result.ok or result.output[-1] == "x"
