import numpy as np
import pytest

from repro.anneal.exact import ExactSolver
from repro.core.affixes import (
    StringCharAt,
    StringPrefixOf,
    StringSubstr,
    StringSuffixOf,
)
from repro.core.encoding import encode_string
from repro.core.formulation import FormulationError
from repro.core.notequals import StringNotEquals, add_and_gadget
from repro.qubo.model import QuboModel


class TestPrefixOf:
    def test_solved(self, solver):
        result = solver.solve(StringPrefixOf(6, "ab", seed=0))
        assert result.ok
        assert result.output.startswith("ab")
        assert len(result.output) == 6

    def test_verify(self):
        f = StringPrefixOf(4, "ab")
        assert f.verify("abcd")
        assert not f.verify("bacd")
        assert not f.verify("ab")

    def test_window_is_index_zero(self):
        assert StringPrefixOf(5, "xy").index == 0

    def test_full_width_prefix(self, solver):
        result = solver.solve(StringPrefixOf(2, "ab", seed=1))
        assert result.output == "ab"


class TestSuffixOf:
    def test_solved(self, solver):
        result = solver.solve(StringSuffixOf(6, "yz", seed=0))
        assert result.ok
        assert result.output.endswith("yz")

    def test_verify(self):
        f = StringSuffixOf(4, "cd")
        assert f.verify("abcd")
        assert not f.verify("cdab")

    def test_window_at_end(self):
        assert StringSuffixOf(7, "abc").index == 4

    def test_too_long_rejected(self):
        with pytest.raises(FormulationError):
            StringSuffixOf(2, "abc")


class TestCharAt:
    def test_solved(self, solver):
        result = solver.solve(StringCharAt(5, "Q", 2, seed=0))
        assert result.ok
        assert result.output[2] == "Q"

    def test_verify(self):
        f = StringCharAt(3, "x", 1)
        assert f.verify("axb")
        assert not f.verify("xab")

    def test_multichar_rejected(self):
        with pytest.raises(FormulationError):
            StringCharAt(3, "ab", 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(FormulationError):
            StringCharAt(3, "a", 3)


class TestSubstr:
    def test_slice_semantics(self):
        f = StringSubstr("hello world", 6, 5)
        assert f.target == "world"

    def test_clipped_count(self):
        assert StringSubstr("abc", 1, 99).target == "bc"

    def test_out_of_range_is_empty(self):
        assert StringSubstr("abc", 5, 2).target == ""
        assert StringSubstr("abc", -1, 2).target == ""
        assert StringSubstr("abc", 0, -1).target == ""

    def test_offset_at_length_is_empty(self):
        assert StringSubstr("abc", 3, 1).target == ""

    def test_solved(self, solver):
        result = solver.solve(StringSubstr("quantum", 0, 5))
        assert result.output == "quant"
        assert result.ok


class TestNotEquals:
    def test_exact_ground_is_template(self):
        f = StringNotEquals("a", seed=0)
        state, energy = ExactSolver().ground_state(f.build_model())
        decoded = f.decode(state)
        assert decoded == f.template()
        assert decoded != "a"
        assert energy == pytest.approx(f.ground_energy())

    def test_solved(self, solver):
        result = solver.solve(StringNotEquals("hello", seed=1))
        assert result.ok
        assert result.output != "hello"
        assert len(result.output) == 5

    def test_target_state_costs_penalty(self):
        f = StringNotEquals("ab", seed=2)
        model = f.build_model()
        # Build the full state matching the target with consistent aux.
        bits = encode_string("ab")
        n_bits = bits.size
        state = np.zeros(model.num_variables, dtype=np.int8)
        state[:n_bits] = bits
        # All match literals are 1, so every aux in the chain is 1.
        state[n_bits:] = 1
        energy_target = model.energy(state)
        # Compare with the template's energy: must be higher by ~penalty.
        template_state = np.zeros(model.num_variables, dtype=np.int8)
        template_bits = encode_string(f.template())
        template_state[:n_bits] = template_bits
        # Compute consistent aux for the template (first literal AND chain).
        literals = f.match_literals()
        values = [
            (1 - template_state[v]) if neg else template_state[v]
            for v, neg in literals
        ]
        acc = values[0] & values[1]
        aux_values = [acc]
        for k in range(2, n_bits):
            acc &= values[k]
            aux_values.append(acc)
        template_state[n_bits:] = aux_values
        assert energy_target > model.energy(template_state)

    def test_aux_count(self):
        f = StringNotEquals("abc", seed=3)
        assert f.build_model().num_variables == 21 + 20

    def test_template_never_equals_target(self):
        for seed in range(5):
            f = StringNotEquals("q", seed=seed)
            assert f.template() != "q"

    def test_verify(self):
        f = StringNotEquals("ab")
        assert f.verify("ba")
        assert not f.verify("ab")
        assert not f.verify("abc")  # wrong length

    def test_validation(self):
        with pytest.raises(FormulationError):
            StringNotEquals("")
        with pytest.raises(FormulationError):
            StringNotEquals("a", printable_bias=0.0)
        with pytest.raises(FormulationError):
            StringNotEquals("a", mismatch_penalty=-1.0)


class TestAndGadgetEdges:
    def test_output_must_be_fresh(self):
        m = QuboModel(2)
        with pytest.raises(FormulationError):
            add_and_gadget(m, 0, (0, False), (1, False), 1.0)
