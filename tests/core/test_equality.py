import numpy as np
import pytest

from repro.core.encoding import encode_string
from repro.core.equality import StringEquality
from repro.core.formulation import FormulationError


class TestModelStructure:
    def test_paper_example_diagonal_for_a(self):
        # 'a' = 1100001 -> diag [-A, -A, +A, +A, +A, +A, -A] with A = 1.
        model = StringEquality("a").build_model()
        np.testing.assert_allclose(
            model.linear_vector(), [-1, -1, 1, 1, 1, 1, -1]
        )

    def test_model_is_diagonal_only(self):
        model = StringEquality("hello").build_model()
        assert model.num_interactions == 0

    def test_size_is_7n(self):
        assert StringEquality("hello").num_variables == 35

    def test_penalty_strength_scales_diagonal(self):
        weak = StringEquality("a", penalty_strength=1.0).build_model()
        strong = StringEquality("a", penalty_strength=3.0).build_model()
        np.testing.assert_allclose(
            strong.linear_vector(), 3.0 * weak.linear_vector()
        )

    def test_empty_target(self):
        f = StringEquality("")
        assert f.num_variables == 0
        assert f.ground_energy() == 0.0

    def test_non_ascii_rejected(self):
        with pytest.raises(FormulationError):
            StringEquality("héllo")

    def test_non_positive_penalty_rejected(self):
        with pytest.raises(FormulationError):
            StringEquality("a", penalty_strength=0.0)


class TestSemantics:
    def test_target_is_unique_ground_state(self):
        f = StringEquality("hi")
        model = f.build_model()
        target_bits = encode_string("hi")
        assert model.energy(target_bits) == pytest.approx(f.ground_energy())
        # Flipping any single bit strictly increases energy.
        for i in range(model.num_variables):
            flipped = target_bits.copy()
            flipped[i] ^= 1
            assert model.energy(flipped) > model.energy(target_bits)

    def test_ground_energy_is_negative_popcount(self):
        f = StringEquality("a")
        # 'a' has three 1-bits.
        assert f.ground_energy() == -3.0

    def test_decode(self):
        f = StringEquality("cat")
        assert f.decode(encode_string("cat")) == "cat"

    def test_verify(self):
        f = StringEquality("cat")
        assert f.verify("cat")
        assert not f.verify("dog")
        assert not f.verify("cats")

    def test_solved_by_annealer(self, solver):
        result = solver.solve(StringEquality("hello"))
        assert result.output == "hello"
        assert result.ok
        assert result.reached_ground

    def test_describe(self):
        assert "hello" in StringEquality("hello").describe()
