import numpy as np
import pytest

from repro.core.formulation import FormulationError
from repro.core.indexof import SubstringIndexOf
from repro.core.length import StringLength
from repro.utils.asciitab import CHAR_BITS, is_printable


class TestSubstringIndexOf:
    def test_table1_row5_shape(self, solver):
        # "length 6, 'hi' at index 2" -> e.g. 'qphiqp'
        result = solver.solve(SubstringIndexOf(6, "hi", 2, seed=0))
        assert result.ok
        assert len(result.output) == 6
        assert result.output[2:4] == "hi"

    def test_strong_soft_ratio_in_matrix(self):
        f = SubstringIndexOf(4, "ab", 1, strong_factor=2.0, soft_factor=0.1, seed=0)
        diag = np.abs(f.build_model().linear_vector())
        window_bits = diag[CHAR_BITS : 3 * CHAR_BITS]
        free_bits = np.concatenate([diag[:CHAR_BITS], diag[3 * CHAR_BITS :]])
        np.testing.assert_allclose(window_bits, 2.0)
        np.testing.assert_allclose(free_bits, 0.1)

    def test_soft_targets_printable(self):
        f = SubstringIndexOf(8, "ab", 3, seed=1)
        assert is_printable(f.soft_characters())
        assert f.soft_characters()[3:5] == "ab"

    def test_fixed_soft_target(self):
        f = SubstringIndexOf(5, "hi", 0, soft_target="q")
        assert f.soft_characters() == "hiqqq"

    def test_soft_targets_cached(self):
        f = SubstringIndexOf(6, "ab", 2, seed=2)
        assert f.soft_characters() == f.soft_characters()

    def test_verify(self):
        f = SubstringIndexOf(6, "hi", 2)
        assert f.verify("xxhixx")
        assert not f.verify("hixxxx")
        assert not f.verify("xxhix")  # wrong length

    def test_substring_at_start_and_end(self, solver):
        start = solver.solve(SubstringIndexOf(4, "ab", 0, seed=3))
        end = solver.solve(SubstringIndexOf(4, "ab", 2, seed=4))
        assert start.ok and start.output.startswith("ab")
        assert end.ok and end.output.endswith("ab")

    def test_validation(self):
        with pytest.raises(FormulationError):
            SubstringIndexOf(3, "abcd", 0)  # does not fit
        with pytest.raises(FormulationError):
            SubstringIndexOf(5, "ab", 4)  # overflows the end
        with pytest.raises(FormulationError):
            SubstringIndexOf(5, "", 0)
        with pytest.raises(FormulationError):
            SubstringIndexOf(5, "ab", -1)
        with pytest.raises(FormulationError):
            SubstringIndexOf(5, "ab", 0, soft_factor=3.0)  # soft >= strong
        with pytest.raises(FormulationError):
            SubstringIndexOf(5, "ab", 0, soft_target="xy")


class TestStringLengthPaperMode:
    def test_matrix_is_literal_paper_objective(self):
        f = StringLength(4, 2)  # 28 bits, first 14 want 1
        diag = f.build_model().linear_vector()
        np.testing.assert_allclose(diag[:14], -1.0)
        np.testing.assert_allclose(diag[14:], 1.0)

    def test_ground_energy(self):
        f = StringLength(4, 2)
        assert f.ground_energy() == -14.0

    def test_solved_and_verified(self, solver):
        result = solver.solve(StringLength(5, 3))
        assert result.ok
        assert result.reached_ground

    def test_decode_returns_bits(self):
        f = StringLength(2, 1)
        bits = f.decode(np.concatenate([np.ones(7), np.zeros(7)]).astype(np.int8))
        assert bits.shape == (14,)

    def test_effective_length_counts_del_padding(self):
        f = StringLength(3, 2)
        state = np.concatenate([np.ones(14), np.zeros(7)]).astype(np.int8)
        assert f.effective_length(state) == 2

    def test_verify_rejects_wrong_boundary(self):
        f = StringLength(2, 1)
        wrong = np.concatenate([np.ones(8), np.zeros(6)]).astype(np.int8)
        assert not f.verify(wrong)

    def test_zero_length(self, solver):
        result = solver.solve(StringLength(3, 0))
        assert result.ok


class TestStringLengthDecodableMode:
    def test_output_has_exact_length(self, solver):
        result = solver.solve(StringLength(6, 3, mode="decodable", seed=0))
        assert result.ok
        assert len(result.output) == 3

    def test_output_printable(self, solver):
        result = solver.solve(StringLength(5, 4, mode="decodable", seed=1))
        assert result.ok
        assert is_printable(result.output)

    def test_full_buffer(self, solver):
        result = solver.solve(StringLength(3, 3, mode="decodable", seed=2))
        assert result.ok
        assert len(result.output) == 3

    def test_content_cached(self):
        f = StringLength(4, 2, mode="decodable", seed=3)
        assert f.content_characters() == f.content_characters()

    def test_validation(self):
        with pytest.raises(FormulationError):
            StringLength(3, 4)
        with pytest.raises(FormulationError):
            StringLength(3, -1)
        with pytest.raises(FormulationError):
            StringLength(-1, 0)
        with pytest.raises(FormulationError):
            StringLength(3, 2, mode="magic")
        with pytest.raises(FormulationError):
            StringLength(3, 2, soft_factor=1.5)
