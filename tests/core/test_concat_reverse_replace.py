import pytest

from repro.core.concat import StringConcatenation
from repro.core.formulation import FormulationError
from repro.core.replace import StringReplace, StringReplaceAll
from repro.core.reverse import StringReversal


class TestConcatenation:
    def test_target_is_joined(self):
        f = StringConcatenation("hello ", "world")
        assert f.target == "hello world"
        assert f.num_variables == 7 * 11

    def test_verify_checks_both_halves(self):
        f = StringConcatenation("ab", "cd")
        assert f.verify("abcd")
        assert not f.verify("abce")
        assert not f.verify("abcd ")

    def test_solved(self, solver):
        result = solver.solve(StringConcatenation("foo", "bar"))
        assert result.output == "foobar"
        assert result.ok

    def test_empty_operands(self):
        f = StringConcatenation("", "x")
        assert f.target == "x"

    def test_non_ascii_rejected(self):
        with pytest.raises(FormulationError):
            StringConcatenation("é", "a")
        with pytest.raises(FormulationError):
            StringConcatenation("a", "é")

    def test_describe_mentions_operands(self):
        d = StringConcatenation("l", "r").describe()
        assert "'l'" in d and "'r'" in d


class TestReversal:
    def test_target_reversed(self):
        assert StringReversal("hello").target == "olleh"

    def test_palindromic_source(self):
        f = StringReversal("abba")
        assert f.target == "abba"
        assert f.verify("abba")

    def test_verify(self):
        f = StringReversal("ab")
        assert f.verify("ba")
        assert not f.verify("ab")

    def test_solved(self, solver):
        result = solver.solve(StringReversal("hello"))
        assert result.output == "olleh"
        assert result.ok

    def test_single_char(self):
        f = StringReversal("x")
        assert f.target == "x"


class TestReplaceAll:
    def test_expected_replaces_every_occurrence(self):
        f = StringReplaceAll("hello world", "l", "x")
        assert f.expected == "hexxo worxd"

    def test_no_occurrence_is_identity(self):
        f = StringReplaceAll("abc", "z", "q")
        assert f.expected == "abc"
        assert f.verify("abc")

    def test_verify_requires_total_replacement(self):
        f = StringReplaceAll("ll", "l", "x")
        assert f.verify("xx")
        assert not f.verify("xl")
        assert not f.verify("ll")

    def test_identity_replacement(self):
        f = StringReplaceAll("aba", "a", "a")
        assert f.expected == "aba"
        assert f.verify("aba")

    def test_solved(self, solver):
        result = solver.solve(StringReplaceAll("hello", "e", "a"))
        assert result.output == "hallo"
        assert result.ok

    def test_multichar_old_rejected(self):
        with pytest.raises(FormulationError):
            StringReplaceAll("abc", "ab", "x")
        with pytest.raises(FormulationError):
            StringReplaceAll("abc", "a", "xy")

    def test_non_ascii_rejected(self):
        with pytest.raises(FormulationError):
            StringReplaceAll("abc", "é", "a")


class TestReplaceFirst:
    def test_only_first_occurrence(self):
        f = StringReplace("hello", "l", "x")
        assert f.expected == "hexlo"

    def test_verify(self):
        f = StringReplace("ll", "l", "x")
        assert f.verify("xl")
        assert not f.verify("xx")

    def test_solved(self, solver):
        result = solver.solve(StringReplace("hello world", "o", "0"))
        assert result.output == "hell0 world"
        assert result.ok
