; expect: unsat
; hand seed: conflicting lengths
(declare-const x String)
(assert (= (str.len x) 1))
(assert (= (str.len x) 2))
(check-sat)
