; expect: sat
; expect: unsat
; expect: sat
; expect: unsat
; hand seed: depth-2 length conflict, pop 2, re-push the same conflict
(declare-const x String)
(assert (= (str.len x) 2))
(check-sat)
(push 2)
(assert (= (str.len x) 3))
(check-sat)
(pop 2)
(check-sat)
(push 1)
(assert (= (str.len x) 3))
(check-sat)
