; expect: sat
; hand seed: containment window (paper 4.5)
(declare-const x String)
(assert (= (str.len x) 3))
(assert (str.contains x "b"))
(check-sat)
