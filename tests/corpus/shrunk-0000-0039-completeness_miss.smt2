; expect: sat
; shrunk from campaign seed=0 instance #39: quantum unknown on a satisfiable instance (annealer did not produce a verified witness for 'x' in 3 attempts)
(declare-const x String)
(assert (str.contains x "g"))
(assert (= x (str.rev "ag")))
(check-sat)
