; expect: sat
; hand seed: a prefix covering the whole length — every bit implied,
; the refined anneal runs a 0-variable QUBO (decode-only fast path)
(declare-const x String)
(assert (= (str.len x) 3))
(assert (str.prefixof "abc" x))
(check-sat)
