; expect: sat
; shrunk from campaign seed=0 instance #82: quantum unknown on a satisfiable instance (annealer did not produce a verified witness for 'x' in 3 attempts)
(declare-const x String)
(assert (not (= x "a")))
(check-sat)
