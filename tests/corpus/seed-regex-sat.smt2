; expect: sat
; hand seed: regex membership (paper 4.12)
(declare-const x String)
(assert (= (str.len x) 2))
(assert (str.in_re x (re.++ (re.range "a" "c") (str.to_re "b"))))
(check-sat)
