; expect: sat
; shrunk from campaign seed=0 instance #63: quantum unknown on a satisfiable instance (annealer did not produce a verified witness for 'x' in 3 attempts)
(declare-const x String)
(assert (str.contains x "e"))
(assert (= x (str.replace_all "ea" "a" "a")))
(check-sat)
