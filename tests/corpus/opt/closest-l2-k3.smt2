; expect: optimal
; expect-objective: 3
; closest string K=3 L=2 (hi/ho/my): majority 'h?' pays 1 at position 0
; and any choice pays 2 at the three-way contested position 1
(declare-const x String)
(assert (= (str.len x) 2))
(assert-soft (= (str.at x 0) "h") :weight 1 :id ref0)
(assert-soft (= (str.at x 1) "i") :weight 1 :id ref0)
(assert-soft (= (str.at x 0) "h") :weight 1 :id ref1)
(assert-soft (= (str.at x 1) "o") :weight 1 :id ref1)
(assert-soft (= (str.at x 0) "m") :weight 1 :id ref2)
(assert-soft (= (str.at x 1) "y") :weight 1 :id ref2)
