; expect: feasible
; expect-objective: 2
; closest string K=3 L=4 (kale/male/mole) above the exhaustive-bits
; threshold: the annealed weighted QUBO answers, so the status stays
; feasible (the bound pair does not close) even when the audited
; objective lands on the true optimum 2 ("male")
(declare-const x String)
(assert (= (str.len x) 4))
(assert-soft (= (str.at x 0) "k") :weight 1 :id ref0)
(assert-soft (= (str.at x 1) "a") :weight 1 :id ref0)
(assert-soft (= (str.at x 2) "l") :weight 1 :id ref0)
(assert-soft (= (str.at x 3) "e") :weight 1 :id ref0)
(assert-soft (= (str.at x 0) "m") :weight 1 :id ref1)
(assert-soft (= (str.at x 1) "a") :weight 1 :id ref1)
(assert-soft (= (str.at x 2) "l") :weight 1 :id ref1)
(assert-soft (= (str.at x 3) "e") :weight 1 :id ref1)
(assert-soft (= (str.at x 0) "m") :weight 1 :id ref2)
(assert-soft (= (str.at x 1) "o") :weight 1 :id ref2)
(assert-soft (= (str.at x 2) "l") :weight 1 :id ref2)
(assert-soft (= (str.at x 3) "e") :weight 1 :id ref2)
