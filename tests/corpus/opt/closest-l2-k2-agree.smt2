; expect: optimal
; expect-objective: 0
; identical references: the closest string is the reference itself
(declare-const x String)
(assert (= (str.len x) 2))
(assert-soft (= (str.at x 0) "a") :weight 1 :id ref0)
(assert-soft (= (str.at x 1) "b") :weight 1 :id ref0)
(assert-soft (= (str.at x 0) "a") :weight 1 :id ref1)
(assert-soft (= (str.at x 1) "b") :weight 1 :id ref1)
