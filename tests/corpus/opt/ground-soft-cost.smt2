; expect: optimal
; expect-objective: 2
; ground soft assertions decide their cost before any model is chosen:
; the false one pays its weight, the true one is free
(assert-soft (= "a" "b") :weight 2)
(assert-soft (= "a" "a") :weight 1)
