; expect: optimal
; expect-objective: 1
; two conflicting whole-string equalities: the heavier one wins,
; paying the lighter weight
(declare-const x String)
(assert (= (str.len x) 1))
(assert-soft (= x "a") :weight 1)
(assert-soft (= x "b") :weight 3)
