; expect: optimal
; expect-objective: 1
; weighted references: matching the weight-3 reference exactly costs
; only the weight-1 reference's contested position
(declare-const x String)
(assert (= (str.len x) 2))
(assert-soft (= (str.at x 0) "a") :weight 3 :id ref0)
(assert-soft (= (str.at x 1) "b") :weight 3 :id ref0)
(assert-soft (= (str.at x 0) "c") :weight 1 :id ref1)
(assert-soft (= (str.at x 1) "b") :weight 1 :id ref1)
