; expect: infeasible
; a ground-false hard assertion refutes the instance regardless of
; any soft weight on offer
(declare-const x String)
(assert (= "a" "b"))
(assert-soft (= x "a") :weight 5)
