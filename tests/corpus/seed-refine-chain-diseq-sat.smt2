; expect: sat
; hand seed: chained equalities + a disequality — propagation fully
; determines the string prefix while the disequality contributes
; ancilla bits the refiner must never clamp (paper 4.1/4.2)
(declare-const x String)
(assert (= x "spin"))
(assert (= x "spin"))
(assert (not (= x "spun")))
(check-sat)
