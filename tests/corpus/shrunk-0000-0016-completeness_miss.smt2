; expect: sat
; shrunk from campaign seed=0 instance #16: quantum unknown on a satisfiable instance (annealer did not produce a verified witness for 'x' in 3 attempts)
(declare-const x String)
(assert (str.contains x "a"))
(assert (= x (str.substr "aaah" 2 2)))
(check-sat)
