; expect: unsat
; hand seed: ground-false equality
(assert (= "a" "b"))
(check-sat)
