; expect: sat
; expect: sat
; hand seed: each frame refines the witness, both queries stay sat
(declare-const x String)
(assert (= (str.len x) 3))
(check-sat)
(push 1)
(assert (str.contains x "b"))
(check-sat)
