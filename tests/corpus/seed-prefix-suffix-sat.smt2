; expect: sat
; hand seed: prefix+suffix (paper 4.6/4.7)
(declare-const x String)
(assert (= (str.len x) 3))
(assert (str.prefixof "a" x))
(assert (str.suffixof "c" x))
(check-sat)
