; expect: sat
; hand seed: disequality (paper 4.2)
(declare-const x String)
(assert (= (str.len x) 2))
(assert (not (= x "aa")))
(check-sat)
