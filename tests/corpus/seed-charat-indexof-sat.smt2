; expect: sat
; hand seed: charat + indexof agree (paper 4.4/4.8)
(declare-const x String)
(assert (= (str.len x) 3))
(assert (= (str.at x 1) "b"))
(assert (= (str.indexof x "b" 0) 1))
(check-sat)
