; expect: sat
; expect: unsat
; expect: sat
; hand seed: pushed contradiction, then popped away (one expect per query)
(declare-const x String)
(assert (= (str.len x) 2))
(check-sat)
(push 1)
(assert (= x "aa"))
(assert (= x "bb"))
(check-sat)
(pop 1)
(check-sat)
