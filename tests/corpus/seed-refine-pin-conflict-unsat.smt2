; expect: unsat
; hand seed: prefix longer than the asserted length — propagation sees
; a conflict but must *skip pruning*, not answer unsat itself; the
; ground refutation comes from the ordinary pipeline
(declare-const x String)
(assert (= (str.len x) 2))
(assert (str.prefixof "abc" x))
(check-sat)
