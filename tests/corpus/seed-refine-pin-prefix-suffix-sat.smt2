; expect: sat
; hand seed: prefix+suffix pinning leaves one free position — the
; refinement loop clamps 21 of 28 bits (paper 4.6/4.7)
(declare-const x String)
(assert (= (str.len x) 4))
(assert (str.prefixof "ab" x))
(assert (str.suffixof "d" x))
(check-sat)
