; expect: sat
; hand seed: length constraint (paper 4.3)
(declare-const x String)
(assert (= (str.len x) 3))
(check-sat)
