; expect: sat
; hand seed: ground reverse (paper 4.9)
(declare-const x String)
(assert (= x (str.rev "ba")))
(check-sat)
