; expect: sat
; hand seed: direct equality (paper 4.1)
(declare-const x String)
(assert (= x "ab"))
(check-sat)
