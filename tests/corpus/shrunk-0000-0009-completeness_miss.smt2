; expect: sat
; shrunk from campaign seed=0 instance #9: quantum unknown on a satisfiable instance (annealer did not produce a verified witness for 'x' in 3 attempts)
(declare-const x String)
(assert (str.in_re x (re.++ (re.+ (re.union (str.to_re "a") (str.to_re "f"))) (str.to_re "a") (re.+ (re.union (str.to_re "f") (str.to_re "b"))) (re.range "b" "e"))))
(check-sat)
