#!/usr/bin/env python
"""Input-validation fuzzing: generate inputs that satisfy (or probe)
validation rules — the second §1 motivation of the paper.

A web form validates a "product code": exactly 7 characters, shaped like
``[A-F][A-F][0-9][0-9][0-9]-[0-9]`` (two hex-ish letters, a numeric id, a
dash, a check digit). We generate a batch of *distinct* valid codes by
annealing the regex QUBO repeatedly, then use the palindrome and
replace-all formulations to build sanitizer test cases.

Run:
    python examples/input_validation.py
"""

from repro import (
    PalindromeGeneration,
    RegexMatching,
    StringQuboSolver,
    StringReplaceAll,
)
from repro.core.regex import regex_matches

PATTERN = "[A-F][A-F][0-9][0-9][0-9]-[0-9]"


def generate_valid_codes(count: int) -> list:
    """Anneal the regex formulation with different seeds for variety."""
    codes = []
    for seed in range(count * 3):  # a few retries' headroom
        solver = StringQuboSolver(
            num_reads=32, seed=seed, sampler_params={"num_sweeps": 300}
        )
        result = solver.solve(RegexMatching(PATTERN, 7))
        if result.ok and result.output not in codes:
            codes.append(result.output)
        if len(codes) == count:
            break
    return codes


def main() -> None:
    print(f"== Valid product codes for {PATTERN!r} ==")
    codes = generate_valid_codes(5)
    for code in codes:
        assert regex_matches(PATTERN, code)
        print(f"  {code}   (re-checked against the matcher)")

    print("\n== Sanitizer test: strip dashes via replaceAll ==")
    solver = StringQuboSolver(num_reads=48, seed=99,
                              sampler_params={"num_sweeps": 400})
    for code in codes[:3]:
        result = solver.solve(StringReplaceAll(code, "-", "_"))
        print(f"  {code} -> {result.output}   (ok={result.ok})")

    print("\n== Palindromic probe strings (symmetric-input edge cases) ==")
    for seed in range(3):
        result = solver.solve(
            PalindromeGeneration(7, printable_bias=0.2, seed=seed)
        )
        print(f"  {result.output!r}  palindrome={result.output == result.output[::-1]}")


if __name__ == "__main__":
    main()
