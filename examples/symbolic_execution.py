#!/usr/bin/env python
"""Symbolic-execution-style input generation (the paper's §1 motivation).

Symbolic executors collect *path conditions* over program inputs and ask an
SMT solver for concrete inputs that drive each path. This example models a
tiny input-handling routine with three paths, expresses each path condition
in the strings fragment, and generates witness inputs with the quantum
pipeline — then double-checks them with the classical baseline.

The routine under test (pseudo-code):

    def route(request: str):          # request is exactly 8 characters
        if request.startswith("GET "):            # path A
            ...
        elif "admin" in request:                  # path B
            ...
        elif request matches r"[0-9]+x":          # path C  (id + marker)
            ...

Run:
    python examples/symbolic_execution.py
"""

from repro.smt import ClassicalStringSolver, QuantumSMTSolver, parse_script
from repro.smt.theory import eval_formula

PATHS = {
    "A: starts with 'GET '": """
        (declare-const request String)
        (assert (= (str.len request) 8))
        (assert (= (str.indexof request "GET ") 0))
        (check-sat) (get-model)
    """,
    "B: contains 'admin'": """
        (declare-const request String)
        (assert (= (str.len request) 8))
        (assert (str.contains request "admin"))
        (check-sat) (get-model)
    """,
    "C: matches [0-9]+x": """
        (declare-const request String)
        (assert (= (str.len request) 8))
        (assert (str.in_re request (re.++ (re.+ (re.range "0" "9")) (str.to_re "x"))))
        (check-sat) (get-model)
    """,
}


def main() -> None:
    classical = ClassicalStringSolver(max_length=8)
    for label, script in PATHS.items():
        print(f"== Path {label} ==")
        solver = QuantumSMTSolver.from_script_text(
            script, seed=7, num_reads=64, max_attempts=5,
            sampler_params={"num_sweeps": 500},
        )
        result = solver.check_sat()
        print(f"  quantum  : {result.status}  model={result.model}")

        assertions = parse_script(script).assertions
        baseline = classical.solve(assertions)
        print(f"  classical: {baseline.status}  model={baseline.model}")

        # Cross-check both witnesses against the concrete semantics.
        for name, model in (("quantum", result.model), ("classical", baseline.model)):
            if model:
                verified = all(eval_formula(a, model) for a in assertions)
                print(f"  {name} witness verified: {verified}")
        print()

    print("== Infeasible path (conflicting conditions) ==")
    infeasible = """
        (declare-const request String)
        (assert (= request "GET /idx"))
        (assert (str.contains request "admin"))
        (check-sat)
    """
    assertions = parse_script(infeasible).assertions
    print(f"  classical: {classical.solve(assertions).status} (path pruned)")


if __name__ == "__main__":
    main()
