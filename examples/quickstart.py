#!/usr/bin/env python
"""Quickstart: every string constraint from the paper, end to end.

Walks the full Figure-1 pipeline for each supported operation: build the
QUBO, run the simulated annealer, decode the best read back to a string,
and verify it against the constraint's concrete semantics.

Run:
    python examples/quickstart.py
"""

from repro import (
    ConstraintPipeline,
    PalindromeGeneration,
    PipelineStage,
    RegexMatching,
    StringConcatenation,
    StringEquality,
    StringIncludes,
    StringLength,
    StringQuboSolver,
    StringReplace,
    StringReplaceAll,
    StringReversal,
    SubstringIndexOf,
    SubstringMatching,
)


def show(label: str, result) -> None:
    status = "ok " if result.ok else "FAIL"
    print(f"  [{status}] {label:<46} -> {result.output!r}"
          f"  (E={result.energy:.1f}, success={result.success_rate:.0%})")


def main() -> None:
    solver = StringQuboSolver(num_reads=48, seed=42,
                              sampler_params={"num_sweeps": 400})

    print("== Single constraints (paper §4.1–§4.11) ==")
    show("equality: generate 'hello'", solver.solve(StringEquality("hello")))
    show("concat: 'quantum' + ' smt'",
         solver.solve(StringConcatenation("quantum", " smt")))
    show("substring: 4 chars containing 'cat'",
         solver.solve(SubstringMatching(4, "cat")))
    show("includes: index of 'cat' in 'the cat sat'",
         solver.solve(StringIncludes("the cat sat", "cat")))
    show("indexOf: 6 chars, 'hi' at index 2",
         solver.solve(SubstringIndexOf(6, "hi", 2, seed=7)))
    show("length: 3 readable chars in a 6-char buffer",
         solver.solve(StringLength(6, 3, mode="decodable", seed=7)))
    show("replaceAll: 'hello world', l -> x",
         solver.solve(StringReplaceAll("hello world", "l", "x")))
    show("replace (first): 'hello', l -> L",
         solver.solve(StringReplace("hello", "l", "L")))
    show("reversal: 'hello'", solver.solve(StringReversal("hello")))
    show("palindrome of length 6", solver.solve(PalindromeGeneration(6)))
    show("regex: a[bc]+ at length 5", solver.solve(RegexMatching("a[bc]+", 5)))

    print("\n== Combined constraints (paper §4.12, Table 1 row 1) ==")
    pipeline = ConstraintPipeline([
        PipelineStage("reverse", lambda prev: StringReversal(prev)),
        PipelineStage("replace", lambda prev: StringReplaceAll(prev, "e", "a")),
    ])
    result = pipeline.run(solver, initial="hello")
    print(f"  reverse('hello') |> replaceAll(e->a) = {result.output!r} "
          f"(ok={result.ok})")

    print("\n== The same problem through the SMT-LIB front end ==")
    from repro import QuantumSMTSolver

    script = """
    (set-logic QF_S)
    (declare-const x String)
    (assert (= x (str.replace_all (str.rev "hello") "e" "a")))
    (check-sat)
    (get-model)
    """
    smt = QuantumSMTSolver(seed=42, num_reads=48,
                           sampler_params={"num_sweeps": 400})
    for line in smt.run_script_text(script):
        print("  " + line.replace("\n", "\n  "))


if __name__ == "__main__":
    main()
