#!/usr/bin/env python
"""Running string QUBOs on simulated quantum hardware.

The paper's experiments use a software annealer but target real annealers
as future work. This example walks the full hardware pathway on the
simulated QPU: minor-embedding onto a Chimera topology, chain strength
selection, control noise, chain-break resolution — and contrasts Chimera
with the richer Pegasus-like topology.

Run:
    python examples/hardware_annealing.py
"""

import networkx as nx

from repro import StringEquality, StringQuboSolver, PalindromeGeneration
from repro.anneal import PathIntegralAnnealer
from repro.hardware import (
    EmbeddingComposite,
    GaussianNoiseModel,
    SimulatedQPU,
    chimera_graph,
    find_embedding,
    pegasus_like_graph,
)


def describe_qpu(qpu: SimulatedQPU) -> None:
    print(f"  {qpu.name}: {qpu.num_qubits} qubits, {qpu.num_couplers} couplers")


def main() -> None:
    print("== Devices ==")
    chimera = SimulatedQPU(
        topology=chimera_graph(6),
        noise=GaussianNoiseModel(h_sigma=0.01, j_sigma=0.005),
        name="chimera-c6 (noisy)",
    )
    pegasus = SimulatedQPU(
        topology=pegasus_like_graph(6),
        noise=GaussianNoiseModel(h_sigma=0.01, j_sigma=0.005),
        name="pegasus-like-p6 (noisy)",
    )
    describe_qpu(chimera)
    describe_qpu(pegasus)

    print("\n== Embedding footprint: K8 on each topology ==")
    k8 = nx.complete_graph(8)
    for name, topo in (("chimera", chimera.topology), ("pegasus-like", pegasus.topology)):
        emb = find_embedding(k8, topo, seed=1)
        lengths = sorted(len(c) for c in emb.values())
        print(f"  {name:<13} chain lengths: {lengths} "
              f"(total {sum(lengths)} physical qubits)")

    print("\n== String equality through the noisy QPU ==")
    for qpu in (chimera, pegasus):
        solver = StringQuboSolver(
            sampler=EmbeddingComposite(qpu),
            num_reads=32,
            seed=3,
            sampler_params={"num_sweeps": 400},
        )
        result = solver.solve(StringEquality("hi"))
        print(f"  {qpu.name:<24} -> {result.output!r} ok={result.ok} "
              f"chain_breaks={result.info['chain_break_fraction']:.1%} "
              f"max_chain={result.info['max_chain_length']}")

    print("\n== Palindrome (coupled QUBO) with SQA dynamics on-device ==")
    sqa_qpu = SimulatedQPU(
        topology=chimera_graph(6),
        backend=PathIntegralAnnealer(),
        name="chimera-c6 (SQA)",
    )
    solver = StringQuboSolver(
        sampler=EmbeddingComposite(sqa_qpu),
        num_reads=8,
        seed=4,
        sampler_params={"num_sweeps": 128},
    )
    result = solver.solve(PalindromeGeneration(2))
    print(f"  {sqa_qpu.name} -> {result.output!r} "
          f"palindrome={result.output == result.output[::-1]} ok={result.ok}")


if __name__ == "__main__":
    main()
