#!/usr/bin/env python
"""A miniature SMT-LIB REPL backed by the quantum string solver.

Reads SMT-LIB commands from a file argument or stdin, executes them against
:class:`repro.smt.QuantumSMTSolver`, and prints solver outputs — the same
interaction model as ``z3 -in`` for the strings fragment the paper covers.

Run:
    python examples/smtlib_repl.py                  # demo script
    python examples/smtlib_repl.py problem.smt2     # your own file
    echo '(check-sat)' | python examples/smtlib_repl.py -
"""

import sys

from repro.smt import QuantumSMTSolver

DEMO = """
(set-logic QF_S)
(declare-const user String)
(declare-const banner String)
(assert (= (str.len user) 5))
(assert (str.contains user "adm"))
(assert (= banner (str.++ "hello, " "operator")))
(check-sat)
(get-model)
(get-value (user))
"""


def main() -> None:
    if len(sys.argv) > 1:
        source = sys.stdin.read() if sys.argv[1] == "-" else open(sys.argv[1]).read()
    else:
        print("; no input file — running the built-in demo script")
        print(DEMO)
        source = DEMO

    solver = QuantumSMTSolver(
        seed=11, num_reads=64, max_attempts=5,
        sampler_params={"num_sweeps": 500},
    )
    for output in solver.run_script_text(source):
        print(output)


if __name__ == "__main__":
    main()
